//! The durable store's crash story, as a runnable demo (and the CI
//! smoke): a checkpointed tail feeding a `StoreSink` is killed
//! mid-stream — no drain, no final checkpoint, the store's last segment
//! torn mid-frame — and after restart the store is **byte-identical**
//! to an uninterrupted run.
//!
//! ```text
//! access.log ──► FileTail (transactional ckpt) ──► pipeline ──► StoreSink
//!                      │                                            │
//!                      └── sidecar commits only after ──────────────┘
//!                          the sinks have flushed
//! ```
//!
//! The run prints each phase; it exits non-zero if any segment byte
//! diverges or any record key is duplicated.
//!
//! ```text
//! cargo run --release --example durable_store -- --smoke
//! ```

use std::collections::HashSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use divscrape_detect::{Arcane, Sentinel};
use divscrape_httplog::LogEntry;
use divscrape_ingest::{EndReason, FileTail, IngestDriver, LogSource, SourceEvent};
use divscrape_pipeline::{Adjudication, Pipeline, PipelineBuilder, RecordPolicy, StoreSink};
use divscrape_store::{AlertStore, StoreConfig};
use divscrape_traffic::{generate, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: durable_store [--smoke]");
        return Ok(());
    }
    if let Some(other) = args.iter().find(|a| a.as_str() != "--smoke") {
        return Err(format!("unknown argument `{other}` (try --help)").into());
    }
    run_smoke()
}

/// A small segment cap so the run spans several segment files —
/// byte-identity must hold across rotation boundaries too.
fn store_config() -> StoreConfig {
    StoreConfig::default().segment_max_bytes(16 * 1024)
}

fn build_pipeline(dir: &Path) -> Result<Pipeline, Box<dyn std::error::Error>> {
    let sink = StoreSink::with_config(dir, store_config())?.record_policy(RecordPolicy::AllEntries);
    Ok(PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
        .chunk_capacity(257)
        .sink(sink)
        .build()
        .map_err(|e| e.to_string())?)
}

fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("divscrape-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root)?;
    let _cleanup = Cleanup(root.clone());

    let log = generate(&ScenarioConfig::tiny(2024))?;
    let log_path = root.join("access.log");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&log_path)?);
    for entry in log.entries() {
        writeln!(file, "{entry}")?;
    }
    file.flush()?;
    let total = log.len();
    println!("sample log: {total} requests");

    // Reference: the uninterrupted run.
    let ref_dir = root.join("reference");
    std::fs::create_dir_all(&ref_dir)?;
    let mut driver = IngestDriver::new(build_pipeline(&ref_dir)?).checkpoint_every(97);
    let mut tail = FileTail::read_to_end(&log_path)?
        .with_transactional_checkpoint(ref_dir.join("tail.ckpt"))?;
    let outcome = driver.run_checkpointed(&mut tail)?;
    if outcome.end != EndReason::SourceExhausted {
        return Err(format!("reference run ended early: {:?}", outcome.end).into());
    }
    let ref_store = AlertStore::open(&ref_dir, store_config())?;
    println!(
        "reference run: {} records across {} segments",
        ref_store.len(),
        ref_store.segment_paths().len()
    );
    drop(ref_store);

    // Crash run: commit at ~1/3, push to ~2/3 uncommitted, die cold.
    let crash_dir = root.join("crashed");
    std::fs::create_dir_all(&crash_dir)?;
    let sidecar = crash_dir.join("tail.ckpt");
    let mut pipeline = build_pipeline(&crash_dir)?;
    let mut tail = FileTail::read_to_end(&log_path)?.with_transactional_checkpoint(&sidecar)?;
    push_lines(&mut tail, &mut pipeline, total / 3)?;
    let _ = pipeline.drain();
    tail.checkpoint_now()?;
    push_lines(&mut tail, &mut pipeline, total / 3)?;
    drop(pipeline); // KILL: no drain, no checkpoint
    drop(tail);
    println!(
        "killed mid-stream at ~{}/{total} (last commit at {})",
        2 * total / 3,
        total / 3
    );

    // Torn write: chop the last segment mid-frame.
    let store = AlertStore::open(&crash_dir, store_config())?;
    let last = store
        .segment_paths()
        .pop()
        .ok_or("crashed store has no segments")?;
    drop(store);
    let bytes = std::fs::read(&last)?;
    std::fs::write(&last, &bytes[..bytes.len() - 5])?;
    println!("tore 5 bytes off {:?}", last.file_name().unwrap());

    // Restart: same sidecar, same store dir, fresh everything.
    let mut driver = IngestDriver::new(build_pipeline(&crash_dir)?).checkpoint_every(97);
    let mut tail = FileTail::read_to_end(&log_path)?.with_transactional_checkpoint(&sidecar)?;
    println!(
        "restarted: sidecar says {} lines committed, re-reading from the start",
        tail.committed_lines()
    );
    let outcome = driver.run_checkpointed(&mut tail)?;
    if outcome.stats.entries_ingested != total as u64 {
        return Err(format!(
            "restart ingested {} of {total} entries",
            outcome.stats.entries_ingested
        )
        .into());
    }

    // Verdict: byte-identical segments, no duplicate keys.
    let ref_store = AlertStore::open(&ref_dir, store_config())?;
    let mut healed = AlertStore::open(&crash_dir, store_config())?;
    let ref_segments = ref_store.segment_paths();
    let healed_segments = healed.segment_paths();
    if ref_segments.len() != healed_segments.len() {
        return Err(format!(
            "segment count diverged: {} vs {}",
            ref_segments.len(),
            healed_segments.len()
        )
        .into());
    }
    for (r, h) in ref_segments.iter().zip(&healed_segments) {
        if std::fs::read(r)? != std::fs::read(h)? {
            return Err(format!("segment {:?} is not byte-identical", r.file_name()).into());
        }
    }
    let records = healed.records()?;
    let keys: HashSet<_> = records
        .iter()
        .map(|r| (r.key.tenant.clone(), r.kind, r.key.offset))
        .collect();
    if keys.len() != records.len() {
        return Err("duplicate keys in the healed store".into());
    }
    println!(
        "OK: {} segments byte-identical, {} records, no duplicate keys",
        ref_segments.len(),
        records.len()
    );
    Ok(())
}

/// Feeds `n` lines from the tail into the pipeline by hand, so the demo
/// controls exactly where the kill lands.
fn push_lines(
    tail: &mut FileTail,
    pipeline: &mut Pipeline,
    n: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut pushed = 0;
    while pushed < n {
        match tail.poll(Duration::from_millis(20))? {
            SourceEvent::Line(line) => {
                pipeline.push(LogEntry::parse(&line)?);
                pushed += 1;
            }
            SourceEvent::Idle => {}
            other => return Err(format!("unexpected event {other:?}").into()),
        }
    }
    Ok(())
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
