//! Produce a shareable labelled corpus: the traffic as a standard Apache
//! access log (consumable by any third-party tool) plus a JSON-lines label
//! sidecar — the artefact the paper's authors were still working to create.
//!
//! ```text
//! cargo run --release --example export_dataset -- /tmp/divscrape-dataset
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

use divscrape::dataset::{read_dataset, write_dataset};
use divscrape_traffic::{generate, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/divscrape-dataset".to_owned())
        .into();
    std::fs::create_dir_all(&base)?;
    let log_path = base.join("access.log");
    let labels_path = base.join("labels.jsonl");

    let log = generate(&ScenarioConfig::small(2018))?;
    write_dataset(
        &log,
        BufWriter::new(File::create(&log_path)?),
        BufWriter::new(File::create(&labels_path)?),
    )?;
    println!(
        "wrote {} requests:\n  {}\n  {}",
        log.len(),
        log_path.display(),
        labels_path.display()
    );

    // Prove the round trip: read it back and verify the label balance.
    let (entries, truth) = read_dataset(
        BufReader::new(File::open(&log_path)?),
        BufReader::new(File::open(&labels_path)?),
    )?;
    let malicious = truth.iter().filter(|t| t.is_malicious()).count();
    println!(
        "read back {} entries, {} labelled malicious ({:.1}%)",
        entries.len(),
        malicious,
        100.0 * malicious as f64 / entries.len() as f64
    );
    Ok(())
}
