//! The triage bench behind `BENCH_triage.json`: the full diverse
//! ensemble with triage off (every entry pays all five in-tree
//! detectors — Sentinel, Arcane, the honeytrap, the rate-limiter
//! baseline and the signature-only baseline) raced against the same
//! pipeline with the stock `FastTriage` tier in front, over
//! benign-heavy logs at three suspicious shares (1%, 10%, 50%) — the
//! sweep axis of the hierarchical-triage claim. One worker, so the
//! numbers are per-core; both runs feed the identical raw CLF lines
//! through `push_line`.
//!
//! Reported per operating point and path: entries/sec, ns/entry and
//! allocs/entry (via a counting global allocator). Each timed pass runs
//! the whole log through a fresh pipeline (feed **and** drain), after
//! one untimed warm-up pass per path, and the off/triaged passes are
//! interleaved so machine-load drift perturbs both paths alike; the
//! best pass per path is kept — every pass is a faithful cold run of
//! the benign-heavy stream. The run appends one record to the
//! trajectory file (default `BENCH_triage.json`); see `docs/CI.md` for
//! the format.
//!
//! ```text
//! cargo run --release --example triage_bench -- --smoke
//! cargo run --release --example triage_bench -- --full --label pr9
//! ```
//!
//! Every run hard-errors on alert drift at any operating point: in the
//! no-spill regime the triaged drain report is bit-identical to the
//! untriaged one, so any difference in alert counts means the triage
//! tier changed a verdict (a spill is likewise a hard error — the
//! bench scales stay far under the stock 64 MiB replay cap). `--smoke`
//! (the CI gate) additionally exits non-zero unless triage clears 1.5×
//! throughput at the 1%-suspicious point — headroom below the margin
//! seen on idle hardware, so a loaded CI runner does not flake the
//! gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use divscrape_detect::baselines::{RateLimiter, SignatureOnly};
use divscrape_detect::{Arcane, Sentinel, TrapDetector};
use divscrape_pipeline::{Adjudication, Pipeline, PipelineBuilder, TriagePolicy};
use divscrape_traffic::{generate, ScenarioConfig};

/// Counts every heap allocation (fresh and growing) in the process so
/// the bench can report allocs/entry alongside the throughput numbers.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter never influences
// the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

struct PathResult {
    entries_per_sec: f64,
    ns_per_entry: f64,
    allocs_per_entry: f64,
    alerts: u64,
    suppressed_share: f64,
    spilled: u64,
}

fn build_pipeline(triage: Option<TriagePolicy>) -> Pipeline {
    let mut builder = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(TrapDetector::default())
        .detector(RateLimiter::default())
        .detector(SignatureOnly::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(1);
    if let Some(policy) = triage {
        builder = builder.triage(policy);
    }
    builder.build().expect("bench pipeline")
}

/// Everything one pass yields: its wall time, its allocator delta and
/// the final report/stats numbers (identical on every pass — the
/// pipeline is deterministic).
struct PassOutput {
    secs: f64,
    allocs: u64,
    alerts: u64,
    suppressed: u64,
    spilled: u64,
}

/// Feeds the whole log through `push_line` on a fresh pipeline and
/// drains it — one faithful cold run of the benign-heavy stream.
/// (Re-feeding one pipeline across passes would replay the same time
/// window and make every human client look like a flooding bot, so each
/// pass gets its own pipeline.)
fn one_pass(lines: &[String], triage: Option<&TriagePolicy>) -> PassOutput {
    let mut pipeline = build_pipeline(triage.cloned());
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let started = Instant::now();
    for line in lines {
        pipeline.push_line(line).expect("generated line parses");
    }
    let report = pipeline.drain();
    let secs = started.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let stats = pipeline.stats();
    PassOutput {
        secs,
        allocs,
        alerts: report.combined.count(),
        suppressed: stats.triage_suppressed_entries,
        spilled: stats.triage_spilled_entries,
    }
}

/// One untimed warm-up pass per path, then `passes` timed passes with
/// the off and triaged paths **interleaved** (off, on, off, on, …), so
/// load drift from other tenants of the machine perturbs both paths
/// alike instead of biasing whichever ran second. The **best pass** per
/// path is reported: the paths are deterministic, so the fastest pass
/// is the least-perturbed one. The allocator delta spans all timed
/// passes (it is load-independent).
fn run_point(lines: &[String], passes: u32) -> (PathResult, PathResult) {
    let policy = TriagePolicy::fast();
    let _ = one_pass(lines, None);
    let _ = one_pass(lines, Some(&policy));

    let n = lines.len() as u64;
    let mut best = [f64::INFINITY; 2];
    let mut allocs = [0u64; 2];
    let mut last: [Option<PassOutput>; 2] = [None, None];
    for _ in 0..passes {
        for (slot, triage) in [(0, None), (1, Some(&policy))] {
            let pass = one_pass(lines, triage);
            best[slot] = best[slot].min(pass.secs);
            allocs[slot] += pass.allocs;
            last[slot] = Some(pass);
        }
    }

    let result = |slot: usize| {
        let pass = last[slot].as_ref().expect("at least one pass ran");
        PathResult {
            entries_per_sec: n as f64 / best[slot],
            ns_per_entry: best[slot] * 1e9 / n as f64,
            allocs_per_entry: allocs[slot] as f64 / (n * u64::from(passes)) as f64,
            alerts: pass.alerts,
            suppressed_share: pass.suppressed as f64 / n as f64,
            spilled: pass.spilled,
        }
    };
    (result(0), result(1))
}

struct Point {
    suspicious: f64,
    off: PathResult,
    triaged: PathResult,
    speedup: f64,
}

fn point_json(p: &Point) -> String {
    let path_json = |r: &PathResult| {
        format!(
            "{{ \"entries_per_sec\": {:.0}, \"ns_per_entry\": {:.1}, \"allocs_per_entry\": {:.3}, \"alerts\": {} }}",
            r.entries_per_sec, r.ns_per_entry, r.allocs_per_entry, r.alerts
        )
    };
    format!(
        "      {{\n        \"suspicious\": {:.2},\n        \"off\": {},\n        \"triage\": {},\n        \"suppressed_share\": {:.3},\n        \"speedup\": {:.2}\n      }}",
        p.suspicious,
        path_json(&p.off),
        path_json(&p.triaged),
        p.triaged.suppressed_share,
        p.speedup
    )
}

fn record_json(label: &str, scale: &str, n: usize, passes: u32, points: &[Point]) -> String {
    let body: Vec<String> = points.iter().map(point_json).collect();
    format!(
        "  {{\n    \"label\": \"{label}\",\n    \"scale\": \"{scale}\",\n    \"entries\": {n},\n    \"passes\": {passes},\n    \"workers\": 1,\n    \"points\": [\n{}\n    ]\n  }}",
        body.join(",\n")
    )
}

/// Appends one record to the JSON-array trajectory file, creating it
/// (or replacing a non-array file) as a one-record array.
fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let prefix = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) if body.trim_end().is_empty() || body.trim_end() == "[" => {
                    "[\n".to_owned()
                }
                Some(body) => format!("{},\n", body.trim_end()),
                None => "[\n".to_owned(),
            }
        }
        Err(_) => "[\n".to_owned(),
    };
    std::fs::write(path, format!("{prefix}{record}\n]\n"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = args.is_empty();
    let mut full = false;
    let mut label = "smoke".to_owned();
    let mut out = "BENCH_triage.json".to_owned();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--full" => full = true,
            "--label" => label = it.next().ok_or("--label needs a value")?,
            "--out" => out = it.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                eprintln!("usage: triage_bench [--smoke | --full] [--label <name>] [--out <path>]");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }
    let (scale, target, passes) = if full {
        ("medium", 60_000u64, 5u32)
    } else {
        smoke = true;
        ("small", 12_000u64, 5u32)
    };

    let shares = [0.01, 0.10, 0.50];
    let mut points = Vec::new();
    for suspicious in shares {
        let config = ScenarioConfig::benign_heavy(2018, target, suspicious);
        let log = generate(&config)?;
        let lines: Vec<String> = log.entries().iter().map(|e| e.to_string()).collect();
        eprintln!(
            "triage_bench: {:>2.0}% suspicious, {} entries × {passes} timed passes ({scale} scale)",
            suspicious * 100.0,
            lines.len()
        );

        let (off, triaged) = run_point(&lines, passes);
        let speedup = triaged.entries_per_sec / off.entries_per_sec;

        eprintln!(
            "  off:    {:>10.0} entries/s  {:>7.1} ns/entry  {:>6.3} allocs/entry  {} alerts",
            off.entries_per_sec, off.ns_per_entry, off.allocs_per_entry, off.alerts
        );
        eprintln!(
            "  triage: {:>10.0} entries/s  {:>7.1} ns/entry  {:>6.3} allocs/entry  {} alerts  ({:.1}% suppressed)",
            triaged.entries_per_sec,
            triaged.ns_per_entry,
            triaged.allocs_per_entry,
            triaged.alerts,
            triaged.suppressed_share * 100.0
        );
        eprintln!("  speedup: {speedup:.2}x");

        // The parity argument only holds while nothing spilled.
        if triaged.spilled != 0 {
            return Err(format!(
                "replay buffer spilled {} entries at {:.0}% suspicious; raise the cap",
                triaged.spilled,
                suspicious * 100.0
            )
            .into());
        }
        // Each pass drains one report over the identical feed: any
        // drift means the triage tier changed a verdict.
        if off.alerts != triaged.alerts {
            return Err(format!(
                "alert drift at {:.0}% suspicious: triage-off raised {} alerts, triage-on {}",
                suspicious * 100.0,
                off.alerts,
                triaged.alerts
            )
            .into());
        }

        points.push(Point {
            suspicious,
            off,
            triaged,
            speedup,
        });
    }

    let record = record_json(&label, scale, target as usize, passes, &points);
    append_record(&out, &record)?;
    eprintln!("appended record to {out}");

    if smoke {
        let one_percent = &points[0];
        if one_percent.speedup < 1.5 {
            return Err(format!(
                "triage speedup {:.2}x at 1% suspicious is under the 1.5x smoke floor",
                one_percent.speedup
            )
            .into());
        }
    }
    Ok(())
}
