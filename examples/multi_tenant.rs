//! Multi-tenant service, end to end: two monitored properties stream
//! CLF lines in over their own TCP sockets; one process routes each
//! stream to that tenant's own pipeline (different adjudication rules);
//! tenant-tagged alerts flow out to one shared TCP collector.
//!
//! ```text
//! shop-eu socket ─► Tagged ─┐                        ┌─ pipeline[shop-eu] (1oo2) ─► TcpSink ─┐
//!                           ├─ MultiSource ─► HubDriver                                      ├─► collector
//! shop-us socket ─► Tagged ─┘                        └─ pipeline[shop-us] (2oo2) ─► TcpSink ─┘
//! ```
//!
//! `--smoke` (also the default, and a CI gate): a fully self-driving
//! loopback run — two feeder threads replay per-tenant sample logs over
//! TCP, a collector thread receives the tagged alerts, and the process
//! exits non-zero unless **both** tenants alert, every alert carries
//! the right tenant tag, and neither tenant's pipeline saw the other's
//! traffic.
//!
//! ```text
//! cargo run --release --example multi_tenant -- --smoke
//! ```

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use divscrape_detect::{Arcane, Sentinel};
use divscrape_ingest::{HubDriver, MultiSource, SocketSource, SocketSourceConfig, Tagged};
use divscrape_pipeline::{Adjudication, PipelineBuilder, PipelineHub, TcpSink, TenantId};
use divscrape_traffic::{generate, LabelledLog, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--smoke") => run_smoke(),
        Some("--help" | "-h") => {
            eprintln!("usage: multi_tenant [--smoke]");
            Ok(())
        }
        Some(other) => Err(format!("unknown argument `{other}` (try --help)").into()),
    }
}

/// Pulls a string field out of one alert JSON line (the alert format is
/// flat, so a plain scan suffices for the smoke check).
fn json_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    Some(&line[start..start + line[start..].find('"')?])
}

fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let eu = TenantId::new("shop-eu");
    let us = TenantId::new("shop-us");

    // Per-tenant sample traffic (different seeds: different client
    // populations and bot mixes).
    let eu_log = generate(&ScenarioConfig::tiny(2024))?;
    let us_log = generate(&ScenarioConfig::tiny(4202))?;
    println!(
        "sample logs: {} requests ({eu}), {} requests ({us})",
        eu_log.len(),
        us_log.len()
    );

    // One shared collector for both tenants' alerts: each line must be
    // attributable by its tenant tag alone.
    let collector = TcpListener::bind("127.0.0.1:0")?;
    let collector_addr = collector.local_addr()?;
    let collecting = std::thread::spawn(move || -> std::io::Result<Vec<String>> {
        // One connection per tenant sink, each drained on its own
        // thread: reading them sequentially would leave the second
        // sink's alerts sitting in kernel socket buffers for the whole
        // run — and wedge the pipeline if they outgrow them.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (conn, _) = collector.accept()?;
                Ok(std::thread::spawn(
                    move || -> std::io::Result<Vec<String>> {
                        BufReader::new(conn).lines().collect()
                    },
                ))
            })
            .collect::<std::io::Result<_>>()?;
        let mut lines = Vec::new();
        for reader in readers {
            lines.extend(reader.join().expect("collector reader panicked")?);
        }
        Ok(lines)
    });

    // Each tenant has its own ingest socket; the fan-in interleaves.
    let socket_config = SocketSourceConfig {
        finish_on_disconnect: true,
        ..Default::default()
    };
    let eu_source = SocketSource::bind_with("127.0.0.1:0", socket_config)?;
    let us_source = SocketSource::bind_with("127.0.0.1:0", socket_config)?;
    let feeders: Vec<_> = [
        (eu_source.local_addr(), &eu_log),
        (us_source.local_addr(), &us_log),
    ]
    .into_iter()
    .map(|(addr, log): (_, &LabelledLog)| {
        let payload: String = log.entries().iter().map(|e| format!("{e}\n")).collect();
        std::thread::spawn(move || -> std::io::Result<()> {
            let mut conn = TcpStream::connect(addr)?;
            for chunk in payload.as_bytes().chunks(8_192) {
                conn.write_all(chunk)?;
            }
            Ok(())
        })
    })
    .collect();
    let mut source = MultiSource::new()
        .with(Tagged::new(eu.clone(), eu_source))
        .with(Tagged::new(us.clone(), us_source));

    // The hub: per-tenant calibration. shop-eu alerts on either tool
    // (union); shop-us only when both tools agree.
    let eu_sink = TcpSink::connect(collector_addr)?;
    let us_sink = TcpSink::connect(collector_addr)?;
    let (eu_telemetry, us_telemetry) = (eu_sink.telemetry(), us_sink.telemetry());
    let two_tool = || {
        PipelineBuilder::new()
            .detector(Sentinel::stock())
            .detector(Arcane::stock())
            .workers(2)
    };
    let hub = PipelineHub::builder()
        .tenant(
            eu.clone(),
            two_tool()
                .adjudication(Adjudication::k_of_n(1))
                .sink(eu_sink),
        )
        .tenant(
            us.clone(),
            two_tool()
                .adjudication(Adjudication::k_of_n(2))
                .sink(us_sink),
        )
        .build()?;

    let mut driver = HubDriver::new(hub);
    let outcome = driver.run(&mut source)?;
    drop(driver); // closes the TCP sinks → the collector's reads end
    for feeder in feeders {
        feeder.join().expect("feeder panicked")?;
    }
    let received = collecting.join().expect("collector panicked")?;

    let eu_alerts = outcome.report.tenant(&eu).unwrap().combined.count();
    let us_alerts = outcome.report.tenant(&us).unwrap().combined.count();
    println!(
        "ingested {} entries over {} lines in {:?}",
        outcome.stats.entries_ingested,
        outcome.stats.lines_read,
        started.elapsed(),
    );
    println!(
        "alerts: {eu_alerts} ({eu}, union rule) | {us_alerts} ({us}, unanimity rule) | {} collected",
        received.len()
    );

    // Gate 1: both tenants must alert, under their own rules.
    assert!(eu_alerts > 0, "tenant {eu} produced no alerts");
    assert!(us_alerts > 0, "tenant {us} produced no alerts");

    // Gate 2: isolation. Each pipeline processed exactly its own
    // tenant's traffic, nothing leaked across.
    assert_eq!(outcome.hub.unrouted_entries, 0, "stray tenant tags");
    assert_eq!(
        outcome.report.tenant(&eu).unwrap().requests(),
        eu_log.len(),
        "tenant {eu} did not see exactly its own stream"
    );
    assert_eq!(
        outcome.report.tenant(&us).unwrap().requests(),
        us_log.len(),
        "tenant {us} did not see exactly its own stream"
    );

    // Gate 3: every collected alert is attributable and consistent:
    // tagged with a served tenant, and its client belongs to that
    // tenant's own stream.
    let clients_of = |log: &LabelledLog| -> HashSet<String> {
        log.entries().iter().map(|e| e.addr().to_string()).collect()
    };
    let eu_clients = clients_of(&eu_log);
    let us_clients = clients_of(&us_log);
    let mut tagged_counts = (0u64, 0u64);
    for line in &received {
        let tenant = json_field(line, "tenant").expect("alert without tenant tag");
        let client = json_field(line, "client").expect("alert without client");
        match tenant {
            "shop-eu" => {
                tagged_counts.0 += 1;
                assert!(
                    eu_clients.contains(client),
                    "alert for {eu} names a client it never saw: {client}"
                );
            }
            "shop-us" => {
                tagged_counts.1 += 1;
                assert!(
                    us_clients.contains(client),
                    "alert for {us} names a client it never saw: {client}"
                );
            }
            other => panic!("alert tagged with unserved tenant `{other}`"),
        }
    }
    assert_eq!(
        tagged_counts,
        (eu_alerts, us_alerts),
        "collected alert counts must match the per-tenant reports"
    );
    assert_eq!(eu_telemetry.written(), eu_alerts);
    assert_eq!(us_telemetry.written(), us_alerts);

    println!("smoke OK");
    Ok(())
}
