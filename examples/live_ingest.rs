//! End-to-end live ingestion: CLF lines in over a TCP socket, alerts
//! out to a JSON-lines file and a TCP collector.
//!
//! ```text
//! socket in ──► IngestDriver ──► worker pool ──► adjudication ──► JSONL file
//!                                                              └─► TCP collector
//! ```
//!
//! Default (also `--smoke`, the CI gate): a fully self-driving run on
//! loopback — a feeder thread replays a synthetic sample log over TCP
//! into the pipeline's `SocketSource`, a collector thread receives the
//! adjudicated alerts from the pipeline's `TcpSink`, and the process
//! exits non-zero unless a nonzero number of alerts made the full trip.
//!
//! `--listen <addr>` instead binds the ingest socket at `addr` and waits
//! for real senders (`ncat <host> <port> < access.log`), writing alerts
//! to `alerts.jsonl` (override with `--jsonl <path>`) and optionally
//! forwarding them with `--alerts-to <addr>`; the run ends when every
//! sender has disconnected.
//!
//! ```text
//! cargo run --release --example live_ingest -- --smoke
//! cargo run --release --example live_ingest -- --listen 127.0.0.1:8514 --jsonl alerts.jsonl
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use divscrape_detect::{Arcane, Sentinel};
use divscrape_ingest::{IngestDriver, SocketSource, SocketSourceConfig};
use divscrape_pipeline::{Adjudication, JsonLinesSink, PipelineBuilder, TcpSink};
use divscrape_traffic::{generate, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen: Option<String> = None;
    let mut jsonl = "alerts.jsonl".to_owned();
    let mut alerts_to: Option<String> = None;
    let mut smoke = args.is_empty();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--listen" => listen = Some(it.next().ok_or("--listen needs an address")?),
            "--jsonl" => jsonl = it.next().ok_or("--jsonl needs a path")?,
            "--alerts-to" => alerts_to = Some(it.next().ok_or("--alerts-to needs an address")?),
            "--help" | "-h" => {
                eprintln!(
                    "usage: live_ingest [--smoke | --listen <addr>] [--jsonl <path>] [--alerts-to <addr>]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }
    match listen {
        Some(addr) if !smoke => run_listen(&addr, &jsonl, alerts_to.as_deref()),
        _ => run_smoke(),
    }
}

/// Self-driving loopback run: replay a sample log over TCP, collect the
/// alerts from the TCP sink, assert a nonzero count survived the trip.
fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();

    // A small synthetic scenario with the paper's population structure —
    // bot-heavy enough that the 1-of-2 committee must alert.
    let log = generate(&ScenarioConfig::tiny(2018))?;
    let sample: Vec<String> = log.entries().iter().map(ToString::to_string).collect();
    println!("sample log: {} requests", sample.len());

    // Alert collector: a loopback TCP listener counting JSON lines —
    // the stand-in for a real aggregation service.
    let collector = TcpListener::bind("127.0.0.1:0")?;
    let collector_addr = collector.local_addr()?;
    let collecting = std::thread::spawn(move || -> std::io::Result<u64> {
        let (conn, _) = collector.accept()?;
        let mut received = 0u64;
        for line in BufReader::new(conn).lines() {
            let line = line?;
            // Every alert must be one self-contained JSON object.
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
            received += 1;
        }
        Ok(received)
    });

    // Ingest socket: where the CLF lines come in.
    let mut source = SocketSource::bind_with(
        "127.0.0.1:0",
        SocketSourceConfig {
            finish_on_disconnect: true, // the run ends when the feeder hangs up
            ..Default::default()
        },
    )?;
    let ingest_addr = source.local_addr();

    // Feeder: replays the sample log over TCP, rate-limited like a
    // modest production feed (fragmented writes, not line-aligned).
    let feeder = std::thread::spawn(move || -> std::io::Result<()> {
        let payload: String = sample.iter().map(|l| format!("{l}\n")).collect();
        let mut conn = TcpStream::connect(ingest_addr)?;
        for chunk in payload.as_bytes().chunks(8_192) {
            conn.write_all(chunk)?;
        }
        Ok(())
    });

    // The pipeline: the paper's two tools, 1-of-2 adjudication, a
    // two-worker pool, alerts to a JSONL file and the TCP collector.
    let jsonl_path = std::env::temp_dir().join(format!(
        "divscrape-live-ingest-smoke-{}.jsonl",
        std::process::id()
    ));
    let json_sink = JsonLinesSink::append(&jsonl_path)?;
    let json_telemetry = json_sink.telemetry();
    let tcp_sink = TcpSink::connect(collector_addr)?;
    let tcp_telemetry = tcp_sink.telemetry();
    let pipeline = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
        .sink(json_sink)
        .sink(tcp_sink)
        .build()?;

    let mut driver = IngestDriver::new(pipeline);
    let outcome = driver.run(&mut source)?;
    drop(driver); // closes the TCP sink → the collector's read ends
    feeder.join().expect("feeder panicked")?;
    let received = collecting.join().expect("collector panicked")?;

    let alerts = outcome.report.combined.count();
    println!(
        "ingested {} entries ({} lines, {} parse errors) in {:?}",
        outcome.stats.entries_ingested,
        outcome.stats.lines_read,
        outcome.stats.parse_errors,
        started.elapsed(),
    );
    println!(
        "alerts: {alerts} adjudicated | {} to {} (JSONL) | {received} over TCP",
        json_telemetry.written(),
        jsonl_path.display(),
    );
    let _ = std::fs::remove_file(&jsonl_path);

    // The smoke gate: a nonzero alert count through the entire path.
    assert!(alerts > 0, "smoke run produced no alerts");
    assert_eq!(json_telemetry.written(), alerts, "JSONL sink lost alerts");
    assert_eq!(tcp_telemetry.written(), alerts, "TCP sink lost alerts");
    assert_eq!(received, alerts, "collector did not receive every alert");
    assert_eq!(
        outcome.stats.entries_ingested,
        outcome.report.requests() as u64,
        "drain lost entries"
    );
    println!("smoke OK");
    Ok(())
}

/// Real-traffic mode: bind `addr`, ingest until every sender
/// disconnects, alert to a JSONL file and (optionally) a collector.
fn run_listen(
    addr: &str,
    jsonl: &str,
    alerts_to: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut source = SocketSource::bind_with(
        addr,
        SocketSourceConfig {
            finish_on_disconnect: true,
            ..Default::default()
        },
    )?;
    println!(
        "listening on {} (feed me: ncat {} < access.log); alerts → {jsonl}",
        source.local_addr(),
        source.local_addr(),
    );

    let json_sink = JsonLinesSink::append(jsonl)?;
    let json_telemetry = json_sink.telemetry();
    let mut builder = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
        .sink(json_sink);
    if let Some(collector) = alerts_to {
        builder = builder.sink(TcpSink::connect(collector.to_owned())?);
        println!("forwarding alerts to {collector}");
    }

    let mut driver = IngestDriver::new(builder.build()?);
    let outcome = driver.run(&mut source)?;
    println!(
        "done: {} entries in, {} parse errors, {} alerts out ({} written to {jsonl})",
        outcome.stats.entries_ingested,
        outcome.stats.parse_errors,
        outcome.report.combined.count(),
        json_telemetry.written(),
    );
    Ok(())
}
