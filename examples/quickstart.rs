//! Quickstart: generate labelled traffic, run both tools, print the paper's
//! Tables 1 and 2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use divscrape::{tables, DiversityStudy, StudyConfig};
use divscrape_traffic::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12k-request scenario: the same population structure as the paper's
    // 1.47M-request dataset, at unit-test scale. Swap in
    // `ScenarioConfig::paper_scale(2018)` for the full reproduction.
    let scenario = ScenarioConfig::small(2018);
    let report = DiversityStudy::new(StudyConfig::new(scenario)).run()?;

    println!("{}", tables::table1(&report));
    println!("{}", tables::table2(&report));

    // The headline of the paper: the tools agree on the bulk of the traffic
    // yet each catches requests the other misses.
    let c = &report.contingency;
    println!(
        "Agreement: {:.1}%  |  sentinel-only: {}  |  arcane-only: {}",
        c.agreement_rate() * 100.0,
        c.only_first,
        c.only_second
    );
    Ok(())
}
