//! Deployment topologies: both tools watching everything vs. one tool
//! filtering for the other — detection quality against analysis cost.
//!
//! ```text
//! cargo run --release --example serial_vs_parallel
//! ```

use divscrape_detect::{Arcane, Sentinel};
use divscrape_ensemble::report::{percent, thousands, TextTable};
use divscrape_ensemble::{run_parallel, run_serial, ConfusionMatrix, SerialMode};
use divscrape_traffic::{generate, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = generate(&ScenarioConfig::medium(2018))?;

    let mut t = TextTable::new("Parallel vs serial deployment (sentinel first)");
    t.columns(&["Topology", "2nd-stage load", "Sensitivity", "FPR"]);

    let configs = [
        ("parallel 1oo2", None),
        ("parallel 2oo2", None),
        ("serial confirm", Some(SerialMode::Confirm)),
        ("serial escalate", Some(SerialMode::Escalate)),
    ];
    for (i, (name, mode)) in configs.iter().enumerate() {
        let outcome = match mode {
            None => run_parallel(
                &mut Sentinel::stock(),
                &mut Arcane::stock(),
                log.entries(),
                i == 0,
            ),
            Some(m) => run_serial(
                &mut Sentinel::stock(),
                &mut Arcane::stock(),
                log.entries(),
                *m,
            ),
        };
        let cm = ConfusionMatrix::of(&outcome.alerts, log.truth());
        t.row_owned(vec![
            (*name).to_owned(),
            thousands(outcome.second_processed),
            percent(cm.sensitivity()),
            percent(cm.fpr()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The serial escalate pipeline needs the second tool to inspect only the\nfirst tool's residue, yet keeps nearly the union's sensitivity: on bot-heavy\ntraffic the residue is small, so the second tool's budget shrinks by ~6x."
    );
    Ok(())
}
