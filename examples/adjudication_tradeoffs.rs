//! Adjudication schemes on labelled data: how 1-out-of-2 and 2-out-of-2
//! trade false negatives against false positives (the paper's Section V).
//!
//! ```text
//! cargo run --release --example adjudication_tradeoffs
//! ```

use divscrape::{DiversityStudy, StudyConfig};
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{ConfusionMatrix, KOutOfN};
use divscrape_traffic::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = DiversityStudy::new(StudyConfig::new(ScenarioConfig::medium(2018))).run()?;
    let truth = report.log.truth();

    let mut t = TextTable::new("False-negative vs false-positive trade-off");
    t.columns(&["Scheme", "FN (missed attacks)", "FP (false alarms)", "Sensitivity", "Specificity"]);

    let schemes: Vec<(String, ConfusionMatrix)> = vec![
        ("sentinel alone".into(), report.labelled.sentinel),
        ("arcane alone".into(), report.labelled.arcane),
        (
            "1oo2 (either)".into(),
            ConfusionMatrix::of(
                &KOutOfN::any(2).apply(&[&report.sentinel, &report.arcane]),
                truth,
            ),
        ),
        (
            "2oo2 (both)".into(),
            ConfusionMatrix::of(
                &KOutOfN::all(2).apply(&[&report.sentinel, &report.arcane]),
                truth,
            ),
        ),
    ];
    for (name, cm) in &schemes {
        t.row_owned(vec![
            name.clone(),
            cm.fn_.to_string(),
            cm.fp.to_string(),
            percent(cm.sensitivity()),
            percent(cm.specificity()),
        ]);
    }
    println!("{}", t.render());

    let one = &schemes[2].1;
    let two = &schemes[3].1;
    println!("1oo2 misses {} attacks (only the double faults); 2oo2 raises {} false alarms", one.fn_, two.fp);
    println!(
        "Double-fault floor: {} requests ({}).",
        report.labelled.oracle.both_wrong,
        percent(report.labelled.oracle.double_fault())
    );
    println!("\nWhether 1oo2 or 2oo2 is the right choice depends on the relative cost of a\nmissed scraper versus a blocked customer — with these tools, 1oo2 cuts misses\nby an order of magnitude for a modest false-alarm increase.");
    Ok(())
}
