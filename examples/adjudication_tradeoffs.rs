//! Adjudication schemes on labelled data: how 1-out-of-2 and 2-out-of-2
//! trade false negatives against false positives (the paper's Section V) —
//! with the tools running in a streaming [`Pipeline`] and the 1oo2 union
//! adjudicated online.
//!
//! ```text
//! cargo run --release --example adjudication_tradeoffs
//! ```
//!
//! [`Pipeline`]: divscrape_pipeline::Pipeline

use divscrape::{DiversityStudy, StudyConfig};
use divscrape_detect::{Arcane, Sentinel};
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{ConfusionMatrix, KOutOfN};
use divscrape_pipeline::{Adjudication, CountingSink, PipelineBuilder};
use divscrape_traffic::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate the corpus once via the study pipeline (which itself runs
    // on the streaming engine), then re-stream it explicitly to show the
    // online adjudication and sink stages.
    let report = DiversityStudy::new(StudyConfig::new(ScenarioConfig::medium(2018))).run()?;
    let truth = report.log.truth();

    let alarms = CountingSink::new();
    let alarm_count = alarms.handle();
    let mut pipeline = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .sink(alarms)
        .workers(2)
        .build()
        .map_err(|e| e.to_string())?;
    pipeline.push_batch(report.log.entries());
    let streamed = pipeline.drain();
    let sentinel = &streamed.members[0];
    let arcane = &streamed.members[1];

    let mut t = TextTable::new("False-negative vs false-positive trade-off");
    t.columns(&[
        "Scheme",
        "FN (missed attacks)",
        "FP (false alarms)",
        "Sensitivity",
        "Specificity",
    ]);

    let schemes: Vec<(String, ConfusionMatrix)> = vec![
        (
            "sentinel alone".into(),
            ConfusionMatrix::of(sentinel, truth),
        ),
        ("arcane alone".into(), ConfusionMatrix::of(arcane, truth)),
        (
            "1oo2 (either)".into(),
            // The union came out of the pipeline's online adjudication.
            ConfusionMatrix::of(&streamed.combined, truth),
        ),
        (
            "2oo2 (both)".into(),
            ConfusionMatrix::of(&KOutOfN::all(2).apply(&[sentinel, arcane]), truth),
        ),
    ];
    for (name, cm) in &schemes {
        t.row_owned(vec![
            name.clone(),
            cm.fn_.to_string(),
            cm.fp.to_string(),
            percent(cm.sensitivity()),
            percent(cm.specificity()),
        ]);
    }
    println!("{}", t.render());

    let one = &schemes[2].1;
    let two = &schemes[3].1;
    println!(
        "1oo2 misses {} attacks (only the double faults); 2oo2 raises {} false alarms",
        one.fn_, two.fp
    );
    println!(
        "Double-fault floor: {} requests ({}).",
        report.labelled.oracle.both_wrong,
        percent(report.labelled.oracle.double_fault())
    );
    // The sink saw exactly the adjudicated union, one firing per alert.
    assert_eq!(
        alarm_count.load(std::sync::atomic::Ordering::Relaxed),
        streamed.combined.count()
    );
    println!("\nWhether 1oo2 or 2oo2 is the right choice depends on the relative cost of a\nmissed scraper versus a blocked customer — with these tools, 1oo2 cuts misses\nby an order of magnitude for a modest false-alarm increase.");
    Ok(())
}
