//! Bringing your own tool: implement [`Detector`] for a custom heuristic,
//! compose it with the two stock tools in a streaming [`Pipeline`], then
//! measure its diversity and fold it into a 2-out-of-3 majority vote.
//!
//! Any detector that is `Clone + Send` slots straight into a pipeline —
//! including across sharded workers.
//!
//! ```text
//! cargo run --release --example custom_detector
//! ```
//!
//! [`Pipeline`]: divscrape_pipeline::Pipeline

use divscrape_detect::{Arcane, Detector, Sentinel, SessionFeatures, Sessionizer, Verdict};
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{AgreementDiversity, ConfusionMatrix, KOutOfN};
use divscrape_httplog::LogEntry;
use divscrape_pipeline::{Adjudication, PipelineBuilder};
use divscrape_traffic::{generate, ScenarioConfig};

/// A deliberately narrow third opinion: flags clients whose sessions browse
/// offers far faster than any human reads a fare page.
#[derive(Debug, Clone, Default)]
struct OfferVelocity {
    sessions: Sessionizer,
}

impl Detector for OfferVelocity {
    fn name(&self) -> &str {
        "offer-velocity"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        let f: &SessionFeatures = self.sessions.observe(entry);
        // ≥ 30 offer pages at a mean pace under 4 s/request is not a person
        // comparing fares.
        let velocity = f.offer_hits >= 30 && f.mean_gap_secs() < 4.0;
        Verdict::new(
            velocity,
            f.offer_hits as f32 / f.mean_gap_secs().max(0.1) as f32,
        )
    }

    fn reset(&mut self) {
        self.sessions.reset();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let log = generate(&ScenarioConfig::small(2018))?;

    // All three tools — two stock, one custom — run inside one streaming
    // pipeline; the drained report hands back each member's alert vector.
    let mut pipeline = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(OfferVelocity::default())
        .adjudication(Adjudication::k_of_n(2)) // the majority vote, online
        .build()
        .map_err(|e| e.to_string())?;
    for chunk in log.entries().chunks(1024) {
        pipeline.push_batch(chunk); // a live deployment would feed as logs arrive
    }
    let streamed = pipeline.drain();
    let (sentinel, arcane, custom) = match &streamed.members[..] {
        [s, a, c] => (s.clone(), a.clone(), c.clone()),
        _ => unreachable!("three members composed"),
    };

    // How diverse is the newcomer against each incumbent?
    let mut t = TextTable::new("Pairwise agreement diversity");
    t.columns(&["Pair", "Yule Q", "Disagreement", "Kappa"]);
    for (name, a, b) in [
        ("sentinel vs arcane", &sentinel, &arcane),
        ("sentinel vs offer-velocity", &sentinel, &custom),
        ("arcane vs offer-velocity", &arcane, &custom),
    ] {
        let d = AgreementDiversity::of(a, b);
        t.row_owned(vec![
            name.to_owned(),
            format!("{:.4}", d.yule_q),
            percent(d.disagreement),
            format!("{:.4}", d.kappa),
        ]);
    }
    println!("{}", t.render());

    // Three tools, majority vote.
    let mut t = TextTable::new("Schemes over three tools");
    t.columns(&["Scheme", "Sensitivity", "Specificity"]);
    for (k, label) in [(1u32, "1oo3"), (2, "2oo3 majority"), (3, "3oo3")] {
        let rule = KOutOfN::new(k, 3).expect("valid");
        let combined = rule.apply(&[&sentinel, &arcane, &custom]);
        let cm = ConfusionMatrix::of(&combined, log.truth());
        t.row_owned(vec![
            label.to_owned(),
            percent(cm.sensitivity()),
            percent(cm.specificity()),
        ]);
    }
    println!("{}", t.render());

    // The pipeline adjudicated 2oo3 online while streaming; the offline
    // rule over the member vectors agrees bit for bit.
    let offline = KOutOfN::new(2, 3)
        .expect("valid")
        .apply(&[&sentinel, &arcane, &custom]);
    assert_eq!(streamed.combined.to_bools(), offline.to_bools());

    println!("A narrow third tool barely moves 1oo3 but hardens the majority vote:\nits alerts land almost entirely inside the bot population.");
    Ok(())
}
