//! The full diversity analysis: every paper table, the labelled Section-V
//! metrics, per-actor detection rates, and the shape-reproduction checks.
//!
//! ```text
//! cargo run --release --example diversity_analysis
//! ```

use divscrape::{calibration, tables, DiversityStudy, StudyConfig};
use divscrape_traffic::ScenarioConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Medium scale (120k requests) keeps this example fast while every
    // population is present at meaningful volume.
    let report =
        DiversityStudy::new(StudyConfig::new(ScenarioConfig::medium(2018)).with_workers(2))
            .run()?;

    println!("{}", tables::full_report(&report));

    let findings = calibration::check_shape(&report);
    println!("{}", calibration::render_findings(&findings));

    // Dig into the exclusive sets the way the paper's Section V proposes:
    // what kind of client produces alerts only one tool raises?
    println!("Why the exclusive alerts exist (per-actor rates above):");
    println!("  - sentinel-only ≈ stealth scrapers: reputation-listed rented");
    println!("    infrastructure, browser identity, too slow for behaviour rules;");
    println!("  - arcane-only ≈ scanners: clean identity and pacing, but beacon");
    println!("    polling and malformed probes stick out behaviourally.");
    Ok(())
}
