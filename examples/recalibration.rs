//! Online recalibration, end to end: a recorded log whose scraper
//! population shifts mid-stream is replayed through the ingest layer
//! into a recalibrating pipeline, and the learned weights absorb the
//! drift a frozen calibration cannot.
//!
//! ```text
//!                       ┌────────────── divscrape-pipeline ───────────────┐
//! drifting log ─ Replay │ sentinel ┐                                      │
//!   (bot-heavy, then    │ arcane   ├─ weighted adjudication ─► alerts     │
//!    the stealth shift) │ rate-lim ┘        ▲                    │        │
//!                       │                   │ weight updates     │verdicts│
//!                       │                   └── recalibrator ◄───┘        │
//!                       └──────────────────────────────────────────────────┘
//! ```
//!
//! The composed rule starts as a plain union carrying a deliberately
//! noisy rate-threshold member. Pre-shift (bot-dominated traffic, the
//! paper's mix) the member is kept honest by the botnet; post-shift
//! (humans dominant, stealth scrapers up — `PopulationMix::stealth_shift`)
//! its alerts stop being corroborated and the frozen rule's precision
//! rots. The recalibrator watches exactly that corroboration and demotes
//! the member below the alarm threshold.
//!
//! `--smoke` (also the default, and a CI gate): runs both variants and
//! exits non-zero unless the weights visibly move, the demotion lands,
//! and the recalibrated rule beats the frozen baseline's post-shift
//! precision.
//!
//! ```text
//! cargo run --release --example recalibration -- --smoke
//! ```

use divscrape_detect::baselines::RateLimiter;
use divscrape_detect::{Arcane, Sentinel};
use divscrape_ensemble::ConfusionMatrix;
use divscrape_ingest::{IngestDriver, Replay, ReplayPace};
use divscrape_pipeline::{Adjudication, PipelineBuilder, PipelineReport, RecalibrationPolicy};
use divscrape_traffic::DriftScenario;

/// Noisy member's rate threshold: honest under the botnet, tripped by
/// hyperactive humans after the shift.
const RL_THRESHOLD: u32 = 8;
/// Alarm threshold of the weighted rule (below the neutral weight 1, so
/// every member starts able to alert alone — a union).
const ALARM: f64 = 0.95;
/// Requests per drift phase.
const PER_PHASE: u64 = 6_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--smoke") => run_smoke(),
        Some("--help" | "-h") => {
            eprintln!("usage: recalibration [--smoke]");
            Ok(())
        }
        Some(other) => Err(format!("unknown argument `{other}` (try --help)").into()),
    }
}

fn composition() -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(RateLimiter::new(RL_THRESHOLD))
        .adjudication(Adjudication::weighted(vec![1.0, 1.0, 1.0], ALARM))
        .chunk_capacity(256)
        .workers(2)
}

fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = DriftScenario::scraper_population_shift(2024, PER_PHASE);
    let shift = scenario.phase_boundaries()[1];
    let log = scenario.generate()?;
    let truth: Vec<bool> = log.truth().iter().map(|t| t.is_malicious()).collect();
    println!(
        "drift log: {} requests, population shift at {shift} \
         (phase 1 {:.0}% malicious, phase 2 {:.0}%)",
        log.len(),
        100.0 * count(&truth[..shift]) as f64 / shift as f64,
        100.0 * count(&truth[shift..]) as f64 / (log.len() - shift) as f64,
    );

    // Frozen baseline: the offline calibration, never revisited.
    let mut frozen = composition().build()?;
    frozen.push_batch(log.entries());
    let frozen_report = frozen.drain();

    // Recalibrating pipeline, fed through the ingest layer: the drifting
    // log replayed as a live source into the backpressured push path.
    let mut live = IngestDriver::new(
        composition()
            .recalibration(RecalibrationPolicy::new().window(256).update_every(512))
            .build()?,
    );
    let mut source = Replay::from_entries(log.entries(), ReplayPace::Unlimited);
    let ingest = live.run(&mut source)?;
    anyhow(
        ingest.report.requests() == log.len(),
        format!(
            "replay must deliver the whole log: {} of {}",
            ingest.report.requests(),
            log.len()
        ),
    )?;
    let live_report = ingest.report;
    let pipeline = live.pipeline();

    // The weight trajectory the recalibrator drove.
    let schedule = pipeline.rule_updates();
    println!("\nweight updates (sentinel / arcane / rate-limiter):");
    println!("  {:>6}  [1.00, 1.00, 1.00]  (composed)", 0);
    for update in schedule {
        println!(
            "  {:>6}  [{:.2}, {:.2}, {:.2}]",
            update.at_entry, update.weights[0], update.weights[1], update.weights[2]
        );
    }

    let precision = |report: &PipelineReport, lo: usize, hi: usize| {
        ConfusionMatrix::from_flags(&report.combined.to_bools()[lo..hi], &truth[lo..hi])
    };
    let frozen_post = precision(&frozen_report, shift, log.len());
    let live_post = precision(&live_report, shift, log.len());
    println!("\npost-shift (the regime the offline calibration never saw):");
    println!(
        "  frozen weights:      precision {:.3}  recall {:.3}",
        frozen_post.precision(),
        frozen_post.sensitivity()
    );
    println!(
        "  recalibrated:        precision {:.3}  recall {:.3}",
        live_post.precision(),
        live_post.sensitivity()
    );

    // The smoke gates.
    let stats = pipeline.stats();
    anyhow(
        stats.runtime_updates.adjudication >= 3,
        format!(
            "weights must visibly move: only {} updates applied",
            stats.runtime_updates.adjudication
        ),
    )?;
    let weights = stats.current_weights.clone().unwrap_or_default();
    anyhow(
        weights.len() == 3
            && weights[2] < ALARM
            && weights[0] > weights[2]
            && weights[1] > weights[2],
        format!("the noisy member must be demoted below the alarm threshold: {weights:?}"),
    )?;
    anyhow(
        live_post.precision() > frozen_post.precision() + 0.05,
        format!(
            "recalibrated post-shift precision {:.3} must beat frozen {:.3}",
            live_post.precision(),
            frozen_post.precision()
        ),
    )?;
    println!(
        "\nsmoke OK: {} weight updates, final weights [{:.2}, {:.2}, {:.2}], \
         post-shift precision {:.3} vs frozen {:.3}",
        stats.runtime_updates.adjudication,
        weights[0],
        weights[1],
        weights[2],
        live_post.precision(),
        frozen_post.precision()
    );
    Ok(())
}

fn count(flags: &[bool]) -> usize {
    flags.iter().filter(|f| **f).count()
}

fn anyhow(ok: bool, message: String) -> Result<(), Box<dyn std::error::Error>> {
    if ok {
        Ok(())
    } else {
        Err(message.into())
    }
}
