//! Retro-scoring: re-adjudicate a durable store's recorded history
//! offline — no detector re-run needed for rule changes, and stored CLF
//! lines are complete enough to re-run a *candidate detector* too.
//!
//! ```text
//! store (Score records) ──► recorded schedule ──► live alert set (bit-exact)
//!                       ├─► candidate rule     ──► precision/recall delta
//!                       └─► candidate detector ──► precision/recall delta
//! ```
//!
//! Default (also `--smoke`, the CI gate): a fully self-driving run — a
//! recalibrating pipeline streams the population-shift drift scenario
//! into a `StoreSink`, then three offline passes read the store back:
//!
//! 1. **Recorded schedule** — the weight updates the live recalibrator
//!    applied ([`Pipeline::rule_updates`]) replayed over the stored
//!    votes must reproduce the live alert set *exactly*; the process
//!    exits non-zero on any mismatch.
//! 2. **Candidate rule** — the initial (frozen) weighted rule over the
//!    same votes: what precision/recall *would have been* without
//!    recalibration.
//! 3. **Candidate detector** — a retuned rate-limiter re-run over the
//!    stored CLF lines, its votes substituted for the noisy member's.
//!
//! `--store <dir>` instead retro-scores an existing store directory
//! with a candidate alarm threshold (`--alarm <t>`, default 0.95) and
//! prints the alert-set diff against what the live run recorded.
//!
//! ```text
//! cargo run --release --example retro -- --smoke
//! cargo run --release --example retro -- --store ./alerts --alarm 1.5
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use divscrape_detect::baselines::RateLimiter;
use divscrape_detect::{run_alerts, Arcane, Sentinel};
use divscrape_ensemble::{ConfusionMatrix, RecalibrationPolicy};
use divscrape_pipeline::{
    Adjudication, AppliedRuleUpdate, PipelineBuilder, RecordPolicy, ScoreRecord, StoreSink,
};
use divscrape_store::{AlertStore, RecordKind, StoreConfig};
use divscrape_traffic::DriftScenario;

const INITIAL_WEIGHTS: [f64; 3] = [1.0, 1.0, 1.0];
const ALARM: f64 = 0.95;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store: Option<String> = None;
    let mut alarm = ALARM;
    let mut smoke = args.is_empty();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--store" => store = Some(it.next().ok_or("--store needs a directory")?),
            "--alarm" => alarm = it.next().ok_or("--alarm needs a threshold")?.parse()?,
            "--help" | "-h" => {
                eprintln!("usage: retro [--smoke | --store <dir> [--alarm <t>]]");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }
    match store {
        Some(dir) if !smoke => run_store(Path::new(&dir), alarm),
        _ => run_smoke(),
    }
}

/// Reads every Score record back from a store, in feed order.
fn read_scored(dir: &Path) -> Result<Vec<ScoreRecord>, Box<dyn std::error::Error>> {
    let mut store = AlertStore::open(dir, StoreConfig::default())?;
    let mut scored = Vec::new();
    for record in store.records()? {
        if record.kind == RecordKind::Score {
            scored.push(ScoreRecord::from_json(std::str::from_utf8(
                &record.payload,
            )?)?);
        }
    }
    scored.sort_by_key(|r| r.index);
    Ok(scored)
}

/// The engine's weighted rule, reapplied offline.
fn weighted_alert(votes: &[bool], weights: &[f64], threshold: f64) -> bool {
    let sum: f64 = votes
        .iter()
        .zip(weights)
        .filter(|(v, _)| **v)
        .map(|(_, w)| *w)
        .sum();
    sum >= threshold
}

/// Adjudicates stored votes under a recorded weight schedule: an update
/// at `at_entry` governs that entry onward.
fn apply_schedule(scored: &[ScoreRecord], schedule: &[AppliedRuleUpdate]) -> Vec<bool> {
    scored
        .iter()
        .map(|record| {
            let mut weights: &[f64] = &INITIAL_WEIGHTS;
            let mut threshold = ALARM;
            for update in schedule {
                if update.at_entry <= record.index {
                    weights = &update.weights;
                    threshold = update.threshold;
                }
            }
            weighted_alert(&record.votes, weights, threshold)
        })
        .collect()
}

fn print_row(label: &str, flags: &[bool], truth: &[bool], baseline: Option<&ConfusionMatrix>) {
    let m = ConfusionMatrix::from_flags(flags, truth);
    match baseline {
        Some(b) => println!(
            "  {label:<22} precision {:.3} ({:+.3})  recall {:.3} ({:+.3})",
            m.precision(),
            m.precision() - b.precision(),
            m.sensitivity(),
            m.sensitivity() - b.sensitivity()
        ),
        None => println!(
            "  {label:<22} precision {:.3}           recall {:.3}",
            m.precision(),
            m.sensitivity()
        ),
    }
}

/// Self-driving run: live recalibrated pipeline into a store, then the
/// three offline passes, with ground truth for precision/recall.
fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("divscrape-retro-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let cleanup = Cleanup(dir.clone());

    let scenario = DriftScenario::scraper_population_shift(2024, 3_000);
    let shift = scenario.phase_boundaries()[1];
    let log = scenario.generate()?;
    let truth: Vec<bool> = log.truth().iter().map(|t| t.is_malicious()).collect();
    println!(
        "drift stream: {} requests, population shift at {shift}",
        log.len()
    );

    // Live run — recalibrating trio, full history into the store.
    let sink = StoreSink::with_config(&dir, StoreConfig::default())?
        .record_policy(RecordPolicy::AllEntries);
    let mut live = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(RateLimiter::new(8))
        .adjudication(Adjudication::weighted(INITIAL_WEIGHTS.to_vec(), ALARM))
        .chunk_capacity(256)
        .recalibration(RecalibrationPolicy::new().window(256).update_every(512))
        .sink(sink)
        .build()
        .map_err(|e| e.to_string())?;
    live.push_batch(log.entries());
    let live_report = live.drain();
    let schedule = live.rule_updates().to_vec();
    drop(live);
    println!(
        "live run: {} alerts, {} recorded weight updates",
        live_report.combined.count(),
        schedule.len()
    );

    // Pass 1 — recorded schedule must reproduce the live run exactly.
    let scored = read_scored(&dir)?;
    if scored.len() != log.len() {
        return Err(format!("store holds {} of {} entries", scored.len(), log.len()).into());
    }
    let retro = apply_schedule(&scored, &schedule);
    let live_flags = live_report.combined.to_bools();
    let mismatches = retro
        .iter()
        .zip(&live_flags)
        .filter(|(a, b)| a != b)
        .count();
    println!("retro (recorded schedule): {mismatches} mismatches vs live alert set");
    if mismatches != 0 {
        return Err("retro-scored alert set diverged from the live run".into());
    }

    // Pass 2 — candidate rule: the initial weights, frozen.
    let frozen: Vec<bool> = scored
        .iter()
        .map(|r| weighted_alert(&r.votes, &INITIAL_WEIGHTS, ALARM))
        .collect();

    // Pass 3 — candidate detector: a retuned rate limiter re-run over
    // the stored CLF lines, substituted for the noisy member.
    let entries = scored
        .iter()
        .map(|r| r.entry())
        .collect::<Result<Vec<_>, _>>()?;
    let candidate_votes = run_alerts(&mut RateLimiter::new(16), &entries);
    let candidate: Vec<bool> = scored
        .iter()
        .zip(&candidate_votes)
        .map(|(r, &rl)| {
            let votes = [r.votes[0], r.votes[1], rl];
            weighted_alert(&votes, &INITIAL_WEIGHTS, ALARM)
        })
        .collect();

    let live_post = ConfusionMatrix::from_flags(&retro[shift..], &truth[shift..]);
    println!("post-shift window ({} requests):", truth.len() - shift);
    print_row(
        "live (recalibrated)",
        &retro[shift..],
        &truth[shift..],
        None,
    );
    print_row(
        "frozen initial rule",
        &frozen[shift..],
        &truth[shift..],
        Some(&live_post),
    );
    print_row(
        "retuned rate limiter",
        &candidate[shift..],
        &truth[shift..],
        Some(&live_post),
    );

    let frozen_post = ConfusionMatrix::from_flags(&frozen[shift..], &truth[shift..]);
    if live_post.precision() <= frozen_post.precision() {
        return Err("recalibrated rule should beat the frozen rule post-shift".into());
    }
    drop(cleanup);
    println!("OK: retro-scored history reproduces the live run exactly");
    Ok(())
}

/// Retro-scores an existing store with a candidate alarm threshold and
/// diffs the result against the alerts the live run recorded.
fn run_store(dir: &Path, alarm: f64) -> Result<(), Box<dyn std::error::Error>> {
    let scored = read_scored(dir)?;
    if scored.is_empty() {
        return Err(format!("no score records in {} — was the sink built with RecordPolicy::AllEntries or VotedEntries?", dir.display()).into());
    }
    let members = scored[0].votes.len();
    let weights = vec![1.0; members];
    println!(
        "{}: {} scored entries, {members} members; candidate rule: unit weights, alarm {alarm}",
        dir.display(),
        scored.len()
    );

    let recorded: BTreeSet<u64> = scored
        .iter()
        .filter(|r| r.alerted)
        .map(|r| r.index)
        .collect();
    let candidate: BTreeSet<u64> = scored
        .iter()
        .filter(|r| weighted_alert(&r.votes, &weights, alarm))
        .map(|r| r.index)
        .collect();
    let added = candidate.difference(&recorded).count();
    let removed = recorded.difference(&candidate).count();
    println!(
        "recorded {} alerts; candidate {} alerts ({added} new, {removed} dropped)",
        recorded.len(),
        candidate.len()
    );
    Ok(())
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
