//! The replay bench behind `BENCH_zero_copy.json`: the owned path
//! (every line parsed into a heap-backed `LogEntry` before the
//! detectors see it — the spine before the zero-copy rework) raced
//! against the borrowed path (`Pipeline::push_line`, parsed in place
//! into the chunk arena) over the identical generated log, on one
//! worker so the numbers are per-core.
//!
//! Reported per path: entries/sec, ns/entry and allocs/entry (via a
//! counting global allocator), measured over timed passes after an
//! untimed warm-up pass. The run appends one record to the trajectory
//! file (default `BENCH_zero_copy.json`), so successive PRs extend a
//! measured history instead of overwriting it — see `docs/CI.md` for
//! the format.
//!
//! ```text
//! cargo run --release --example zero_copy_bench -- --smoke
//! cargo run --release --example zero_copy_bench -- --full --label pr8
//! ```
//!
//! `--smoke` (the CI gate) runs at small scale and exits non-zero
//! unless (a) both paths produce the same alert count and (b) the
//! borrowed path clears 1.5× the owned path's throughput — headroom
//! below the ≥2× seen on idle hardware, so a loaded CI runner does not
//! flake the gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use divscrape_detect::{Arcane, Sentinel};
use divscrape_httplog::LogEntry;
use divscrape_pipeline::{Adjudication, Pipeline, PipelineBuilder};
use divscrape_traffic::{generate, ScenarioConfig};

/// Counts every heap allocation (fresh and growing) in the process so
/// the bench can report allocs/entry alongside the throughput numbers.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter never influences
// the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

struct PathResult {
    entries_per_sec: f64,
    ns_per_entry: f64,
    allocs_per_entry: f64,
    alerts: u64,
}

fn build_pipeline() -> Pipeline {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(1)
        .build()
        .expect("bench pipeline")
}

/// One warm-up pass, then `passes` timed passes of `feed` over the
/// whole log on a fresh pipeline. Each pass is timed separately and
/// the **best pass** is reported: the paths are deterministic, so the
/// fastest pass is the one least perturbed by other tenants of the
/// machine — per-pass minimums compare far more stably than means on
/// shared hardware. The allocator delta spans all timed passes (it is
/// load-independent).
fn run_path(lines: &[String], passes: u32, feed: impl Fn(&mut Pipeline, &str)) -> PathResult {
    let mut pipeline = build_pipeline();
    for line in lines {
        feed(&mut pipeline, line);
    }

    let entries_per_pass = lines.len() as u64;
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let started = Instant::now();
        for line in lines {
            feed(&mut pipeline, line);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;

    let report = pipeline.drain();
    let total_entries = entries_per_pass * u64::from(passes);
    PathResult {
        entries_per_sec: entries_per_pass as f64 / best,
        ns_per_entry: best * 1e9 / entries_per_pass as f64,
        allocs_per_entry: allocs as f64 / total_entries as f64,
        alerts: report.combined.count(),
    }
}

fn record_json(
    label: &str,
    scale: &str,
    n: usize,
    passes: u32,
    owned: &PathResult,
    zero_copy: &PathResult,
    speedup: f64,
) -> String {
    let path_json = |p: &PathResult| {
        format!(
            "{{ \"entries_per_sec\": {:.0}, \"ns_per_entry\": {:.1}, \"allocs_per_entry\": {:.3} }}",
            p.entries_per_sec, p.ns_per_entry, p.allocs_per_entry
        )
    };
    format!(
        "  {{\n    \"label\": \"{label}\",\n    \"scale\": \"{scale}\",\n    \"entries\": {n},\n    \"passes\": {passes},\n    \"workers\": 1,\n    \"owned\": {},\n    \"zero_copy\": {},\n    \"speedup\": {speedup:.2}\n  }}",
        path_json(owned),
        path_json(zero_copy)
    )
}

/// Appends one record to the JSON-array trajectory file, creating it
/// (or replacing a non-array file) as a one-record array.
fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let prefix = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) if body.trim_end().is_empty() || body.trim_end() == "[" => {
                    "[\n".to_owned()
                }
                Some(body) => format!("{},\n", body.trim_end()),
                None => "[\n".to_owned(),
            }
        }
        Err(_) => "[\n".to_owned(),
    };
    std::fs::write(path, format!("{prefix}{record}\n]\n"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = args.is_empty();
    let mut full = false;
    let mut label = "smoke".to_owned();
    let mut out = "BENCH_zero_copy.json".to_owned();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--full" => full = true,
            "--label" => label = it.next().ok_or("--label needs a value")?,
            "--out" => out = it.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: zero_copy_bench [--smoke | --full] [--label <name>] [--out <path>]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }
    let (scale, config, passes) = if full {
        ("medium", ScenarioConfig::medium(2018), 5u32)
    } else {
        smoke = true;
        ("small", ScenarioConfig::small(2018), 5u32)
    };

    let log = generate(&config)?;
    // Render the raw CLF lines up front: both paths consume the same
    // borrowed `&str`s, so the race is parse-and-feed strategy only.
    let lines: Vec<String> = log.entries().iter().map(|e| e.to_string()).collect();
    eprintln!(
        "zero_copy_bench: {} entries × {passes} timed passes ({scale} scale)",
        lines.len()
    );

    let owned = run_path(&lines, passes, |pipeline, line| {
        pipeline.push(LogEntry::parse(line).expect("generated line parses"));
    });
    let zero_copy = run_path(&lines, passes, |pipeline, line| {
        pipeline.push_line(line).expect("generated line parses");
    });
    let speedup = zero_copy.entries_per_sec / owned.entries_per_sec;

    eprintln!(
        "owned:     {:>10.0} entries/s  {:>7.1} ns/entry  {:>6.3} allocs/entry  {} alerts",
        owned.entries_per_sec, owned.ns_per_entry, owned.allocs_per_entry, owned.alerts
    );
    eprintln!(
        "zero-copy: {:>10.0} entries/s  {:>7.1} ns/entry  {:>6.3} allocs/entry  {} alerts",
        zero_copy.entries_per_sec,
        zero_copy.ns_per_entry,
        zero_copy.allocs_per_entry,
        zero_copy.alerts
    );
    eprintln!("speedup:   {speedup:.2}x");

    let record = record_json(
        &label,
        scale,
        lines.len(),
        passes,
        &owned,
        &zero_copy,
        speedup,
    );
    append_record(&out, &record)?;
    eprintln!("appended record to {out}");

    // The two paths share one parser and one detector stack: any alert
    // drift means the zero-copy spine changed a verdict.
    if owned.alerts != zero_copy.alerts {
        return Err(format!(
            "alert drift: owned path raised {} alerts, zero-copy path {}",
            owned.alerts, zero_copy.alerts
        )
        .into());
    }
    if smoke && speedup < 1.5 {
        return Err(
            format!("zero-copy speedup {speedup:.2}x is under the 1.5x smoke floor").into(),
        );
    }
    Ok(())
}
