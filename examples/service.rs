//! The sharded service plane, end to end on loopback: syslog-style UDP
//! datagrams and a TCP line stream flow into per-tenant shard drivers,
//! every tenant's alerts ride ONE multiplexed collector connection, and
//! a line-protocol admin socket drives membership, freezing and the
//! eviction budget **live** while traffic is in flight.
//!
//! ```text
//! UDP datagrams ─► UdpSource ──► pump ─┐                                  ┌► collector
//!                                      ├► ServicePlane ─ shard drivers ─► MuxCollector (one TCP conn)
//! TCP stream ───► SocketSource ► pump ─┘        ▲
//!                                               │ STATS / TENANTS / JOIN / LEAVE
//!                                   admin (nc) ─┘ FREEZE / THAW / BUDGET
//! ```
//!
//! `--smoke` (also the default, and a CI gate) exits non-zero unless:
//! every UDP datagram arrives (zero drops at the paced rate), both edge
//! tenants alert, every collector line carries the right tenant tag,
//! the per-tenant telemetry split sums to the shared stream, and the
//! admin socket observably JOINs, FREEZEs, re-budgets and LEAVEs a
//! tenant mid-flight.
//!
//! `--bench` races a 1-shard plane (one driver thread — the
//! `PipelineHub` deployment model) against a 4-shard plane over the
//! same log and appends one record to `BENCH_service.json` in the
//! `BENCH_zero_copy.json` trajectory format (see `docs/CI.md`).
//!
//! ```text
//! cargo run --release --example service -- --smoke
//! cargo run --release --example service -- --bench --label pr8
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use divscrape_detect::{Arcane, Sentinel};
use divscrape_ingest::{SocketSource, SocketSourceConfig, UdpSource, UdpSourceConfig};
use divscrape_pipeline::{Adjudication, MuxCollector, PipelineBuilder, TenantId};
use divscrape_service::{AdminServer, IngestOutcome, PumpMode, ServicePlane, SourcePump};
use divscrape_traffic::{generate, ScenarioConfig};

/// Counts every heap allocation so `--bench` can report allocs/entry
/// (pure pass-through to `System`, same as `zero_copy_bench`).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter never influences
// the returned pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench = false;
    let mut label = "smoke".to_owned();
    let mut out = "BENCH_service.json".to_owned();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => bench = false,
            "--bench" => bench = true,
            "--label" => label = it.next().ok_or("--label needs a value")?,
            "--out" => out = it.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                eprintln!("usage: service [--smoke | --bench [--label <name>] [--out <path>]]");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)").into()),
        }
    }
    if bench {
        run_bench(&label, &out)
    } else {
        run_smoke()
    }
}

/// The pipeline composition every tenant in this example runs: the
/// two-tool 1oo2 ensemble from the paper's deployment sections.
fn two_tool() -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
}

/// A minimal admin-protocol client: one command out, one reply back.
struct AdminClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl AdminClient {
    fn connect(admin: &AdminServer) -> std::io::Result<AdminClient> {
        let stream = TcpStream::connect(admin.local_addr())?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(AdminClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn command(&mut self, line: &str) -> Result<String, Box<dyn std::error::Error>> {
        writeln!(self.writer, "{line}")?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        if reply.is_empty() {
            return Err(format!("no reply to {line:?}").into());
        }
        Ok(reply.trim_end().to_owned())
    }
}

/// Pulls a string field out of one alert JSON line (the alert format is
/// flat, so a plain scan suffices for the smoke check).
fn json_field<'a>(line: &'a str, field: &str) -> Option<&'a str> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    Some(&line[start..start + line[start..].find('"')?])
}

fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    let started = Instant::now();
    let udp_tenant = TenantId::new("udp-edge");
    let tcp_tenant = TenantId::new("tcp-edge");
    let popup = TenantId::new("popup");

    // The collector: ONE accept — sharing a single connection across
    // every tenant is the point of the mux.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let collector_addr = listener.local_addr()?;
    let collector = std::thread::spawn(move || -> std::io::Result<Vec<String>> {
        let (stream, _) = listener.accept()?;
        let mut lines = Vec::new();
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(line) => lines.push(line),
                Err(_) => break,
            }
        }
        Ok(lines)
    });

    let mux = MuxCollector::connect(collector_addr)?;
    // One handle per tenant, cloned into each of that tenant's shards:
    // clones share counters, so the telemetry reads per tenant.
    let udp_sink = mux.handle();
    let tcp_sink = mux.handle();
    let (udp_tel, tcp_tel) = (udp_sink.telemetry(), tcp_sink.telemetry());

    let plane = ServicePlane::builder()
        .queue_depth(4096)
        .tenant(udp_tenant.clone(), 2, move |_, _| {
            two_tool().sink(udp_sink.clone())
        })
        .tenant(tcp_tenant.clone(), 2, move |_, _| {
            two_tool().sink(tcp_sink.clone())
        })
        .default_factory({
            let mux = mux.clone();
            move |_, _| two_tool().sink(mux.handle())
        })
        .default_shards(2)
        .build()?;
    let admin = AdminServer::bind("127.0.0.1:0", plane.clone())?;

    // Edge intake: a lossy syslog-style UDP socket and a blocking TCP
    // line stream, each pumped into its tenant's shards.
    let udp_source = UdpSource::bind_with(
        "127.0.0.1:0",
        UdpSourceConfig {
            queue_depth: 8192,
            ..Default::default()
        },
    )?;
    let udp_addr = udp_source.local_addr();
    let udp_pump = SourcePump::spawn(&plane, &udp_tenant, udp_source, PumpMode::Lossy);
    let tcp_source = SocketSource::bind_with(
        "127.0.0.1:0",
        SocketSourceConfig {
            queue_depth: 4096,
            finish_on_disconnect: true,
            ..Default::default()
        },
    )?;
    let tcp_addr = tcp_source.local_addr();
    let tcp_pump = SourcePump::spawn(&plane, &tcp_tenant, tcp_source, PumpMode::Blocking);

    let udp_log = generate(&ScenarioConfig::tiny(81))?;
    let tcp_log = generate(&ScenarioConfig::tiny(82))?;
    let popup_log = generate(&ScenarioConfig::tiny(83))?;
    let udp_lines = udp_log.len() as u64;
    let udp_payload: Vec<String> = udp_log.entries().iter().map(|e| e.to_string()).collect();
    let udp_feeder = std::thread::spawn(move || -> std::io::Result<()> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        for (i, line) in udp_payload.iter().enumerate() {
            socket.send_to(line.as_bytes(), udp_addr)?;
            // Paced so the deep source queue absorbs every datagram:
            // the smoke pins the zero-drop case; the lossy accounting
            // under overload is pinned by `udp_edge_cases`.
            if i % 16 == 15 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Ok(())
    });
    let tcp_payload: Vec<String> = tcp_log.entries().iter().map(|e| e.to_string()).collect();
    let tcp_feeder = std::thread::spawn(move || -> std::io::Result<()> {
        let mut conn = TcpStream::connect(tcp_addr)?;
        for line in &tcp_payload {
            writeln!(conn, "{line}")?;
        }
        Ok(())
    });

    // While traffic is in flight, drive the control plane over the
    // admin socket exactly as an operator with `nc` would.
    let mut client = AdminClient::connect(&admin)?;
    expect(
        client.command("JOIN popup 2")?,
        "OK joined popup shards=2",
        "JOIN",
    )?;
    let tenants = client.command("TENANTS")?;
    if !tenants.contains("\"popup\"") {
        return Err(format!("JOINed tenant missing from TENANTS: {tenants}").into());
    }
    for entry in popup_log.entries() {
        if plane.ingest(&popup, entry.to_string()) != IngestOutcome::Routed {
            return Err("popup line was not routed".into());
        }
    }
    expect(client.command("FREEZE popup")?, "OK frozen popup", "FREEZE")?;
    let stats = client.command("STATS")?;
    if !stats.contains("\"tenant\":\"popup\"") || !stats.contains("\"frozen\":true") {
        return Err(format!("FREEZE not visible in STATS: {stats}").into());
    }
    expect(client.command("THAW popup")?, "OK thawed popup", "THAW")?;
    expect(
        client.command("BUDGET 512")?,
        "OK budget=512 tenants=3",
        "BUDGET",
    )?;
    if !client.command("STATS")?.contains("\"eviction_budget\":512") {
        return Err("BUDGET not visible in STATS".into());
    }

    // Land every line: the feeders finish, the UDP pump reports all
    // datagrams through (no EOF on UDP — stop it explicitly), the TCP
    // pump sees the disconnect.
    udp_feeder.join().expect("udp feeder panicked")?;
    tcp_feeder.join().expect("tcp feeder panicked")?;
    let deadline = Instant::now() + Duration::from_secs(60);
    while udp_pump.stats().lines < udp_lines {
        if Instant::now() > deadline {
            return Err(format!(
                "UDP leg delivered {}/{udp_lines} lines",
                udp_pump.stats().lines
            )
            .into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let udp_stats = udp_pump.stop();
    if udp_stats.dropped != 0 {
        return Err(format!("UDP intake dropped {} lines", udp_stats.dropped).into());
    }
    if !tcp_pump.wait(Duration::from_secs(60)) {
        return Err("TCP pump did not finish".into());
    }
    tcp_pump.stop();
    let _ = plane.drain(&udp_tenant);
    let _ = plane.drain(&tcp_tenant);

    // LEAVE stops popup's shards, draining them: the reply reports the
    // tenant's full entry count, and its work stays in the monotonic
    // aggregate below.
    expect(
        client.command("LEAVE popup")?,
        &format!("OK left popup entries={}", popup_log.len()),
        "LEAVE",
    )?;

    // The aggregate adds up and both edge tenants alerted.
    let stats = plane.stats();
    let total = udp_lines + tcp_log.len() as u64 + popup_log.len() as u64;
    if stats.entries_processed != total {
        return Err(format!(
            "plane processed {}/{total} entries",
            stats.entries_processed
        )
        .into());
    }
    if stats.parse_errors != 0 || stats.dropped_lines != 0 || stats.unrouted_lines != 0 {
        return Err(format!(
            "lossless run expected: parse_errors={} dropped={} unrouted={}",
            stats.parse_errors, stats.dropped_lines, stats.unrouted_lines
        )
        .into());
    }
    let tenant_alerts = |name: &str| {
        stats
            .tenants
            .iter()
            .find(|t| t.tenant.as_str() == name)
            .map(|t| t.alerts())
            .unwrap_or(0)
    };
    let (udp_alerts, tcp_alerts) = (tenant_alerts("udp-edge"), tenant_alerts("tcp-edge"));
    if udp_alerts == 0 || tcp_alerts == 0 {
        return Err(
            format!("both edge tenants must alert (udp={udp_alerts} tcp={tcp_alerts})").into(),
        );
    }

    let after = client.command("STATS")?;
    if !after.contains(&format!("\"entries_processed\":{total}")) {
        return Err(format!("departed tenant's entries left the aggregate: {after}").into());
    }
    expect(client.command("QUIT")?, "OK bye", "QUIT")?;

    // Tear down: the plane and every mux handle drop, closing the one
    // collector connection, and the reader thread hands back the wire.
    let mux_total = mux.telemetry().written();
    plane.shutdown();
    drop(admin);
    drop(plane);
    drop(mux);
    let wire = collector.join().expect("collector panicked")?;

    // Every alert crossed the single shared connection, tenant-tagged,
    // and the per-tenant telemetry split sums back to the stream.
    if mux_total != wire.len() as u64 {
        return Err(format!(
            "mux wrote {mux_total} alerts but the collector received {}",
            wire.len()
        )
        .into());
    }
    let tagged = |name: &str| {
        wire.iter()
            .filter(|l| json_field(l, "tenant") == Some(name))
            .count() as u64
    };
    if tagged("udp-edge") != udp_tel.written() || tagged("udp-edge") != udp_alerts {
        return Err(format!(
            "udp-edge tag/telemetry drift: {} on the wire, {} in telemetry, {} alerts",
            tagged("udp-edge"),
            udp_tel.written(),
            udp_alerts
        )
        .into());
    }
    if tagged("tcp-edge") != tcp_tel.written() || tagged("tcp-edge") != tcp_alerts {
        return Err(format!(
            "tcp-edge tag/telemetry drift: {} on the wire, {} in telemetry, {} alerts",
            tagged("tcp-edge"),
            tcp_tel.written(),
            tcp_alerts
        )
        .into());
    }
    let stray = wire
        .iter()
        .filter(|l| {
            !matches!(
                json_field(l, "tenant"),
                Some("udp-edge" | "tcp-edge" | "popup")
            )
        })
        .count();
    if stray != 0 {
        return Err(format!("{stray} collector lines carry an unknown tenant tag").into());
    }
    if tagged("popup") == 0 {
        return Err("the admin-JOINed tenant never alerted across the mux".into());
    }

    println!(
        "smoke OK in {:?}: {total} entries over UDP+TCP through {} shard drivers, \
         {} tenant-tagged alerts on one collector connection \
         (udp-edge={udp_alerts} tcp-edge={tcp_alerts} popup={})",
        started.elapsed(),
        6,
        wire.len(),
        tagged("popup"),
    );
    Ok(())
}

fn expect(got: String, want: &str, what: &str) -> Result<(), Box<dyn std::error::Error>> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: expected {want:?}, got {got:?}").into())
    }
}

// ---------------------------------------------------------------------
// --bench: single driver vs sharded drivers
// ---------------------------------------------------------------------

struct ArmResult {
    entries_per_sec: f64,
    ns_per_entry: f64,
    allocs_per_entry: f64,
    alerts: u64,
}

/// One warm-up pass, then `passes` timed passes of the whole log
/// through a plane with `shards` driver threads (workers(1) inside
/// each shard, so the driver count is the variable under test). Each
/// pass ingests every line and drains; the best pass is reported, the
/// allocator delta spans all timed passes.
fn run_arm(lines: &[String], shards: usize, passes: u32) -> ArmResult {
    let tenant = TenantId::new("bench");
    let plane = ServicePlane::builder()
        .queue_depth(4096)
        .tenant(tenant.clone(), shards, |_, _| {
            PipelineBuilder::new()
                .detector(Sentinel::stock())
                .detector(Arcane::stock())
                .adjudication(Adjudication::k_of_n(1))
                .workers(1)
        })
        .build()
        .expect("bench plane");

    let feed_and_drain = |_: u32| {
        for line in lines {
            assert_eq!(
                plane.ingest(&tenant, line.clone()),
                IngestOutcome::Routed,
                "bench line refused"
            );
        }
        let _ = plane.drain_all();
    };
    feed_and_drain(0); // warm-up

    let entries_per_pass = lines.len() as u64;
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut best = f64::INFINITY;
    for pass in 0..passes {
        let started = Instant::now();
        feed_and_drain(pass + 1);
        best = best.min(started.elapsed().as_secs_f64());
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let alerts = plane.stats().alerts;
    plane.shutdown();

    let total_entries = entries_per_pass * u64::from(passes);
    ArmResult {
        entries_per_sec: entries_per_pass as f64 / best,
        ns_per_entry: best * 1e9 / entries_per_pass as f64,
        allocs_per_entry: allocs as f64 / total_entries as f64,
        alerts,
    }
}

const BENCH_SHARDS: usize = 4;

fn record_json(
    label: &str,
    scale: &str,
    n: usize,
    passes: u32,
    single: &ArmResult,
    sharded: &ArmResult,
    speedup: f64,
) -> String {
    let arm_json = |a: &ArmResult| {
        format!(
            "{{ \"entries_per_sec\": {:.0}, \"ns_per_entry\": {:.1}, \"allocs_per_entry\": {:.3} }}",
            a.entries_per_sec, a.ns_per_entry, a.allocs_per_entry
        )
    };
    format!(
        "  {{\n    \"label\": \"{label}\",\n    \"scale\": \"{scale}\",\n    \"entries\": {n},\n    \"passes\": {passes},\n    \"workers\": 1,\n    \"single_driver\": {},\n    \"sharded\": {},\n    \"speedup\": {speedup:.2},\n    \"note\": \"end-to-end ingest+drain through the service plane; sharded = {BENCH_SHARDS} client-hash shard drivers per tenant vs one driver, workers(1) inside each shard\"\n  }}",
        arm_json(single),
        arm_json(sharded)
    )
}

/// Appends one record to the JSON-array trajectory file, creating it
/// (or replacing a non-array file) as a one-record array.
fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    let prefix = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) if body.trim_end().is_empty() || body.trim_end() == "[" => {
                    "[\n".to_owned()
                }
                Some(body) => format!("{},\n", body.trim_end()),
                None => "[\n".to_owned(),
            }
        }
        Err(_) => "[\n".to_owned(),
    };
    std::fs::write(path, format!("{prefix}{record}\n]\n"))
}

fn run_bench(label: &str, out: &str) -> Result<(), Box<dyn std::error::Error>> {
    let (scale, passes) = ("small", 3u32);
    let log = generate(&ScenarioConfig::small(2018))?;
    let lines: Vec<String> = log.entries().iter().map(|e| e.to_string()).collect();
    eprintln!(
        "service bench: {} entries × {passes} timed passes, 1 vs {BENCH_SHARDS} shard drivers",
        lines.len()
    );

    let single = run_arm(&lines, 1, passes);
    let sharded = run_arm(&lines, BENCH_SHARDS, passes);
    let speedup = sharded.entries_per_sec / single.entries_per_sec;

    eprintln!(
        "single driver: {:>10.0} entries/s  {:>7.1} ns/entry  {:>6.3} allocs/entry  {} alerts",
        single.entries_per_sec, single.ns_per_entry, single.allocs_per_entry, single.alerts
    );
    eprintln!(
        "{BENCH_SHARDS} shard drivers: {:>8.0} entries/s  {:>7.1} ns/entry  {:>6.3} allocs/entry  {} alerts",
        sharded.entries_per_sec, sharded.ns_per_entry, sharded.allocs_per_entry, sharded.alerts
    );
    eprintln!("speedup:       {speedup:.2}x");

    let record = record_json(
        label,
        scale,
        lines.len(),
        passes,
        &single,
        &sharded,
        speedup,
    );
    append_record(out, &record)?;
    eprintln!("appended record to {out}");

    // Sharding must not change a verdict: the client-hash routing keeps
    // same-client runs on one shard, so the alert totals are identical.
    if single.alerts != sharded.alerts {
        return Err(format!(
            "alert drift: single driver raised {} alerts, sharded plane {}",
            single.alerts, sharded.alerts
        )
        .into());
    }
    Ok(())
}
