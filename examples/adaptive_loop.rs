//! The adaptation loop closed end to end: an adaptive adversary that
//! reacts to being caught, against a pipeline that learns both its
//! member weights and its alarm threshold — with drift alarms firing
//! as the population moves.
//!
//! ```text
//!          ┌───────────────────── arms race ─────────────────────┐
//!          │                                                     │
//! AdaptiveScenario ── round log ──► │ sentinel ┐                 │
//!   (escalates when  ▲              │ arcane   ├─ weighted rule ─► alerts
//!    its sessions    │              │ rate-lim ┘     ▲  ▲        │   │
//!    get caught)     │              │   recalibrator ┘  │        │   │
//!          │         │              │   threshold ctrl ─┘        │   │
//!          │         │              │   drift alarms ─► ops      │   │
//!          │         └── per-entry alert flags (the feedback) ◄──┘   │
//!          └─────────────────────────────────────────────────────────┘
//! ```
//!
//! Round by round the adversary observes which of its sessions were
//! alerted; when too many are caught it slows to human pace, splits
//! its sessions, avoids the honeytraps and stands the noisy botnets
//! down ([`AdaptiveScenario`]). The defence answers in kind: the
//! recalibrator reweighs members as their corroboration shifts, the
//! threshold controller walks the alarm threshold toward a target
//! alert rate, and each engineered shift surfaces as a
//! [`DriftAlarm`](divscrape_pipeline::DriftAlarm).
//!
//! `--smoke` (also the default, and a CI gate): runs the arms race and
//! exits non-zero unless the adversary escalates and is driven quiet,
//! the learned threshold visibly moves, drift alarms fire, and — on
//! the fixed combined log — the adaptive stack holds precision ≥ 0.95
//! in every post-escalation round while the frozen launch rule rots.
//!
//! ```text
//! cargo run --release --example adaptive_loop -- --smoke
//! ```

use divscrape_detect::baselines::RateLimiter;
use divscrape_detect::{Arcane, Sentinel};
use divscrape_ensemble::{ConfusionMatrix, RecalibrationPolicy, ThresholdPolicy};
use divscrape_ingest::{IngestDriver, Replay, ReplayPace};
use divscrape_pipeline::{Adjudication, PipelineBuilder, RuleProvenance};
use divscrape_traffic::AdaptiveScenario;

/// Noisy member's rate threshold: honest under the opening botnet,
/// tripped by hyperactive humans once the adversary goes stealthy.
const RL_THRESHOLD: u32 = 8;
/// Launch alarm threshold: a plain union, the configuration the paper's
/// FP tables show you cannot keep.
const ALARM: f64 = 0.95;
/// Rounds of the arms race and requests per round.
const ROUNDS: usize = 4;
const REQUESTS_PER_ROUND: u64 = 3_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--smoke") => run_smoke(),
        Some("--help" | "-h") => {
            eprintln!("usage: adaptive_loop [--smoke]");
            Ok(())
        }
        Some(other) => Err(format!("unknown argument `{other}` (try --help)").into()),
    }
}

fn trio() -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(RateLimiter::new(RL_THRESHOLD))
        .adjudication(Adjudication::weighted(vec![1.0, 1.0, 1.0], ALARM))
        .chunk_capacity(256)
}

/// The full adaptation stack: learned weights plus a learned alarm
/// threshold targeting a 20 % alert rate.
fn adaptive_stack() -> PipelineBuilder {
    trio()
        .recalibration(RecalibrationPolicy::new().window(256).update_every(512))
        .threshold_control(
            ThresholdPolicy::new(0.20)
                .window(512)
                .update_every(1024)
                .bounds(ALARM, 2.5)
                .max_step(0.35)
                .dead_band(0.25),
        )
}

fn run_smoke() -> Result<(), Box<dyn std::error::Error>> {
    // ── The closed loop: the adaptation stack in the feedback seat ──
    let mut feedback = adaptive_stack().build()?;
    let outcome = AdaptiveScenario::arms_race(2024, ROUNDS, REQUESTS_PER_ROUND).run(|round| {
        feedback.push_batch(round.entries());
        feedback.drain().combined.to_bools()
    })?;
    println!("arms race ({ROUNDS} rounds x {REQUESTS_PER_ROUND} requests):");
    for (i, round) in outcome.rounds().iter().enumerate() {
        println!(
            "  round {i}: {:>4.1}% of malicious sessions caught — {}",
            100.0 * round.alerted_share,
            if round.escalated {
                "adversary escalates"
            } else {
                "adversary holds"
            }
        );
    }
    let drift_alarms = feedback.stats().drift_alarms;
    println!("  drift alarms raised while adapting: {drift_alarms}");

    anyhow(
        outcome.rounds()[0].escalated && outcome.escalations() >= 2,
        format!("the loop must provoke escalation: {:?}", outcome.rounds()),
    )?;
    let (first, last) = (
        outcome.rounds()[0].alerted_share,
        outcome.rounds().last().unwrap().alerted_share,
    );
    anyhow(
        last < first,
        format!("the adversary must be driven quiet: {first:.2} -> {last:.2}"),
    )?;
    anyhow(
        drift_alarms >= 1,
        "adaptation is drift and must alarm".into(),
    )?;

    // ── Arms over the fixed combined log, fed through the ingest layer ──
    let log = outcome.log();
    let truth: Vec<bool> = log.truth().iter().map(|t| t.is_malicious()).collect();

    let mut frozen = trio().build()?;
    frozen.push_batch(log.entries());
    let frozen_flags = frozen.drain().combined.to_bools();

    let mut live = IngestDriver::new(adaptive_stack().build()?);
    let mut source = Replay::from_entries(log.entries(), ReplayPace::Unlimited);
    let ingest = live.run(&mut source)?;
    anyhow(
        ingest.report.requests() == log.len(),
        format!(
            "replay must deliver the whole log: {} of {}",
            ingest.report.requests(),
            log.len()
        ),
    )?;
    let learned_flags = ingest.report.combined.to_bools();
    let pipeline = live.pipeline();

    let threshold_installs: Vec<(u64, f64)> = pipeline
        .rule_updates()
        .iter()
        .filter(|u| u.provenance == RuleProvenance::LearnedThreshold)
        .map(|u| (u.at_entry, u.threshold))
        .collect();
    println!("\nlearned alarm threshold (launch {ALARM}):");
    for (at, threshold) in &threshold_installs {
        println!("  {at:>6}  {threshold:.3}");
    }
    anyhow(
        !threshold_installs.is_empty(),
        "the controller must install learned thresholds".into(),
    )?;

    println!("\nper-round precision on the combined log (frozen vs adaptive):");
    let mut worst_learned: f64 = 1.0;
    let mut best_frozen_post: f64 = 0.0;
    for (i, round) in outcome.rounds().iter().enumerate() {
        let seg = round.start..round.start + round.len;
        let frozen = ConfusionMatrix::from_flags(&frozen_flags[seg.clone()], &truth[seg.clone()]);
        let learned = ConfusionMatrix::from_flags(&learned_flags[seg.clone()], &truth[seg]);
        println!(
            "  round {i}: frozen {:.3}  adaptive {:.3}",
            frozen.precision(),
            learned.precision()
        );
        if i >= 1 {
            worst_learned = worst_learned.min(learned.precision());
            best_frozen_post = best_frozen_post.max(frozen.precision());
        }
    }
    anyhow(
        worst_learned >= 0.95,
        format!("the adaptive stack must hold the FP budget, worst {worst_learned:.3}"),
    )?;
    anyhow(
        best_frozen_post < 0.90,
        format!("the frozen union must visibly rot, best {best_frozen_post:.3}"),
    )?;

    println!(
        "\nsmoke OK: {} escalations, {} threshold installs (final {:.3}), \
         {drift_alarms} drift alarms, worst adaptive precision {worst_learned:.3} \
         vs best frozen {best_frozen_post:.3}",
        outcome.escalations(),
        threshold_installs.len(),
        threshold_installs.last().map_or(ALARM, |(_, t)| *t),
    );
    Ok(())
}

fn anyhow(ok: bool, message: String) -> Result<(), Box<dyn std::error::Error>> {
    if ok {
        Ok(())
    } else {
        Err(message.into())
    }
}
