//! Workspace façade for the `divscrape` reproduction of *"Using Diverse
//! Detectors for Detecting Malicious Web Scraping Activity"* (Marques et al.,
//! DSN 2018).
//!
//! This crate exists so that the repository's `examples/` and `tests/`
//! directories have a single dependency root; it simply re-exports the
//! workspace crates under short names:
//!
//! * [`httplog`] — Apache Combined Log Format substrate.
//! * [`traffic`] — synthetic labelled e-commerce traffic generator.
//! * [`detect`] — the diverse detectors (Sentinel, Arcane, baselines).
//! * [`ensemble`] — contingency/diversity analysis, adjudication, metrics.
//! * [`pipeline`] — the streaming detection pipeline (composed detectors,
//!   online adjudication, sinks, sharded workers).
//! * [`ingest`] — live ingestion: file-tail, TCP-socket and replay log
//!   sources driving the pipeline.
//! * [`store`] — durable storage: the embedded alert/score store and the
//!   spool queue behind the sinks.
//! * [`service`] — the sharded service plane: per-tenant driver shards,
//!   UDP/syslog intake, multiplexed collector, line-protocol admin.
//! * [`study`] — the end-to-end diversity-study pipeline (`divscrape` core).
//!
//! See the individual crates for documentation, and `examples/quickstart.rs`
//! for the fastest tour.

#![forbid(unsafe_code)]

pub use divscrape as study;
pub use divscrape_detect as detect;
pub use divscrape_ensemble as ensemble;
pub use divscrape_httplog as httplog;
pub use divscrape_ingest as ingest;
pub use divscrape_pipeline as pipeline;
pub use divscrape_service as service;
pub use divscrape_store as store;
pub use divscrape_traffic as traffic;
