//! Session plans and their realization into log entries.

use std::net::Ipv4Addr;

use divscrape_httplog::{
    ClfTimestamp, HttpMethod, HttpStatus, HttpVersion, LogEntry, RequestLine, RequestPath,
};

use crate::{ActorClass, GroundTruth};

/// Base URL the site is served from; referrers are absolute URLs.
pub const SITE_ORIGIN: &str = "https://shop.example";

/// One planned request within a session, relative to the session start.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Seconds after session start (fractional; rounded at realization —
    /// CLF logs have one-second resolution).
    pub offset: f64,
    /// Request method.
    pub method: HttpMethod,
    /// Request target (path + query).
    pub path: String,
    /// Response status the server model assigned.
    pub status: HttpStatus,
    /// Response size; `None` logs as `-`.
    pub bytes: Option<u64>,
    /// Referrer (absolute URL), if the client sends one.
    pub referrer: Option<String>,
}

impl RequestSpec {
    /// Convenience constructor for the common GET case.
    pub fn get(
        offset: f64,
        path: impl Into<String>,
        status: HttpStatus,
        bytes: Option<u64>,
    ) -> Self {
        Self {
            offset,
            method: HttpMethod::Get,
            path: path.into(),
            status,
            bytes,
            referrer: None,
        }
    }

    /// Sets the referrer to an absolute URL for an on-site path.
    #[must_use]
    pub fn with_site_referrer(mut self, path: &str) -> Self {
        self.referrer = Some(format!("{SITE_ORIGIN}{path}"));
        self
    }

    /// Sets an arbitrary referrer.
    #[must_use]
    pub fn with_referrer(mut self, referrer: impl Into<String>) -> Self {
        self.referrer = Some(referrer.into());
        self
    }
}

/// A complete planned session for one client.
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// Wall-clock session start.
    pub start: ClfTimestamp,
    /// Client address for the whole session.
    pub addr: Ipv4Addr,
    /// User-agent string for the whole session.
    pub user_agent: String,
    /// The actor class that generated the session.
    pub actor: ActorClass,
    /// Stable client identifier.
    pub client_id: u32,
    /// The planned requests, in offset order.
    pub requests: Vec<RequestSpec>,
}

impl SessionPlan {
    /// Number of requests in the plan.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Timestamp of the last request.
    pub fn end(&self) -> ClfTimestamp {
        let last = self
            .requests
            .last()
            .map(|r| r.offset.round() as i64)
            .unwrap_or(0);
        self.start.plus_seconds(last)
    }

    /// Materialises the plan into labelled log entries.
    ///
    /// `session_id` becomes part of each request's [`GroundTruth`].
    ///
    /// # Panics
    ///
    /// Panics if a planned path is not parseable into a request line — that
    /// is a bug in an actor model, not an input condition.
    pub fn realize(&self, session_id: u32) -> Vec<(LogEntry, GroundTruth)> {
        let truth = GroundTruth::new(self.actor, self.client_id, session_id);
        self.requests
            .iter()
            .map(|spec| {
                let request = RequestLine::new(
                    spec.method,
                    RequestPath::parse(&spec.path),
                    HttpVersion::Http11,
                );
                let mut builder = LogEntry::builder()
                    .addr(self.addr)
                    .timestamp(self.start.plus_seconds(spec.offset.round() as i64))
                    .request(request)
                    .status(spec.status)
                    .bytes(spec.bytes)
                    .user_agent(self.user_agent.as_str());
                if let Some(r) = &spec.referrer {
                    builder = builder.referrer(r.clone());
                }
                (
                    builder.build().expect("plan provides all mandatory fields"),
                    truth,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SessionPlan {
        SessionPlan {
            start: ClfTimestamp::PAPER_WINDOW_START,
            addr: Ipv4Addr::new(10, 1, 2, 3),
            user_agent: "curl/7.58.0".to_owned(),
            actor: ActorClass::PriceScraperBot,
            client_id: 5,
            requests: vec![
                RequestSpec::get(0.0, "/search?q=NCE-LHR", HttpStatus::OK, Some(5000)),
                RequestSpec::get(1.4, "/offers/1", HttpStatus::OK, Some(9000))
                    .with_site_referrer("/search?q=NCE-LHR"),
                RequestSpec::get(2.6, "/offers/2", HttpStatus::FOUND, None),
            ],
        }
    }

    #[test]
    fn realization_preserves_order_and_labels() {
        let entries = plan().realize(77);
        assert_eq!(entries.len(), 3);
        for (entry, truth) in &entries {
            assert_eq!(entry.addr(), Ipv4Addr::new(10, 1, 2, 3));
            assert_eq!(truth.actor(), ActorClass::PriceScraperBot);
            assert!(truth.is_malicious());
            assert_eq!(truth.client_id(), 5);
            assert_eq!(truth.session_id(), 77);
        }
        assert!(entries
            .windows(2)
            .all(|w| w[0].0.timestamp() <= w[1].0.timestamp()));
    }

    #[test]
    fn offsets_round_to_log_resolution() {
        let entries = plan().realize(0);
        let t0 = entries[0].0.timestamp();
        assert_eq!(entries[1].0.timestamp() - t0, 1); // 1.4 → 1
        assert_eq!(entries[2].0.timestamp() - t0, 3); // 2.6 → 3
    }

    #[test]
    fn referrers_render_as_absolute_urls() {
        let entries = plan().realize(0);
        assert_eq!(entries[0].0.referrer(), None);
        assert_eq!(
            entries[1].0.referrer(),
            Some("https://shop.example/search?q=NCE-LHR")
        );
    }

    #[test]
    fn end_reflects_last_offset() {
        let p = plan();
        assert_eq!(p.end() - p.start, 3);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn realized_entries_round_trip_through_the_log_format() {
        for (entry, _) in plan().realize(3) {
            let line = entry.to_string();
            assert_eq!(LogEntry::parse(&line).unwrap(), entry);
        }
    }
}
