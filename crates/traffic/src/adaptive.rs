//! Closed-loop adaptive-adversary scenarios: scrapers that react to
//! being detected.
//!
//! A [`DriftScenario`](crate::DriftScenario) shifts the population on a
//! fixed script, whatever the detector does. Real scraping operations
//! are not that polite: they probe the defence, notice which sessions
//! got challenged or blocked, and change tactics — rotate exit IPs and
//! browser identities, slow to human pace, split long crawls into short
//! sessions ("Detecting Bot Detection" documents exactly this
//! observe-and-evade loop). An [`AdaptiveScenario`] closes that loop in
//! simulation: traffic is generated one **round** at a time, a
//! caller-supplied feedback function reports which entries the defence
//! alerted on, and when enough of the malicious sessions were caught
//! the scraper population *escalates* its tradecraft for the next round.
//!
//! The result is an arms race the adaptation machinery can be stressed
//! by end to end — the learned thresholds and recalibrated weights face
//! an adversary that moves *because* of them, not on a timetable.
//!
//! ```
//! use divscrape_traffic::AdaptiveScenario;
//!
//! // A defence that alerts on everything is maximally informative to
//! // the adversary: every round escalates.
//! let outcome = AdaptiveScenario::arms_race(7, 3, 400)
//!     .run(|round| vec![true; round.len()])?;
//! assert_eq!(outcome.log().len(), 1_200);
//! assert_eq!(outcome.rounds().len(), 3);
//! assert!(outcome.rounds().iter().all(|r| r.escalated));
//! assert_eq!(outcome.escalations(), 3);
//! # Ok::<(), String>(())
//! ```

use std::collections::HashMap;

use divscrape_httplog::SECONDS_PER_DAY;

use crate::{generate, LabelledLog, PopulationMix, ScenarioConfig};

/// Escalation multiplier on the stealth population's mean inter-request
/// interval (slow to human pace), capped at [`MAX_INTERVAL_SECS`].
const SLOWDOWN_FACTOR: f64 = 1.6;

/// Interval cap: beyond ~2 minutes between pages the operation stops
/// being a scrape at all.
const MAX_INTERVAL_SECS: f64 = 120.0;

/// Escalation multiplier on mean session length (split sessions),
/// floored at [`MIN_SESSION_PAGES`].
const SESSION_SPLIT_FACTOR: f64 = 0.6;

/// Session-length floor: a "session" of fewer pages carries no crawl.
const MIN_SESSION_PAGES: f64 = 12.0;

/// Escalation multiplier on the honeytrap-link follow probability —
/// a caught operation maps the traps and routes around them.
const TRAP_AVOIDANCE_FACTOR: f64 = 0.3;

/// How far each escalation moves the population mix toward
/// [`PopulationMix::stealth_shift`] (component-wise interpolation).
const MIX_SHIFT_STEP: f64 = 0.5;

/// One round of an adaptive run: where its entries sit in the combined
/// log, how visible the malicious population was to the defence, and
/// whether the adversary escalated afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRound {
    /// Feed-order index of this round's first entry in the combined log.
    pub start: usize,
    /// Number of entries generated this round.
    pub len: usize,
    /// Share of this round's **malicious sessions** with at least one
    /// alerted entry — the signal the adversary reacts to. `0.0` when
    /// the round had no malicious sessions.
    pub alerted_share: f64,
    /// Whether the share exceeded the scenario's reaction threshold, so
    /// the *next* round runs under escalated tradecraft.
    pub escalated: bool,
}

/// Everything an [`AdaptiveScenario::run`] produces: the combined
/// labelled log across all rounds plus the per-round feedback record.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    log: LabelledLog,
    rounds: Vec<AdaptiveRound>,
}

impl AdaptiveOutcome {
    /// The combined timestamp-ordered log across all rounds.
    pub fn log(&self) -> &LabelledLog {
        &self.log
    }

    /// Consumes the outcome, keeping only the combined log.
    pub fn into_log(self) -> LabelledLog {
        self.log
    }

    /// The per-round record, in round order.
    pub fn rounds(&self) -> &[AdaptiveRound] {
        &self.rounds
    }

    /// Number of rounds after which the adversary escalated.
    pub fn escalations(&self) -> usize {
        self.rounds.iter().filter(|r| r.escalated).count()
    }
}

/// A closed-loop traffic scenario: rounds of generated traffic whose
/// scraper population escalates its tradecraft whenever the defence's
/// per-round feedback shows too many of its sessions getting caught.
///
/// Escalation compounds across rounds, always under the same moves an
/// operator has available mid-campaign:
///
/// * **rotate identities** — every round draws from a fresh derived
///   seed, so exit IPs and per-session browser identities rotate
///   whether or not the round escalated (rotation is cheap; real
///   operations do it constantly);
/// * **slow to human pace** — the stealth population's mean
///   inter-request interval grows (capped at two minutes);
/// * **split sessions** — mean session length shrinks (floored at
///   twelve pages), so per-session request counts stop tripping
///   sustained-rate rules;
/// * **avoid honeytraps** — the trap-link follow probability collapses;
/// * **shift the mix** — the aggressive botnets stand down and the
///   population interpolates toward [`PopulationMix::stealth_shift`],
///   the regime where offline calibrations rot.
///
/// Determinism: the generated traffic is a pure function of the
/// scenario and the feedback values — the same feedback decisions
/// reproduce the identical log, which is what lets pipeline runs over
/// an adaptive log be replayed bit-for-bit from a recorded schedule.
#[derive(Debug, Clone)]
pub struct AdaptiveScenario {
    config: ScenarioConfig,
    rounds: usize,
    react_threshold: f64,
}

impl AdaptiveScenario {
    /// A scenario starting from `first`, running one round per call to
    /// the defence (configure with [`rounds`](Self::rounds)) and
    /// escalating when more than half of the malicious sessions in a
    /// round were alerted (configure with
    /// [`react_threshold`](Self::react_threshold)).
    pub fn new(first: ScenarioConfig) -> Self {
        Self {
            config: first,
            rounds: 2,
            react_threshold: 0.5,
        }
    }

    /// The canonical arms race: `rounds` rounds of `requests_per_round`
    /// requests starting from the paper's bot-dominated default mix,
    /// escalating whenever more than 30 % of a round's malicious
    /// sessions got alerted. A competent defence catches the noisy
    /// opening population immediately, so the interesting regime — the
    /// population going quiet *because it was caught* — is reached
    /// within a round or two.
    pub fn arms_race(seed: u64, rounds: usize, requests_per_round: u64) -> Self {
        Self::new(ScenarioConfig::with_target(seed, requests_per_round))
            .rounds(rounds)
            .react_threshold(0.3)
    }

    /// Sets the number of rounds (default 2).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the alerted-session share above which the adversary
    /// escalates (default 0.5).
    pub fn react_threshold(mut self, share: f64) -> Self {
        self.react_threshold = share;
        self
    }

    /// The starting configuration (round 0 runs exactly this).
    pub fn initial_config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Runs the closed loop: generates each round, hands its log to
    /// `feedback` (which must return one alert flag per entry, in feed
    /// order — typically by streaming the round through a detection
    /// pipeline and draining it), measures how many malicious sessions
    /// were caught, and escalates the next round's tradecraft when the
    /// share exceeds the reaction threshold.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid round configuration,
    /// or of a feedback vector whose length does not match the round.
    pub fn run(
        &self,
        mut feedback: impl FnMut(&LabelledLog) -> Vec<bool>,
    ) -> Result<AdaptiveOutcome, String> {
        if self.rounds == 0 {
            return Err("adaptive scenario needs at least one round".to_owned());
        }
        if !(0.0..=1.0).contains(&self.react_threshold) {
            return Err(format!(
                "reaction threshold must be a share in [0, 1], got {}",
                self.react_threshold
            ));
        }
        let mut config = self.config.clone();
        let mut combined: Option<LabelledLog> = None;
        let mut rounds = Vec::with_capacity(self.rounds);
        let mut start = 0usize;
        for _ in 0..self.rounds {
            let round_log = generate(&config)?;
            let flags = feedback(&round_log);
            if flags.len() != round_log.len() {
                return Err(format!(
                    "feedback returned {} flags for a round of {} entries",
                    flags.len(),
                    round_log.len()
                ));
            }
            let alerted_share = malicious_session_alert_share(&round_log, &flags);
            let escalated = alerted_share > self.react_threshold;
            rounds.push(AdaptiveRound {
                start,
                len: round_log.len(),
                alerted_share,
                escalated,
            });
            start += round_log.len();
            combined = Some(match combined {
                None => round_log,
                Some(log) => log.concat(round_log)?,
            });
            config = next_round_config(&config, escalated);
        }
        Ok(AdaptiveOutcome {
            log: combined.expect("at least one round"),
            rounds,
        })
    }
}

/// Share of the round's malicious sessions with at least one alerted
/// entry — what the operation can actually observe (per-session
/// challenges, blocks and honeytrap hits), as opposed to per-request
/// verdicts it never sees.
fn malicious_session_alert_share(log: &LabelledLog, flags: &[bool]) -> f64 {
    let mut sessions: HashMap<(u32, u32), bool> = HashMap::new();
    for (truth, &alerted) in log.truth().iter().zip(flags) {
        if !truth.is_malicious() {
            continue;
        }
        let caught = sessions
            .entry((truth.client_id(), truth.session_id()))
            .or_insert(false);
        *caught = *caught || alerted;
    }
    if sessions.is_empty() {
        return 0.0;
    }
    let caught = sessions.values().filter(|c| **c).count();
    caught as f64 / sessions.len() as f64
}

/// The next round's configuration: identities always rotate (derived
/// seed, consecutive window — the same derivation as
/// [`DriftScenario::then`](crate::DriftScenario::then), so adaptive and
/// scripted drift stay comparable); a caught round additionally
/// escalates the stealth tradecraft and shifts the mix.
fn next_round_config(prev: &ScenarioConfig, escalated: bool) -> ScenarioConfig {
    let mut next = prev.clone();
    next.seed = prev
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(1);
    next.window_start = prev
        .window_start
        .plus_seconds(i64::from(prev.window_days) * SECONDS_PER_DAY);
    if escalated {
        next.stealth.interval_mean_secs =
            (prev.stealth.interval_mean_secs * SLOWDOWN_FACTOR).min(MAX_INTERVAL_SECS);
        next.stealth.session_pages_mean =
            (prev.stealth.session_pages_mean * SESSION_SPLIT_FACTOR).max(MIN_SESSION_PAGES);
        next.stealth.trap_prob = prev.stealth.trap_prob * TRAP_AVOIDANCE_FACTOR;
        next.mix = lerp_mix(&prev.mix, &PopulationMix::stealth_shift(), MIX_SHIFT_STEP);
    }
    next
}

/// Component-wise interpolation `a + t·(b − a)`; two valid mixes (each
/// summing to 1) interpolate to another valid mix for any `t` in
/// `[0, 1]`.
fn lerp_mix(a: &PopulationMix, b: &PopulationMix, t: f64) -> PopulationMix {
    let lerp = |x: f64, y: f64| x + t * (y - x);
    PopulationMix {
        human: lerp(a.human, b.human),
        crawler: lerp(a.crawler, b.crawler),
        monitor: lerp(a.monitor, b.monitor),
        partner: lerp(a.partner, b.partner),
        botnet_toolkit: lerp(a.botnet_toolkit, b.botnet_toolkit),
        botnet_spoofed: lerp(a.botnet_spoofed, b.botnet_spoofed),
        botnet_residential: lerp(a.botnet_residential, b.botnet_residential),
        stealth: lerp(a.stealth, b.stealth),
        scanner: lerp(a.scanner, b.scanner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_defence_never_provokes_escalation() {
        let outcome = AdaptiveScenario::arms_race(5, 3, 300)
            .run(|round| vec![false; round.len()])
            .unwrap();
        assert_eq!(outcome.escalations(), 0);
        assert!(outcome.rounds().iter().all(|r| r.alerted_share == 0.0));
        // Without escalation the rounds are plain drift-style phases:
        // same mix, same tradecraft, rotated seeds.
        assert_eq!(outcome.log().len(), 900);
    }

    #[test]
    fn loud_defence_escalates_every_round_and_goes_quiet() {
        let scenario = AdaptiveScenario::arms_race(5, 3, 300);
        let outcome = scenario.run(|round| vec![true; round.len()]).unwrap();
        assert_eq!(outcome.escalations(), 3);
        assert!(outcome.rounds().iter().all(|r| r.alerted_share == 1.0));
        // Escalation compounds: replaying the escalation chain shows the
        // malicious share falling and the stealth pace slowing.
        let mut config = scenario.initial_config().clone();
        for _ in 0..3 {
            config = next_round_config(&config, true);
        }
        let base = scenario.initial_config();
        assert!(config.mix.malicious_fraction() < base.mix.malicious_fraction());
        assert!(config.stealth.interval_mean_secs > base.stealth.interval_mean_secs);
        assert!(config.stealth.session_pages_mean < base.stealth.session_pages_mean);
        assert!(config.stealth.trap_prob < base.stealth.trap_prob);
        config.validate().unwrap();
    }

    #[test]
    fn rounds_are_deterministic_given_the_same_feedback() {
        let run = || {
            AdaptiveScenario::arms_race(11, 2, 250)
                .run(|round| round.truth().iter().map(|t| t.is_malicious()).collect())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.log().len(), b.log().len());
        for (ea, eb) in a.log().entries().iter().zip(b.log().entries()) {
            assert_eq!(ea.to_string(), eb.to_string());
        }
    }

    #[test]
    fn session_share_counts_sessions_not_requests() {
        let log = generate(&ScenarioConfig::with_target(3, 400)).unwrap();
        // Alert on exactly one entry of every malicious session: the
        // session-level share must still be 1.0.
        let mut seen = std::collections::HashSet::new();
        let flags: Vec<bool> = log
            .truth()
            .iter()
            .map(|t| t.is_malicious() && seen.insert((t.client_id(), t.session_id())))
            .collect();
        assert!((flags.iter().filter(|f| **f).count() as u64) < log.malicious_count());
        assert_eq!(malicious_session_alert_share(&log, &flags), 1.0);
        // And per-request alerts on benign traffic move nothing.
        let benign: Vec<bool> = log.truth().iter().map(|t| !t.is_malicious()).collect();
        assert_eq!(malicious_session_alert_share(&log, &benign), 0.0);
    }

    #[test]
    fn degenerate_scenarios_are_rejected() {
        let err = AdaptiveScenario::arms_race(1, 0, 100)
            .run(|round| vec![false; round.len()])
            .unwrap_err();
        assert!(err.contains("at least one round"), "{err}");
        let err = AdaptiveScenario::arms_race(1, 1, 100)
            .react_threshold(1.5)
            .run(|round| vec![false; round.len()])
            .unwrap_err();
        assert!(err.contains("share"), "{err}");
        let err = AdaptiveScenario::arms_race(1, 1, 100)
            .run(|_| Vec::new())
            .unwrap_err();
        assert!(err.contains("flags"), "{err}");
    }
}
