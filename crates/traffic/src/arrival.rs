//! Session arrival processes over the observation window.

use divscrape_httplog::{ClfTimestamp, SECONDS_PER_DAY};
use rand::Rng;

/// How strongly a population's activity follows the human day/night cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiurnalProfile {
    /// Strong day/night swing (human visitors): trough ~04:00, peak ~16:00.
    Human,
    /// Mild swing (botnets often throttle at night to blend in).
    MildBot,
    /// No swing at all (monitors, schedulers, most scanners).
    Flat,
}

impl DiurnalProfile {
    /// Relative intensity at `day_fraction` ∈ [0, 1). Mean over the day is
    /// 1.0 for every profile, so totals are amplitude-independent.
    pub fn intensity(self, day_fraction: f64) -> f64 {
        let amplitude = match self {
            DiurnalProfile::Human => 0.75,
            DiurnalProfile::MildBot => 0.25,
            DiurnalProfile::Flat => 0.0,
        };
        // Peak at 16:00 (fraction 2/3), trough 12h opposite at 04:00.
        let phase = std::f64::consts::TAU * (day_fraction - 2.0 / 3.0);
        1.0 + amplitude * phase.cos()
    }

    /// Draws a session start inside the window `[start, start + days)` by
    /// rejection sampling against the diurnal intensity.
    pub fn sample_start<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        window_start: ClfTimestamp,
        window_days: u32,
    ) -> ClfTimestamp {
        let span = i64::from(window_days) * SECONDS_PER_DAY;
        // Max intensity is 1 + amplitude <= 1.75; rejection with that bound.
        loop {
            let offset = rng.gen_range(0..span);
            let t = window_start.plus_seconds(offset);
            let accept: f64 = rng.gen_range(0.0..1.75);
            if accept <= self.intensity(t.day_fraction()) {
                return t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_intensity_is_one_for_all_profiles() {
        for profile in [
            DiurnalProfile::Human,
            DiurnalProfile::MildBot,
            DiurnalProfile::Flat,
        ] {
            let steps = 24 * 60;
            let mean: f64 = (0..steps)
                .map(|i| profile.intensity(i as f64 / steps as f64))
                .sum::<f64>()
                / steps as f64;
            assert!(
                (mean - 1.0).abs() < 1e-9,
                "{profile:?} mean intensity {mean}"
            );
        }
    }

    #[test]
    fn human_profile_peaks_in_the_afternoon() {
        let p = DiurnalProfile::Human;
        let afternoon = p.intensity(16.0 / 24.0);
        let night = p.intensity(4.0 / 24.0);
        assert!(afternoon > 1.5, "afternoon {afternoon}");
        assert!(night < 0.5, "night {night}");
        assert!(afternoon > night * 3.0);
    }

    #[test]
    fn flat_profile_is_constant() {
        let p = DiurnalProfile::Flat;
        for i in 0..24 {
            assert_eq!(p.intensity(i as f64 / 24.0), 1.0);
        }
    }

    #[test]
    fn samples_stay_inside_the_window() {
        let mut rng = StdRng::seed_from_u64(10);
        let start = ClfTimestamp::PAPER_WINDOW_START;
        for _ in 0..2_000 {
            let t = DiurnalProfile::Human.sample_start(&mut rng, start, 8);
            assert!(t >= start);
            assert!(t < start.plus_seconds(8 * SECONDS_PER_DAY));
        }
    }

    #[test]
    fn human_samples_skew_to_daytime() {
        let mut rng = StdRng::seed_from_u64(11);
        let start = ClfTimestamp::PAPER_WINDOW_START;
        let n = 10_000;
        let mut afternoon = 0;
        let mut early = 0;
        for _ in 0..n {
            let t = DiurnalProfile::Human.sample_start(&mut rng, start, 8);
            match t.hour() {
                14..=18 => afternoon += 1,
                2..=6 => early += 1,
                _ => {}
            }
        }
        assert!(
            afternoon > early * 3,
            "afternoon {afternoon} should dwarf early-morning {early}"
        );
    }

    #[test]
    fn flat_samples_cover_all_hours_evenly() {
        let mut rng = StdRng::seed_from_u64(12);
        let start = ClfTimestamp::PAPER_WINDOW_START;
        let mut buckets = [0u32; 24];
        let n = 24_000;
        for _ in 0..n {
            let t = DiurnalProfile::Flat.sample_start(&mut rng, start, 8);
            buckets[t.hour() as usize] += 1;
        }
        for (h, b) in buckets.iter().enumerate() {
            assert!((700..1300).contains(b), "hour {h} drew {b} of {n} samples");
        }
    }
}
