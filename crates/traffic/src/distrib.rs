//! Hand-rolled samplers.
//!
//! `rand` 0.8 ships only uniform/Bernoulli primitives offline, so the heavy-
//! tailed and discrete distributions the traffic model needs are implemented
//! here: log-normal (Box–Muller), Zipf (CDF table + binary search), Poisson
//! (Knuth / normal approximation), Pareto (inverse CDF), and weighted
//! categorical choice.

use rand::Rng;

/// Log-normal distribution parameterised by the mean and sigma of the
/// underlying normal. Used for human think times and page sizes.
///
/// ```
/// use divscrape_traffic::distrib::LogNormal;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let d = LogNormal::new(3.0, 0.5);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution. `sigma` must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Self { mu, sigma }
    }

    /// Builds the distribution from the *target* mean and coefficient of
    /// variation of the log-normal itself (more intuitive for calibration).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Draws one sample (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller with guards against ln(0).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    /// Draws one sample clamped into `[lo, hi]`.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`. Used for offer
/// popularity (a handful of routes dominate fare lookups) and search terms.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf sampler over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // `new` rejects n == 0; a Zipf always has ranks.
    }

    /// Draws a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Draws a 0-based index in `0..n`.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng) - 1
    }
}

/// Poisson distribution. Used for per-page asset counts and arrival counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0);
        Self { lambda }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's multiplication method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction; adequate for
            // the arrival-count use case.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let x = self.lambda + self.lambda.sqrt() * z;
            x.round().max(0.0) as u64
        }
    }
}

/// Pareto distribution (heavy-tailed). Used for botnet session lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates the distribution with minimum value `scale` and tail index
    /// `shape`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0);
        assert!(shape.is_finite() && shape > 0.0);
        Self { scale, shape }
    }

    /// Draws one sample (always `>= scale`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Weighted categorical choice over a fixed slice of outcomes.
///
/// ```
/// use divscrape_traffic::distrib::Categorical;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let d = Categorical::new(vec![("a", 8.0), ("b", 2.0)]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let picked = d.sample(&mut rng);
/// assert!(*picked == "a" || *picked == "b");
/// ```
#[derive(Debug, Clone)]
pub struct Categorical<T> {
    outcomes: Vec<T>,
    cdf: Vec<f64>,
}

impl<T> Categorical<T> {
    /// Creates the distribution from `(outcome, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, any weight is negative or non-finite, or
    /// all weights are zero.
    pub fn new(pairs: Vec<(T, f64)>) -> Self {
        assert!(!pairs.is_empty(), "categorical needs outcomes");
        let mut outcomes = Vec::with_capacity(pairs.len());
        let mut cdf = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (outcome, w) in pairs {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            acc += w;
            outcomes.push(outcome);
            cdf.push(acc);
        }
        assert!(acc > 0.0, "at least one weight must be positive");
        for v in &mut cdf {
            *v /= acc;
        }
        Self { outcomes, cdf }
    }

    /// Draws a reference to one outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        &self.outcomes[self.sample_index(rng)]
    }

    /// Draws the index of one outcome.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether there are no outcomes (never true; `new` rejects empty).
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// Derives a child seed from a parent seed and a stream tag (SplitMix64
/// step). Deterministic seeding hierarchy: scenario seed → population seed →
/// client seed → session seed, so adding one population never perturbs the
/// streams of another.
pub fn child_seed(parent: u64, tag: u64) -> u64 {
    let mut z = parent ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn lognormal_matches_target_mean() {
        let d = LogNormal::from_mean_cv(20.0, 0.8);
        let mut r = rng(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!(
            (mean - 20.0).abs() < 0.5,
            "empirical mean {mean} far from 20"
        );
    }

    #[test]
    fn lognormal_clamps() {
        let d = LogNormal::from_mean_cv(10.0, 2.0);
        let mut r = rng(1);
        for _ in 0..10_000 {
            let x = d.sample_clamped(&mut r, 2.0, 30.0);
            assert!((2.0..=30.0).contains(&x));
        }
    }

    #[test]
    #[should_panic]
    fn lognormal_rejects_negative_sigma() {
        let _ = LogNormal::new(0.0, -1.0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.1);
        let mut r = rng(3);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[d.sample_index(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 1 should beat rank 11");
        assert!(counts[0] > counts[50] * 5, "head should dominate tail");
        assert!((1..=100).contains(&d.sample(&mut r)));
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let d = Zipf::new(10, 0.0);
        let mut r = rng(4);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[d.sample_index(&mut r)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket off: {c}");
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_ranks() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(3.5);
        let mut r = rng(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(200.0);
        let mut r = rng(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(50.0, 1.5);
        let mut r = rng(7);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 50.0));
        // Heavy tail: some samples should exceed 10x the scale.
        assert!(samples.iter().any(|&x| x > 500.0));
    }

    #[test]
    fn categorical_respects_weights() {
        let d = Categorical::new(vec![("common", 90.0), ("rare", 10.0)]);
        let mut r = rng(8);
        let mut common = 0;
        for _ in 0..10_000 {
            if *d.sample(&mut r) == "common" {
                common += 1;
            }
        }
        assert!((8_700..9_300).contains(&common), "common drawn {common}");
    }

    #[test]
    fn categorical_zero_weight_outcomes_never_drawn() {
        let d = Categorical::new(vec![("never", 0.0), ("always", 1.0)]);
        let mut r = rng(9);
        for _ in 0..1_000 {
            assert_eq!(*d.sample(&mut r), "always");
        }
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero() {
        let _ = Categorical::new(vec![("a", 0.0), ("b", 0.0)]);
    }

    #[test]
    fn child_seeds_are_stable_and_distinct() {
        assert_eq!(child_seed(1, 2), child_seed(1, 2));
        assert_ne!(child_seed(1, 2), child_seed(1, 3));
        assert_ne!(child_seed(1, 2), child_seed(2, 2));
        // A realistic tree of seeds should not collide.
        let mut seen = std::collections::HashSet::new();
        for pop in 0..10u64 {
            let p = child_seed(99, pop);
            for client in 0..1000u64 {
                assert!(seen.insert(child_seed(p, client)), "seed collision");
            }
        }
    }

    #[test]
    fn samplers_are_deterministic_under_fixed_seed() {
        let d = LogNormal::from_mean_cv(5.0, 1.0);
        let a: Vec<f64> = {
            let mut r = rng(11);
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(11);
            (0..32).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
