//! The top-level traffic generator.
//!
//! Generates every population of a [`ScenarioConfig`], merges all sessions
//! into a single timestamp-ordered log, and returns it together with the
//! parallel ground-truth vector.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, LogEntry, LogWriter, SECONDS_PER_DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actors::botnet::{self, Campaign};
use crate::actors::crawler::{self, CrawlerIdentity};
use crate::actors::{human, monitor, partner, scanner, stealth};
use crate::arrival::DiurnalProfile;
use crate::distrib::child_seed;
use crate::network;
use crate::session::SessionPlan;
use crate::useragents::BrowserPool;
use crate::{ActorClass, GroundTruth, ScenarioConfig, SiteModel};

/// A generated log with per-request ground truth.
///
/// `entries[i]` and `truth[i]` describe the same request; entries are in
/// non-decreasing timestamp order.
///
/// ```
/// use divscrape_traffic::{generate, ScenarioConfig};
///
/// let log = generate(&ScenarioConfig::tiny(42))?;
/// assert_eq!(log.len(), 1_200);
/// assert_eq!(log.entries().len(), log.truth().len());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct LabelledLog {
    entries: Vec<LogEntry>,
    truth: Vec<GroundTruth>,
    window_start: ClfTimestamp,
    window_days: u32,
}

impl LabelledLog {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The log entries, in timestamp order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Ground truth parallel to [`entries`](Self::entries).
    pub fn truth(&self) -> &[GroundTruth] {
        &self.truth
    }

    /// Iterates over `(entry, truth)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&LogEntry, &GroundTruth)> {
        self.entries.iter().zip(self.truth.iter())
    }

    /// First instant of the generation window.
    pub fn window_start(&self) -> ClfTimestamp {
        self.window_start
    }

    /// Window length in days.
    pub fn window_days(&self) -> u32 {
        self.window_days
    }

    /// Requests per actor class.
    pub fn actor_counts(&self) -> BTreeMap<ActorClass, u64> {
        let mut counts = BTreeMap::new();
        for t in &self.truth {
            *counts.entry(t.actor()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of malicious requests (the positive class).
    pub fn malicious_count(&self) -> u64 {
        self.truth.iter().filter(|t| t.is_malicious()).count() as u64
    }

    /// Appends a log covering a **later window** to this one, producing
    /// one continuous timestamp-ordered log — the splice primitive
    /// behind [`DriftScenario`](crate::DriftScenario).
    ///
    /// The combined window runs from this log's start to the end of the
    /// later log's window ([`window_days`](Self::window_days) rounds a
    /// sub-day window offset **up**, so the reported window always
    /// covers every entry timestamp). Ground-truth client and session
    /// ids stay
    /// meaningful *within* their phase only (each phase is its own
    /// simulated population; numeric ids can repeat across phases, like
    /// recycled DHCP leases in a real log).
    ///
    /// ```
    /// use divscrape_traffic::{generate, ScenarioConfig};
    /// use divscrape_httplog::SECONDS_PER_DAY;
    ///
    /// let first = ScenarioConfig::tiny(1);
    /// let mut second = ScenarioConfig::tiny(2);
    /// second.window_start = first
    ///     .window_start
    ///     .plus_seconds(i64::from(first.window_days) * SECONDS_PER_DAY);
    /// let joined = generate(&first)?.concat(generate(&second)?)?;
    /// assert_eq!(joined.len(), 2_400);
    /// assert_eq!(joined.window_days(), 16);
    /// # Ok::<(), String>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Rejects a later log that starts before this one ends (the result
    /// would not be timestamp-ordered).
    pub fn concat(mut self, later: LabelledLog) -> Result<LabelledLog, String> {
        if let (Some(last), Some(first)) = (self.entries.last(), later.entries.first()) {
            if first.timestamp() < last.timestamp() {
                return Err(format!(
                    "later log starts at {} before this one ends at {}",
                    first.timestamp(),
                    last.timestamp()
                ));
            }
        }
        let offset = later.window_start - self.window_start;
        if offset < 0 {
            return Err("later log's window starts before this one's".into());
        }
        // Round a partial-day offset up: the combined window must cover
        // the later log's whole span, not truncate its first hours.
        let offset_days =
            offset.div_euclid(SECONDS_PER_DAY) + i64::from(offset.rem_euclid(SECONDS_PER_DAY) != 0);
        self.window_days = (offset_days as u32).saturating_add(later.window_days);
        self.entries.extend(later.entries);
        self.truth.extend(later.truth);
        Ok(self)
    }

    /// Writes the entries as Combined Log Format lines.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error.
    pub fn write_log<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = LogWriter::new(writer);
        w.write_all(&self.entries)?;
        w.finish()?;
        Ok(())
    }
}

/// Shared state while populating one run.
struct Emitter {
    out: Vec<(LogEntry, GroundTruth)>,
    window_end: ClfTimestamp,
    next_session_id: u32,
    next_client_id: u32,
}

impl Emitter {
    /// Realizes a plan, clamps it to the window, truncates it to `budget`,
    /// appends, and returns how many requests were emitted.
    fn emit(&mut self, plan: &SessionPlan, budget: u64) -> u64 {
        let session_id = self.next_session_id;
        self.next_session_id += 1;
        let mut emitted = 0u64;
        for (entry, truth) in plan.realize(session_id) {
            if emitted >= budget {
                break;
            }
            if entry.timestamp() >= self.window_end {
                continue;
            }
            self.out.push((entry, truth));
            emitted += 1;
        }
        emitted
    }

    fn alloc_client(&mut self) -> u32 {
        let id = self.next_client_id;
        self.next_client_id += 1;
        id
    }
}

fn population_budgets(cfg: &ScenarioConfig) -> [u64; 9] {
    let t = cfg.target_requests as f64;
    let m = &cfg.mix;
    let mut budgets = [
        (m.human * t) as u64,
        (m.crawler * t) as u64,
        (m.monitor * t) as u64,
        (m.partner * t) as u64,
        (m.botnet_toolkit * t) as u64,
        (m.botnet_spoofed * t) as u64,
        (m.botnet_residential * t) as u64,
        (m.stealth * t) as u64,
        (m.scanner * t) as u64,
    ];
    // Hand the rounding remainder to the human population so the total is
    // exactly the configured target.
    let sum: u64 = budgets.iter().sum();
    budgets[0] += cfg.target_requests - sum.min(cfg.target_requests);
    budgets
}

/// Generates the configured scenario.
///
/// Deterministic: the same configuration (including seed) always produces
/// the identical log.
///
/// # Errors
///
/// Returns a description of the problem when the configuration is invalid.
pub fn generate(cfg: &ScenarioConfig) -> Result<LabelledLog, String> {
    cfg.validate()?;
    let site = SiteModel::new(cfg.site_offers);
    let browsers = BrowserPool::mainstream();
    let budgets = population_budgets(cfg);
    let window_end = cfg
        .window_start
        .plus_seconds(i64::from(cfg.window_days) * SECONDS_PER_DAY);

    let mut em = Emitter {
        out: Vec::with_capacity(cfg.target_requests as usize),
        window_end,
        next_session_id: 0,
        next_client_id: 0,
    };

    gen_crawlers(cfg, &site, budgets[1], &mut em);
    gen_monitors(cfg, &site, budgets[2], &mut em);
    gen_partners(cfg, &site, budgets[3], &mut em);
    gen_botnet(
        cfg,
        &site,
        &browsers,
        Campaign::Toolkit,
        budgets[4],
        &mut em,
    );
    gen_botnet(
        cfg,
        &site,
        &browsers,
        Campaign::Spoofed,
        budgets[5],
        &mut em,
    );
    gen_botnet(
        cfg,
        &site,
        &browsers,
        Campaign::Residential,
        budgets[6],
        &mut em,
    );
    gen_stealth(cfg, &site, &browsers, budgets[7], &mut em);
    gen_scanners(cfg, &site, &browsers, budgets[8], &mut em);
    // Humans run last and absorb every other population's shortfall (the
    // strictly periodic populations cannot exceed their natural volume), so
    // the total always lands exactly on the configured target.
    let human_budget = cfg.target_requests - (em.out.len() as u64).min(cfg.target_requests);
    gen_humans(cfg, &site, &browsers, human_budget, &mut em);

    // Merge all sessions into one log ordered by time; ties broken by
    // client address then emission order so the result is fully
    // deterministic.
    let mut indexed: Vec<(usize, (LogEntry, GroundTruth))> =
        em.out.into_iter().enumerate().collect();
    indexed.sort_by_key(|(seq, (entry, _))| {
        (
            entry.timestamp().epoch_seconds(),
            u32::from(entry.addr()),
            *seq,
        )
    });

    let mut entries = Vec::with_capacity(indexed.len());
    let mut truth = Vec::with_capacity(indexed.len());
    for (_, (e, t)) in indexed {
        entries.push(e);
        truth.push(t);
    }

    Ok(LabelledLog {
        entries,
        truth,
        window_start: cfg.window_start,
        window_days: cfg.window_days,
    })
}

fn gen_humans(
    cfg: &ScenarioConfig,
    site: &SiteModel,
    browsers: &BrowserPool,
    budget: u64,
    em: &mut Emitter,
) {
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, 1));
    let pool = network::residential();
    let mut remaining = budget;
    let mut clients: Vec<(Ipv4Addr, u32)> = Vec::new();
    while remaining > 0 {
        // 80% of sessions come from a first-time visitor.
        let (addr, client_id) = if clients.is_empty() || rng.gen_bool(0.8) {
            let c = (pool.sample(&mut rng), em.alloc_client());
            clients.push(c);
            c
        } else {
            clients[rng.gen_range(0..clients.len())]
        };
        let start = DiurnalProfile::Human.sample_start(&mut rng, cfg.window_start, cfg.window_days);
        let (plan, _kind) =
            human::plan_session(&cfg.human, site, &mut rng, start, addr, client_id, browsers);
        remaining -= em.emit(&plan, remaining).min(remaining);
    }
}

fn gen_crawlers(cfg: &ScenarioConfig, site: &SiteModel, budget: u64, em: &mut Emitter) {
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, 2));
    let google = (
        network::crawler_google().sample(&mut rng),
        em.alloc_client(),
        CrawlerIdentity::Google,
    );
    let bing = (
        network::crawler_bing().sample(&mut rng),
        em.alloc_client(),
        CrawlerIdentity::Bing,
    );
    // Big operators crawl several times a day; keep starting crawl passes
    // until the population's budget is filled.
    let mut remaining = budget;
    'outer: for _pass in 0.. {
        let before = remaining;
        for day in 0..cfg.window_days {
            for (addr, client_id, identity) in [google, bing] {
                if remaining == 0 {
                    break 'outer;
                }
                let offset =
                    i64::from(day) * SECONDS_PER_DAY + rng.gen_range(0..SECONDS_PER_DAY * 3 / 4);
                let start = cfg.window_start.plus_seconds(offset);
                let plan = crawler::plan_session(
                    &cfg.crawler,
                    site,
                    &mut rng,
                    start,
                    addr,
                    client_id,
                    identity,
                );
                remaining -= em.emit(&plan, remaining).min(remaining);
            }
        }
        // Safety: a pass that emitted nothing cannot make progress.
        if remaining == before {
            break;
        }
    }
}

fn gen_monitors(cfg: &ScenarioConfig, site: &SiteModel, budget: u64, em: &mut Emitter) {
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, 3));
    let addr = network::monitor_range().sample(&mut rng);
    let client_id = em.alloc_client();
    let mut remaining = budget;
    for day in 0..cfg.window_days {
        if remaining == 0 {
            break;
        }
        let start = cfg
            .window_start
            .plus_seconds(i64::from(day) * SECONDS_PER_DAY + rng.gen_range(0..30i64));
        let plan = monitor::plan_session(&cfg.monitor, site, &mut rng, start, addr, client_id);
        remaining -= em.emit(&plan, remaining).min(remaining);
    }
}

fn gen_partners(cfg: &ScenarioConfig, site: &SiteModel, budget: u64, em: &mut Emitter) {
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, 4));
    let pool = network::partner_range();
    let partners = [
        (pool.sample(&mut rng), em.alloc_client()),
        (pool.sample(&mut rng), em.alloc_client()),
    ];
    let mut remaining = budget;
    'outer: for day in 0..cfg.window_days {
        for (addr, client_id) in partners {
            if remaining == 0 {
                break 'outer;
            }
            // Pull window opens at 06:00 plus scheduler jitter.
            let start = cfg.window_start.plus_seconds(
                i64::from(day) * SECONDS_PER_DAY + 6 * 3600 + rng.gen_range(0..600i64),
            );
            let plan = partner::plan_session(&cfg.partner, site, &mut rng, start, addr, client_id);
            remaining -= em.emit(&plan, remaining).min(remaining);
        }
    }
}

fn gen_botnet(
    cfg: &ScenarioConfig,
    site: &SiteModel,
    browsers: &BrowserPool,
    campaign: Campaign,
    budget: u64,
    em: &mut Emitter,
) {
    let (tag, bot_cfg) = match campaign {
        Campaign::Toolkit => (5u64, &cfg.botnet_toolkit),
        Campaign::Spoofed => (6u64, &cfg.botnet_spoofed),
        Campaign::Residential => (7u64, &cfg.botnet_residential),
    };
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, tag));
    let datacenter = network::datacenter();
    let residential = network::residential();

    // Node fleet sized so each node contributes a plausible number of
    // sweeps across the window.
    let nodes_wanted = (budget / 9_000).clamp(4, 400) as usize;
    let mut nodes: Vec<(Ipv4Addr, u32, String)> = Vec::with_capacity(nodes_wanted);
    for _ in 0..nodes_wanted {
        let addr = match campaign {
            Campaign::Toolkit => datacenter.sample(&mut rng),
            Campaign::Spoofed => {
                if rng.gen_bool(0.5) {
                    datacenter.sample(&mut rng)
                } else {
                    residential.sample(&mut rng)
                }
            }
            Campaign::Residential => residential.sample(&mut rng),
        };
        let ua = botnet::campaign_user_agent(campaign, &mut rng, browsers);
        nodes.push((addr, em.alloc_client(), ua));
    }

    let mut remaining = budget;
    while remaining > 0 {
        let (addr, client_id, ua) = nodes[rng.gen_range(0..nodes.len())].clone();
        let start =
            DiurnalProfile::MildBot.sample_start(&mut rng, cfg.window_start, cfg.window_days);
        let plan = botnet::plan_session(bot_cfg, site, &mut rng, start, addr, client_id, ua);
        remaining -= em.emit(&plan, remaining).min(remaining);
    }
}

fn gen_stealth(
    cfg: &ScenarioConfig,
    site: &SiteModel,
    browsers: &BrowserPool,
    budget: u64,
    em: &mut Emitter,
) {
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, 8));
    let pool = network::datacenter();
    let clients_wanted = (budget / 140).clamp(3, 2_000) as usize;
    let clients: Vec<(Ipv4Addr, u32)> = (0..clients_wanted)
        .map(|_| (pool.sample(&mut rng), em.alloc_client()))
        .collect();
    let mut remaining = budget;
    while remaining > 0 {
        let (addr, client_id) = clients[rng.gen_range(0..clients.len())];
        let start =
            DiurnalProfile::MildBot.sample_start(&mut rng, cfg.window_start, cfg.window_days);
        let plan = stealth::plan_session(
            &cfg.stealth,
            site,
            &mut rng,
            start,
            addr,
            client_id,
            browsers,
        );
        remaining -= em.emit(&plan, remaining).min(remaining);
    }
}

fn gen_scanners(
    cfg: &ScenarioConfig,
    site: &SiteModel,
    browsers: &BrowserPool,
    budget: u64,
    em: &mut Emitter,
) {
    let mut rng = StdRng::seed_from_u64(child_seed(cfg.seed, 9));
    let pool = network::residential();
    let clients_wanted = (budget / 2_500).clamp(2, 64) as usize;
    let clients: Vec<(Ipv4Addr, u32)> = (0..clients_wanted)
        .map(|_| (pool.sample(&mut rng), em.alloc_client()))
        .collect();
    let mut remaining = budget;
    while remaining > 0 {
        let (addr, client_id) = clients[rng.gen_range(0..clients.len())];
        let start = DiurnalProfile::Flat.sample_start(&mut rng, cfg.window_start, cfg.window_days);
        let plan = scanner::plan_session(
            &cfg.scanner,
            site,
            &mut rng,
            start,
            addr,
            client_id,
            browsers,
        );
        remaining -= em.emit(&plan, remaining).min(remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioConfig;

    #[test]
    fn generates_exactly_the_target_count() {
        for target in [500u64, 1_200, 5_000] {
            let cfg = ScenarioConfig::with_target(7, target);
            let log = generate(&cfg).unwrap();
            assert_eq!(log.len() as u64, target);
        }
    }

    #[test]
    fn output_is_time_ordered_and_in_window() {
        let log = generate(&ScenarioConfig::small(3)).unwrap();
        let end = log
            .window_start()
            .plus_seconds(i64::from(log.window_days()) * SECONDS_PER_DAY);
        for pair in log.entries().windows(2) {
            assert!(pair[0].timestamp() <= pair[1].timestamp());
        }
        for e in log.entries() {
            assert!(e.timestamp() >= log.window_start());
            assert!(e.timestamp() < end);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&ScenarioConfig::small(11)).unwrap();
        let b = generate(&ScenarioConfig::small(11)).unwrap();
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.truth(), b.truth());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&ScenarioConfig::tiny(1)).unwrap();
        let b = generate(&ScenarioConfig::tiny(2)).unwrap();
        assert_ne!(a.entries(), b.entries());
    }

    #[test]
    fn population_shares_track_the_mix() {
        let cfg = ScenarioConfig::medium(5);
        let log = generate(&cfg).unwrap();
        let counts = log.actor_counts();
        let total = log.len() as f64;

        let share = |a: ActorClass| *counts.get(&a).unwrap_or(&0) as f64 / total;
        // Generous tolerances: budgets are exact but session truncation
        // moves a few tenths of a percent between populations.
        assert!(
            (share(ActorClass::Human) - cfg.mix.human).abs() < 0.02,
            "human share {}",
            share(ActorClass::Human)
        );
        let botnet = share(ActorClass::PriceScraperBot);
        let expected = cfg.mix.botnet_toolkit + cfg.mix.botnet_spoofed + cfg.mix.botnet_residential;
        assert!((botnet - expected).abs() < 0.02, "botnet share {botnet}");
        assert!(
            (share(ActorClass::StealthScraper) - cfg.mix.stealth).abs() < 0.01,
            "stealth share {}",
            share(ActorClass::StealthScraper)
        );
        assert!(
            (share(ActorClass::Scanner) - cfg.mix.scanner).abs() < 0.005,
            "scanner share {}",
            share(ActorClass::Scanner)
        );
    }

    #[test]
    fn malicious_fraction_is_bot_dominated() {
        let log = generate(&ScenarioConfig::small(9)).unwrap();
        let frac = log.malicious_count() as f64 / log.len() as f64;
        assert!((0.80..0.92).contains(&frac), "malicious fraction {frac}");
    }

    #[test]
    fn truth_is_parallel_and_sessions_are_coherent() {
        let log = generate(&ScenarioConfig::tiny(4)).unwrap();
        assert_eq!(log.entries().len(), log.truth().len());
        // Within one session id, actor class and client id are constant and
        // the address never changes.
        let mut by_session: BTreeMap<u32, (ActorClass, u32, Ipv4Addr)> = BTreeMap::new();
        for (e, t) in log.iter() {
            let expect =
                by_session
                    .entry(t.session_id())
                    .or_insert((t.actor(), t.client_id(), e.addr()));
            assert_eq!(expect.0, t.actor());
            assert_eq!(expect.1, t.client_id());
            assert_eq!(expect.2, e.addr());
        }
    }

    #[test]
    fn every_entry_round_trips_through_clf() {
        let log = generate(&ScenarioConfig::tiny(6)).unwrap();
        for e in log.entries() {
            let line = e.to_string();
            assert_eq!(&LogEntry::parse(&line).unwrap(), e, "line: {line}");
        }
    }

    #[test]
    fn log_writes_as_valid_clf() {
        let log = generate(&ScenarioConfig::tiny(8)).unwrap();
        let mut buf = Vec::new();
        log.write_log(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), log.len());
        for line in text.lines().take(50) {
            LogEntry::parse(line).unwrap();
        }
    }

    #[test]
    fn all_populations_are_present_at_medium_scale() {
        let log = generate(&ScenarioConfig::medium(2)).unwrap();
        let counts = log.actor_counts();
        for actor in ActorClass::ALL {
            assert!(
                counts.get(&actor).copied().unwrap_or(0) > 0,
                "{actor} missing from the log"
            );
        }
    }
}
