//! Ground-truth labels.
//!
//! The paper's dataset was *unlabelled* — Section V names labelling as the
//! blocking next step. Because our substrate is a simulator, every request
//! carries the label the Amadeus team were still working to produce: which
//! actor generated it and whether that actor is malicious.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of client that generated a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ActorClass {
    /// A human visitor using a browser.
    Human,
    /// A well-behaved search-engine crawler (robots.txt-compliant).
    SearchCrawler,
    /// An uptime monitor polling health endpoints.
    UptimeMonitor,
    /// A contracted partner pulling fares through the public API.
    PartnerAggregator,
    /// A node of an aggressive price-scraping botnet — the paper's core
    /// threat model (fare scraping against travel e-commerce).
    PriceScraperBot,
    /// A stealthy, low-and-slow scraper with rotating browser identities.
    StealthScraper,
    /// A reconnaissance scanner mapping the site and probing endpoints.
    Scanner,
}

impl ActorClass {
    /// All classes, in declaration order.
    pub const ALL: [ActorClass; 7] = [
        ActorClass::Human,
        ActorClass::SearchCrawler,
        ActorClass::UptimeMonitor,
        ActorClass::PartnerAggregator,
        ActorClass::PriceScraperBot,
        ActorClass::StealthScraper,
        ActorClass::Scanner,
    ];

    /// Whether requests from this actor are *malicious scraping activity* in
    /// the paper's sense (the positive class for every labelled metric).
    pub fn is_malicious(self) -> bool {
        matches!(
            self,
            ActorClass::PriceScraperBot | ActorClass::StealthScraper | ActorClass::Scanner
        )
    }

    /// Whether the actor is automated at all (everything except humans).
    pub fn is_bot(self) -> bool {
        self != ActorClass::Human
    }

    /// Short stable name used in reports and serialized output.
    pub fn name(self) -> &'static str {
        match self {
            ActorClass::Human => "human",
            ActorClass::SearchCrawler => "search-crawler",
            ActorClass::UptimeMonitor => "uptime-monitor",
            ActorClass::PartnerAggregator => "partner-aggregator",
            ActorClass::PriceScraperBot => "price-scraper-bot",
            ActorClass::StealthScraper => "stealth-scraper",
            ActorClass::Scanner => "scanner",
        }
    }
}

impl fmt::Display for ActorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ground truth attached to one generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroundTruth {
    actor: ActorClass,
    client_id: u32,
    session_id: u32,
}

impl GroundTruth {
    /// Creates a label. `client_id` is unique per simulated client across the
    /// whole run; `session_id` is unique per session across the whole run.
    pub fn new(actor: ActorClass, client_id: u32, session_id: u32) -> Self {
        Self {
            actor,
            client_id,
            session_id,
        }
    }

    /// The generating actor class.
    pub fn actor(self) -> ActorClass {
        self.actor
    }

    /// Whether this request is malicious (the positive class).
    pub fn is_malicious(self) -> bool {
        self.actor.is_malicious()
    }

    /// Identifier of the simulated client (stable across its sessions).
    pub fn client_id(self) -> u32 {
        self.client_id
    }

    /// Identifier of the session this request belongs to.
    pub fn session_id(self) -> u32 {
        self.session_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malice_covers_exactly_the_three_attack_classes() {
        let malicious: Vec<_> = ActorClass::ALL
            .into_iter()
            .filter(|a| a.is_malicious())
            .collect();
        assert_eq!(
            malicious,
            vec![
                ActorClass::PriceScraperBot,
                ActorClass::StealthScraper,
                ActorClass::Scanner
            ]
        );
    }

    #[test]
    fn only_humans_are_not_bots() {
        let non_bots: Vec<_> = ActorClass::ALL
            .into_iter()
            .filter(|a| !a.is_bot())
            .collect();
        assert_eq!(non_bots, vec![ActorClass::Human]);
    }

    #[test]
    fn names_are_unique_and_lowercase() {
        let names: Vec<_> = ActorClass::ALL.iter().map(|a| a.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert_eq!(n, n.to_ascii_lowercase());
            assert!(ActorClass::ALL.iter().find(|a| a.name() == n).is_some());
        }
    }

    #[test]
    fn ground_truth_carries_ids() {
        let g = GroundTruth::new(ActorClass::Scanner, 7, 99);
        assert!(g.is_malicious());
        assert_eq!(g.actor(), ActorClass::Scanner);
        assert_eq!(g.client_id(), 7);
        assert_eq!(g.session_id(), 99);
    }
}
