//! Synthetic labelled e-commerce traffic for the `divscrape` reproduction.
//!
//! The paper's dataset — 1,469,744 Apache access-log requests from a
//! production Amadeus travel e-commerce application over 8 days in March
//! 2018 — is proprietary and unlabelled. This crate is the substitution:
//! a deterministic, seedable simulator that generates Combined Log Format
//! traffic with the *population structure* the paper's tables imply, plus
//! the ground-truth labels the paper names as its blocking next step.
//!
//! # Populations
//!
//! * **Humans** ([`actors::human`]) — browsing sessions with think times,
//!   asset fetches, booking funnel; includes the realistic false-positive
//!   surface (JS-disabled clients, hyperactive fare-comparison users).
//! * **Benign bots** ([`actors::crawler`], [`actors::monitor`],
//!   [`actors::partner`]) — self-identified, whitelistable automation.
//! * **The aggressive price-scraping botnet** ([`actors::botnet`]) — three
//!   campaigns at different evasion levels; carries the bulk of the traffic
//!   exactly as the paper's alert volumes imply.
//! * **Stealth scrapers** ([`actors::stealth`]) — low-and-slow, reputation-
//!   listed infrastructure; the model for the paper's Distil-only alerts.
//! * **Scanners** ([`actors::scanner`]) — clean identity, anomalous
//!   behaviour; the model for the paper's Arcane-only alerts.
//!
//! # Example
//!
//! ```
//! use divscrape_traffic::{generate, ScenarioConfig};
//!
//! let log = generate(&ScenarioConfig::tiny(42))?;
//! assert_eq!(log.len(), 1_200);
//! let malicious = log.malicious_count() as f64 / log.len() as f64;
//! assert!(malicious > 0.5); // bot-dominated, like the paper's dataset
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actors;
mod adaptive;
pub mod arrival;
pub mod distrib;
mod drift;
mod generate;
mod label;
pub mod network;
mod scenario;
mod session;
mod site;
pub mod useragents;

pub use adaptive::{AdaptiveOutcome, AdaptiveRound, AdaptiveScenario};
pub use drift::DriftScenario;
pub use generate::{generate, LabelledLog};
pub use label::{ActorClass, GroundTruth};
pub use scenario::{PopulationMix, ScenarioConfig, PAPER_TOTAL_REQUESTS};
pub use session::{RequestSpec, SessionPlan, SITE_ORIGIN};
pub use site::{SiteModel, CURRENCIES, ROUTES};
