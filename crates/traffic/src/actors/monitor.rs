//! Uptime monitors.
//!
//! A monitoring service polls the health endpoint on a fixed cadence around
//! the clock from a small published address range. Near-perfectly periodic,
//! tiny volume, and whitelisted by both tools.

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use crate::session::{RequestSpec, SessionPlan};
use crate::useragents::PINGDOM;
use crate::{ActorClass, SiteModel};

/// Behavioural knobs for the monitor population.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Seconds between health checks.
    pub period_secs: f64,
    /// Length of one planned run, seconds (a day by default; the generator
    /// plans one session per day).
    pub span_secs: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            period_secs: 300.0,
            span_secs: 86_400.0,
        }
    }
}

/// Plans one day of health checks.
pub fn plan_session(
    cfg: &MonitorConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
) -> SessionPlan {
    let checks = (cfg.span_secs / cfg.period_secs) as usize;
    let mut requests = Vec::with_capacity(checks);
    let mut clock = 0.0f64;
    for _ in 0..checks {
        // Health endpoint flaps very rarely.
        let (status, bytes) = if rng.gen_bool(0.0015) {
            (
                HttpStatus::INTERNAL_SERVER_ERROR,
                Some(super::error_bytes(500)),
            )
        } else {
            (HttpStatus::OK, Some(17))
        };
        requests.push(RequestSpec::get(clock, site.health(), status, bytes));
        // Small scheduler jitter around the fixed period.
        clock += cfg.period_secs + rng.gen_range(-2.0..2.0);
    }

    SessionPlan {
        start,
        addr,
        user_agent: PINGDOM.to_owned(),
        actor: ActorClass::UptimeMonitor,
        client_id,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_one(seed: u64) -> SessionPlan {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        plan_session(
            &MonitorConfig::default(),
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(178, 255, 152, 10),
            6,
        )
    }

    #[test]
    fn polls_only_the_health_endpoint() {
        let plan = plan_one(1);
        assert!(plan.requests.iter().all(|r| r.path == "/health"));
        assert_eq!(plan.len(), 288); // 86400 / 300
    }

    #[test]
    fn cadence_is_near_periodic() {
        let plan = plan_one(2);
        for w in plan.requests.windows(2) {
            let gap = w[1].offset - w[0].offset;
            assert!((295.0..305.0).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn monitor_identity_is_fixed() {
        assert!(plan_one(3).user_agent.contains("Pingdom"));
    }

    #[test]
    fn health_is_usually_up() {
        let plan = plan_one(4);
        let ok = plan
            .requests
            .iter()
            .filter(|r| r.status == HttpStatus::OK)
            .count();
        assert!(ok as f64 / plan.len() as f64 > 0.98);
    }
}
