//! Stealthy low-and-slow scrapers.
//!
//! The population behind the paper's large *Distil-only* exclusive set:
//! distributed across many rented cloud addresses, each client scrapes
//! slowly (well under behavioural rate thresholds), presents a current
//! browser identity rotated per session, and even fetches stylesheet/image
//! assets to defeat asset-ratio heuristics. What it cannot cheaply fake is
//! *JavaScript execution* (it never pulls script assets, so a JS challenge
//! never sees it pass) and *where it runs from* (data-center ranges with
//! poor IP reputation).

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use super::{asset_bytes, error_bytes, page_bytes, redirect_bytes};
use crate::distrib::LogNormal;
use crate::session::{RequestSpec, SessionPlan, SITE_ORIGIN};
use crate::useragents::BrowserPool;
use crate::{ActorClass, SiteModel};

/// Behavioural knobs for the stealth-scraper population.
#[derive(Debug, Clone)]
pub struct StealthConfig {
    /// Mean seconds between page fetches (slow by design).
    pub interval_mean_secs: f64,
    /// Mean session length in page fetches.
    pub session_pages_mean: f64,
    /// Mean non-script assets fetched per page (camouflage).
    pub assets_per_page: f64,
    /// Probability of one `403` in a session (the WAF catching a stray
    /// request — the paper logs exactly one 403 across 1.47 M requests).
    pub forbidden_prob: f64,
    /// Per-page probability of following the hidden honeytrap link.
    pub trap_prob: f64,
}

impl Default for StealthConfig {
    fn default() -> Self {
        Self {
            interval_mean_secs: 22.0,
            session_pages_mean: 45.0,
            assets_per_page: 1.3,
            forbidden_prob: 0.000_05,
            trap_prob: 0.0015,
        }
    }
}

/// Plans one stealth-scraper session. The user agent is rotated per session
/// (drawn here), unlike botnet nodes which keep a stable identity.
pub fn plan_session(
    cfg: &StealthConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
    browsers: &BrowserPool,
) -> SessionPlan {
    let user_agent = browsers.sample(rng).to_owned();
    let pages = LogNormal::from_mean_cv(cfg.session_pages_mean, 0.5)
        .sample_clamped(rng, 12.0, 160.0) as usize;
    let interval = LogNormal::from_mean_cv(cfg.interval_mean_secs, 0.6);

    let mut requests = Vec::new();
    let mut clock = 0.0f64;
    let mut route = site.sample_route(rng);
    let mut prev: Option<String> = None;

    for i in 0..pages {
        if i % 9 == 0 {
            route = site.sample_route(rng);
        }
        let path = if rng.gen_bool(cfg.trap_prob) {
            site.trap_path()
        } else if i % 9 == 0 {
            site.search_path(rng, route, 1)
        } else if rng.gen_bool(0.06) {
            // Light beacon polling for fare changes.
            site.api_beacon_path(route)
        } else {
            site.offer_path(site.sample_offer(rng))
        };

        // Status mix calibrated from Table 4's Distil-only column:
        // ~97.4% 200, 1.36% 302, 0.95% 204 (the beacons), small 400/404/304,
        // one-off 403.
        let is_beacon = path.starts_with("/api/v1/changes");
        let (status, bytes) = if is_beacon {
            (HttpStatus::NO_CONTENT, None)
        } else if rng.gen_bool(cfg.forbidden_prob) {
            (HttpStatus::FORBIDDEN, Some(error_bytes(403)))
        } else {
            let u: f64 = rng.gen();
            if u < 0.981 {
                (HttpStatus::OK, Some(page_bytes(rng)))
            } else if u < 0.995 {
                (HttpStatus::FOUND, Some(redirect_bytes()))
            } else if u < 0.9965 {
                (HttpStatus::BAD_REQUEST, Some(error_bytes(400)))
            } else if u < 0.9992 {
                (HttpStatus::NOT_FOUND, Some(error_bytes(404)))
            } else {
                (HttpStatus::NOT_MODIFIED, None)
            }
        };

        let mut spec = RequestSpec::get(clock, path.clone(), status, bytes);
        if let Some(p) = &prev {
            spec.referrer = Some(format!("{SITE_ORIGIN}{p}"));
        }
        requests.push(spec);

        // Camouflage assets: stylesheets and images only — executing
        // JavaScript is what this population avoids paying for.
        if status == HttpStatus::OK && !is_beacon {
            let n = if rng.gen_bool(cfg.assets_per_page / 2.0) {
                2
            } else {
                1
            };
            let mut asset_clock = clock;
            for asset in site.assets_for(&path).into_iter().take(n + 1) {
                if asset.ends_with(".js") {
                    continue;
                }
                asset_clock += rng.gen_range(0.1..1.2);
                requests.push(
                    RequestSpec::get(asset_clock, asset, HttpStatus::OK, Some(asset_bytes(rng)))
                        .with_site_referrer(&path),
                );
            }
            clock = asset_clock;
        }

        prev = Some(path);
        clock += interval.sample_clamped(rng, 4.0, 180.0);
    }

    SessionPlan {
        start,
        addr,
        user_agent,
        actor: ActorClass::StealthScraper,
        client_id,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_one(seed: u64) -> SessionPlan {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        plan_session(
            &StealthConfig::default(),
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(188, 166, 4, 20),
            3,
            &BrowserPool::mainstream(),
        )
    }

    #[test]
    fn pacing_is_slow() {
        let plan = plan_one(1);
        let span = plan.requests.last().unwrap().offset;
        let mean_gap = span / plan.len() as f64;
        assert!(mean_gap > 5.0, "stealth mean gap {mean_gap}s too fast");
    }

    #[test]
    fn never_fetches_scripts_but_does_fetch_other_assets() {
        let mut asset_count = 0;
        for seed in 0..10 {
            let plan = plan_one(seed);
            for r in &plan.requests {
                assert!(!r.path.ends_with(".js"), "script fetched: {}", r.path);
                if r.path.starts_with("/static/") {
                    asset_count += 1;
                }
            }
        }
        assert!(asset_count > 0, "camouflage assets missing");
    }

    #[test]
    fn browser_identity_rotates_across_sessions() {
        let mut agents = std::collections::HashSet::new();
        for seed in 0..30 {
            agents.insert(plan_one(seed).user_agent);
        }
        assert!(agents.len() >= 4, "only {} identities", agents.len());
    }

    #[test]
    fn status_mix_is_mostly_200_with_beacon_204s() {
        let mut counts = std::collections::HashMap::new();
        for seed in 0..60 {
            for r in &plan_one(seed).requests {
                *counts.entry(r.status.as_u16()).or_insert(0u32) += 1;
            }
        }
        let total: u32 = counts.values().sum();
        let ok = *counts.get(&200).unwrap_or(&0) as f64 / total as f64;
        assert!(ok > 0.93, "200 share {ok}");
        assert!(counts.contains_key(&204), "beacon 204s missing");
        // Errors stay trace-level.
        let errors =
            counts.get(&400).copied().unwrap_or(0) + counts.get(&404).copied().unwrap_or(0);
        assert!((errors as f64) < total as f64 * 0.01);
    }

    #[test]
    fn sessions_are_moderate_length() {
        for seed in 0..10 {
            let plan = plan_one(seed);
            assert!(
                (12..=400).contains(&plan.len()),
                "session length {}",
                plan.len()
            );
        }
    }
}
