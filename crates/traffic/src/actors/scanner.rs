//! Reconnaissance scanners.
//!
//! The population behind the paper's *Arcane-only* exclusive set and its
//! tell-tale status skew (400s and 204s over-represented in Table 4).
//! A scanner runs real browser automation through residential proxies —
//! clean user agent, clean IP reputation, full JavaScript — so
//! signature/reputation/challenge detectors see nothing. Its *behaviour*
//! is what is anomalous: it maps the site breadth-first, polls the change
//! API (204s), fires malformed queries at the search endpoint (400s),
//! fishes for open redirects (302s), replays conditional GETs (304s) and
//! occasionally hits probe paths (404s).

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpMethod, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use super::{asset_bytes, error_bytes, page_bytes, redirect_bytes};
use crate::distrib::LogNormal;
use crate::session::{RequestSpec, SessionPlan, SITE_ORIGIN};
use crate::useragents::BrowserPool;
use crate::{ActorClass, SiteModel};

/// Behavioural knobs for the scanner population.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    /// Mean seconds between requests.
    pub interval_mean_secs: f64,
    /// Mean session length in requests.
    pub session_len_mean: f64,
    /// Share of requests that poll the change-beacon API (`204`).
    pub beacon_share: f64,
    /// Share of requests that are malformed probes (`400`).
    pub malformed_share: f64,
    /// Share of requests fishing for redirects (`302`).
    pub redirect_share: f64,
    /// Share of conditional replays (`304`).
    pub conditional_share: f64,
    /// Share of vulnerability probes (`404`).
    pub probe_share: f64,
    /// Per-request probability of following the hidden honeytrap link
    /// while mapping the site.
    pub trap_prob: f64,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        // Shares calibrated from Table 4's Arcane-only column:
        // 200 82.7%, 204 10.3%, 302 3.5%, 400 2.7%, 304 0.8%, 404/500 trace.
        Self {
            interval_mean_secs: 7.0,
            session_len_mean: 320.0,
            beacon_share: 0.103,
            malformed_share: 0.027,
            redirect_share: 0.035,
            conditional_share: 0.008,
            probe_share: 0.0009,
            trap_prob: 0.01,
        }
    }
}

/// Plans one scanner session.
pub fn plan_session(
    cfg: &ScannerConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
    browsers: &BrowserPool,
) -> SessionPlan {
    let user_agent = browsers.sample(rng).to_owned();
    let len = LogNormal::from_mean_cv(cfg.session_len_mean, 0.4).sample_clamped(rng, 120.0, 900.0)
        as usize;
    let interval = LogNormal::from_mean_cv(cfg.interval_mean_secs, 0.7);

    let mut requests = Vec::with_capacity(len);
    let mut clock = 0.0f64;
    let mut offer_cursor = rng.gen_range(0..site.offer_count());
    let mut route = site.sample_route(rng);
    let mut prev: Option<String> = None;
    // Real browser automation pulls the app bundle the moment the first
    // page renders — which is exactly what lets a scanner pass JS
    // challenges that catch cruder bots.
    let mut fetched_bundle = false;

    for i in 0..len {
        let u: f64 = rng.gen();
        let beacon_hi = cfg.beacon_share;
        let malformed_hi = beacon_hi + cfg.malformed_share;
        let redirect_hi = malformed_hi + cfg.redirect_share;
        let conditional_hi = redirect_hi + cfg.conditional_share;
        let probe_hi = conditional_hi + cfg.probe_share;

        let (method, path, status, bytes): (HttpMethod, String, HttpStatus, Option<u64>) = if u
            < beacon_hi
        {
            // Change-beacon polling: the server answers 204 when nothing
            // changed, which is nearly always.
            (
                HttpMethod::Get,
                site.api_beacon_path(route),
                HttpStatus::NO_CONTENT,
                None,
            )
        } else if u < malformed_hi {
            // Malformed search queries poking at input handling.
            let garbage = ["%00", "';--", "AAAA%FF", "q[]=x", "{{7*7}}"][rng.gen_range(0..5usize)];
            (
                HttpMethod::Get,
                format!("/search?q={garbage}"),
                HttpStatus::BAD_REQUEST,
                Some(error_bytes(400)),
            )
        } else if u < redirect_hi {
            // Hitting funnel pages without state fishes a redirect.
            (
                HttpMethod::Get,
                site.booking_funnel()[rng.gen_range(0..3usize)].clone(),
                HttpStatus::FOUND,
                Some(redirect_bytes()),
            )
        } else if u < conditional_hi {
            // Conditional replay of an already-seen page.
            let path = prev.clone().unwrap_or_else(|| site.home());
            (HttpMethod::Get, path, HttpStatus::NOT_MODIFIED, None)
        } else if u < probe_hi {
            let probes = site.probe_paths();
            (
                HttpMethod::Get,
                probes[rng.gen_range(0..probes.len())].to_owned(),
                HttpStatus::NOT_FOUND,
                Some(error_bytes(404)),
            )
        } else {
            // Breadth-first site mapping: sequential offers, searches,
            // destination pages; browser automation pulls assets too.
            let path = match i % 11 {
                0 if rng.gen_bool(cfg.trap_prob * 11.0) => site.trap_path(),
                0 => {
                    route = site.sample_route(rng);
                    site.search_path(rng, route, 1)
                }
                1 => site.destination_path(rng.gen_range(0..24)),
                4 | 8 => {
                    // Assets fetched by the automated browser.
                    let assets = site.assets_for("/offers/0");
                    assets[rng.gen_range(0..assets.len())].clone()
                }
                _ => {
                    offer_cursor = (offer_cursor + 1) % site.offer_count();
                    site.offer_path(offer_cursor)
                }
            };
            let bytes = if path.starts_with("/static/") {
                asset_bytes(rng)
            } else {
                page_bytes(rng)
            };
            // Trace-level 500s when probing odd corners.
            if rng.gen_bool(0.000_6) {
                (
                    HttpMethod::Get,
                    path,
                    HttpStatus::INTERNAL_SERVER_ERROR,
                    Some(error_bytes(500)),
                )
            } else {
                (HttpMethod::Get, path, HttpStatus::OK, Some(bytes))
            }
        };

        let mut spec = RequestSpec {
            offset: clock,
            method,
            path: path.clone(),
            status,
            bytes,
            referrer: prev.as_ref().map(|p| format!("{SITE_ORIGIN}{p}")),
        };
        if status == HttpStatus::BAD_REQUEST {
            spec.referrer = None;
        }
        requests.push(spec);
        if status == HttpStatus::OK && !path.starts_with("/static/") {
            if !fetched_bundle {
                // First rendered page: the automated browser loads the
                // stylesheet and script bundle before anything else.
                for asset in ["/static/css/main.css", "/static/js/app.js"] {
                    clock += rng.gen_range(0.2..0.8);
                    requests.push(
                        RequestSpec::get(clock, asset, HttpStatus::OK, Some(asset_bytes(rng)))
                            .with_site_referrer(&path),
                    );
                }
                fetched_bundle = true;
            }
            prev = Some(path);
        }
        clock += interval.sample_clamped(rng, 1.0, 90.0);
    }

    SessionPlan {
        start,
        addr,
        user_agent,
        actor: ActorClass::Scanner,
        client_id,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_one(seed: u64) -> SessionPlan {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        plan_session(
            &ScannerConfig::default(),
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(81, 2, 99, 7),
            4,
            &BrowserPool::mainstream(),
        )
    }

    fn status_shares(seeds: std::ops::Range<u64>) -> std::collections::HashMap<u16, f64> {
        let mut counts: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
        let mut total = 0u32;
        for seed in seeds {
            for r in &plan_one(seed).requests {
                *counts.entry(r.status.as_u16()).or_insert(0) += 1;
                total += 1;
            }
        }
        counts
            .into_iter()
            .map(|(k, v)| (k, v as f64 / total as f64))
            .collect()
    }

    #[test]
    fn status_mix_matches_the_arcane_only_profile() {
        let shares = status_shares(0..40);
        let s200 = shares.get(&200).copied().unwrap_or(0.0);
        let s204 = shares.get(&204).copied().unwrap_or(0.0);
        let s302 = shares.get(&302).copied().unwrap_or(0.0);
        let s400 = shares.get(&400).copied().unwrap_or(0.0);
        let s304 = shares.get(&304).copied().unwrap_or(0.0);
        assert!((0.75..0.90).contains(&s200), "200 share {s200}");
        assert!((0.07..0.14).contains(&s204), "204 share {s204}");
        assert!((0.02..0.05).contains(&s302), "302 share {s302}");
        assert!((0.015..0.045).contains(&s400), "400 share {s400}");
        assert!(s304 > 0.0, "304 replays missing");
        // The 204 and 400 skews are the fingerprint of this population:
        // both must dwarf the botnet's trace levels (≈0.05% / 0.01%).
        assert!(s204 > 0.05);
        assert!(s400 > 0.01);
    }

    #[test]
    fn scanner_walks_broadly() {
        let plan = plan_one(1);
        let distinct: std::collections::HashSet<&str> =
            plan.requests.iter().map(|r| r.path.as_str()).collect();
        assert!(
            distinct.len() as f64 > plan.len() as f64 * 0.5,
            "{} distinct of {}",
            distinct.len(),
            plan.len()
        );
    }

    #[test]
    fn scanner_fetches_script_assets_like_a_real_browser() {
        let mut js = 0;
        for seed in 0..10 {
            js += plan_one(seed)
                .requests
                .iter()
                .filter(|r| r.path.ends_with(".js"))
                .count();
        }
        assert!(js > 0, "browser automation should pull scripts");
    }

    #[test]
    fn pacing_is_moderate() {
        let plan = plan_one(2);
        let span = plan.requests.last().unwrap().offset;
        let gap = span / plan.len() as f64;
        assert!((2.0..20.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn malformed_requests_drop_the_referrer() {
        for seed in 0..10 {
            for r in plan_one(seed).requests {
                if r.status == HttpStatus::BAD_REQUEST {
                    assert_eq!(r.referrer, None);
                }
            }
        }
    }
}
