//! Contracted partner aggregators.
//!
//! A partner with an API contract pulls fares through `/api/v1/fares` during
//! business hours and polls the change beacon between pulls. High volume for
//! a single client, fully automated — behaviourally it *looks like* a
//! scraper, which is exactly why it matters for the study: only
//! configuration knowledge (address range + contract identity) separates it
//! from the attack populations.

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use super::api_bytes;
use crate::distrib::LogNormal;
use crate::session::{RequestSpec, SessionPlan};
use crate::useragents::PARTNER_AGGREGATOR;
use crate::{ActorClass, SiteModel};

/// Behavioural knobs for the partner population.
#[derive(Debug, Clone)]
pub struct PartnerConfig {
    /// Mean seconds between API calls during a pull window.
    pub interval_mean_secs: f64,
    /// Length of one pull window, seconds (a business day by default).
    pub span_secs: f64,
    /// Share of calls that poll the change beacon (`204` when unchanged).
    pub beacon_share: f64,
}

impl Default for PartnerConfig {
    fn default() -> Self {
        Self {
            interval_mean_secs: 45.0,
            span_secs: 16.0 * 3600.0,
            beacon_share: 0.35,
        }
    }
}

/// Plans one business-day pull window.
pub fn plan_session(
    cfg: &PartnerConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
) -> SessionPlan {
    let interval = LogNormal::from_mean_cv(cfg.interval_mean_secs, 0.3);
    let mut requests = Vec::new();
    let mut clock = 0.0f64;
    while clock < cfg.span_secs {
        let route = site.sample_route(rng);
        if rng.gen_bool(cfg.beacon_share) {
            // Beacon: 204 unless a fare changed.
            let changed = rng.gen_bool(0.07);
            let (status, bytes) = if changed {
                (HttpStatus::OK, Some(api_bytes(rng)))
            } else {
                (HttpStatus::NO_CONTENT, None)
            };
            requests.push(RequestSpec::get(
                clock,
                site.api_beacon_path(route),
                status,
                bytes,
            ));
        } else {
            requests.push(RequestSpec::get(
                clock,
                site.api_fares_path(route),
                HttpStatus::OK,
                Some(api_bytes(rng)),
            ));
        }
        clock += interval.sample_clamped(rng, 10.0, 240.0);
    }

    SessionPlan {
        start,
        addr,
        user_agent: PARTNER_AGGREGATOR.to_owned(),
        actor: ActorClass::PartnerAggregator,
        client_id,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_one(seed: u64) -> SessionPlan {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        plan_session(
            &PartnerConfig::default(),
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(203, 0, 113, 5),
            8,
        )
    }

    #[test]
    fn partner_only_touches_the_api() {
        let plan = plan_one(1);
        assert!(plan.requests.iter().all(|r| r.path.starts_with("/api/")));
        assert!(plan.len() > 500, "a day of pulls, got {}", plan.len());
    }

    #[test]
    fn beacons_mostly_answer_204() {
        let plan = plan_one(2);
        let beacons: Vec<_> = plan
            .requests
            .iter()
            .filter(|r| r.path.starts_with("/api/v1/changes"))
            .collect();
        assert!(!beacons.is_empty());
        let no_content = beacons
            .iter()
            .filter(|r| r.status == HttpStatus::NO_CONTENT)
            .count();
        assert!(no_content as f64 / beacons.len() as f64 > 0.8);
    }

    #[test]
    fn window_respects_span() {
        let plan = plan_one(3);
        let last = plan.requests.last().unwrap().offset;
        assert!(last <= 16.0 * 3600.0 + 240.0);
    }

    #[test]
    fn partner_identity_names_the_contract() {
        assert!(plan_one(4).user_agent.contains("FareConnect"));
    }
}
