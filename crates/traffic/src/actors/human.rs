//! Human visitors.
//!
//! A human session lands from a search engine or direct navigation, browses
//! search-results and offer pages with log-normal think times, pulls the
//! assets each page references (with cache revalidation on repeat views),
//! and occasionally enters the booking funnel.
//!
//! Two rare sub-behaviours matter for the study because they are the
//! realistic false-positive surface:
//!
//! * **JS-disabled** clients render pages but never fetch script assets —
//!   a Distil-style JS challenge can never see them succeed.
//! * **Hyperactive** fare-comparison power users (e.g. offline travel
//!   agents) fire search bursts fast enough to trip rate heuristics.

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpMethod, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use super::{asset_bytes, error_bytes, page_bytes, redirect_bytes};
use crate::distrib::LogNormal;
use crate::session::{RequestSpec, SessionPlan, SITE_ORIGIN};
use crate::useragents::BrowserPool;
use crate::{ActorClass, SiteModel};

/// Behavioural knobs for the human population.
#[derive(Debug, Clone)]
pub struct HumanConfig {
    /// Mean think time between page views, seconds.
    pub think_mean_secs: f64,
    /// Mean number of page views per session.
    pub pages_mean: f64,
    /// Probability that a session belongs to a JS-disabled client.
    pub js_disabled_prob: f64,
    /// Probability that a session is a hyperactive power user.
    pub hyperactive_prob: f64,
    /// Probability a session that viewed an offer enters the booking funnel.
    pub booking_prob: f64,
    /// Probability an individual asset is served from cache revalidation
    /// (`304`) rather than fetched fresh.
    pub asset_revalidate_prob: f64,
}

impl Default for HumanConfig {
    fn default() -> Self {
        Self {
            think_mean_secs: 24.0,
            pages_mean: 5.0,
            js_disabled_prob: 0.0025,
            hyperactive_prob: 0.005,
            booking_prob: 0.18,
            asset_revalidate_prob: 0.13,
        }
    }
}

/// Which sub-behaviour a planned human session exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HumanKind {
    /// Ordinary visitor.
    Regular,
    /// Browser with JavaScript disabled (never fetches `.js` assets).
    JsDisabled,
    /// Fare-comparison power user (burst searching).
    Hyperactive,
}

/// Plans one human session. Returns the plan and the sub-behaviour drawn
/// (exposed so tests and calibration can assert on the mix).
pub fn plan_session(
    cfg: &HumanConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
    browsers: &BrowserPool,
) -> (SessionPlan, HumanKind) {
    let kind = {
        let u: f64 = rng.gen();
        if u < cfg.js_disabled_prob {
            HumanKind::JsDisabled
        } else if u < cfg.js_disabled_prob + cfg.hyperactive_prob {
            HumanKind::Hyperactive
        } else {
            HumanKind::Regular
        }
    };

    let user_agent = browsers.sample(rng).to_owned();
    let think = match kind {
        HumanKind::Hyperactive => LogNormal::from_mean_cv(3.0, 0.6),
        _ => LogNormal::from_mean_cv(cfg.think_mean_secs, 0.9),
    };
    let pages = match kind {
        HumanKind::Hyperactive => rng.gen_range(18..=45),
        _ => {
            // Geometric-ish page count with the configured mean, min 1.
            let mut n = 1u32;
            while (n as f64) < 4.0 * cfg.pages_mean && rng.gen::<f64>() > 1.0 / cfg.pages_mean {
                n += 1;
            }
            n
        }
    };

    let mut requests = Vec::new();
    let mut clock = 0.0f64;
    let mut seen_offer = false;
    let mut current_route = site.sample_route(rng);
    let mut prev_page: Option<String> = None;

    // Entry referrer: search engine, direct, or a partner deep link.
    let entry_referrer: Option<String> = {
        let u: f64 = rng.gen();
        if u < 0.55 {
            Some("https://www.google.com/".to_owned())
        } else if u < 0.65 {
            Some("https://www.bing.com/".to_owned())
        } else {
            None
        }
    };

    for page_idx in 0..pages {
        // Choose the next page.
        let path = if page_idx == 0 {
            if rng.gen_bool(0.3) {
                site.home()
            } else {
                site.search_path(rng, current_route, 1)
            }
        } else {
            let u: f64 = rng.gen();
            if u < 0.45 {
                seen_offer = true;
                site.offer_path(site.sample_offer(rng))
            } else if u < 0.75 {
                if rng.gen_bool(0.3) {
                    current_route = site.sample_route(rng);
                }
                let page = rng.gen_range(1..=3);
                site.search_path(rng, current_route, page)
            } else if u < 0.85 {
                site.destination_path(rng.gen_range(0..24))
            } else {
                seen_offer = true;
                site.offer_path(site.sample_offer(rng))
            }
        };

        // Page status: overwhelmingly 200; sporadic redirects and errors.
        let (status, bytes) = {
            let u: f64 = rng.gen();
            if u < 0.965 {
                (HttpStatus::OK, Some(page_bytes(rng)))
            } else if u < 0.990 {
                (HttpStatus::FOUND, Some(redirect_bytes()))
            } else if u < 0.997 {
                (HttpStatus::NOT_FOUND, Some(error_bytes(404)))
            } else {
                (HttpStatus::INTERNAL_SERVER_ERROR, Some(error_bytes(500)))
            }
        };

        let mut spec = RequestSpec::get(clock, path.clone(), status, bytes);
        spec.referrer = match &prev_page {
            Some(p) => Some(format!("{SITE_ORIGIN}{p}")),
            None => entry_referrer.clone(),
        };
        requests.push(spec);

        // Assets for the page, shortly after it.
        if status == HttpStatus::OK {
            let mut asset_clock = clock;
            for asset in site.assets_for(&path) {
                if kind == HumanKind::JsDisabled && asset.ends_with(".js") {
                    continue;
                }
                // Returning visitors have warm caches: later pages skip most
                // repeat assets entirely.
                if page_idx > 0 && rng.gen_bool(0.6) {
                    continue;
                }
                asset_clock += rng.gen_range(0.05..0.9);
                let (astatus, abytes) = if rng.gen_bool(cfg.asset_revalidate_prob) {
                    (HttpStatus::NOT_MODIFIED, None)
                } else {
                    (HttpStatus::OK, Some(asset_bytes(rng)))
                };
                requests.push(
                    RequestSpec::get(asset_clock, asset, astatus, abytes).with_site_referrer(&path),
                );
            }
            clock = asset_clock;
        }

        prev_page = Some(path);
        clock += think.sample_clamped(rng, 1.5, 420.0);
    }

    // Booking funnel for a fraction of sessions that saw an offer.
    if seen_offer && rng.gen_bool(cfg.booking_prob) {
        let funnel = site.booking_funnel();
        let referrer_base = prev_page.clone().unwrap_or_else(|| site.home());
        // POST /booking/start redirects into the funnel.
        let mut spec = RequestSpec {
            offset: clock,
            method: HttpMethod::Post,
            path: funnel[0].clone(),
            status: HttpStatus::FOUND,
            bytes: Some(redirect_bytes()),
            referrer: Some(format!("{SITE_ORIGIN}{referrer_base}")),
        };
        requests.push(spec.clone());
        clock += think.sample_clamped(rng, 2.0, 120.0);
        spec = RequestSpec::get(
            clock,
            funnel[1].clone(),
            HttpStatus::OK,
            Some(page_bytes(rng)),
        )
        .with_site_referrer(&funnel[0]);
        requests.push(spec);
        clock += think.sample_clamped(rng, 5.0, 300.0);
        // Most visitors abandon before checkout.
        if rng.gen_bool(0.4) {
            requests.push(RequestSpec {
                offset: clock,
                method: HttpMethod::Post,
                path: funnel[2].clone(),
                status: HttpStatus::FOUND,
                bytes: Some(redirect_bytes()),
                referrer: Some(format!("{SITE_ORIGIN}{}", funnel[1])),
            });
        }
    }

    (
        SessionPlan {
            start,
            addr,
            user_agent,
            actor: ActorClass::Human,
            client_id,
            requests,
        },
        kind,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_one(seed: u64, cfg: &HumanConfig) -> (SessionPlan, HumanKind) {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        plan_session(
            cfg,
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(81, 2, 33, 44),
            1,
            &BrowserPool::mainstream(),
        )
    }

    #[test]
    fn sessions_interleave_pages_and_assets() {
        let mut saw_assets = 0;
        let mut saw_pages = 0;
        for seed in 0..20 {
            let (plan, _) = plan_one(seed, &HumanConfig::default());
            for r in &plan.requests {
                let class = divscrape_httplog::RequestPath::parse(&r.path).resource_class();
                match class {
                    divscrape_httplog::ResourceClass::Asset => saw_assets += 1,
                    divscrape_httplog::ResourceClass::Page => saw_pages += 1,
                    _ => {}
                }
            }
        }
        assert!(saw_pages > 0);
        assert!(saw_assets > 0, "humans must fetch assets");
        // Human sessions are asset-heavy relative to bot sessions.
        assert!(saw_assets as f64 > saw_pages as f64 * 0.4);
    }

    #[test]
    fn offsets_are_monotonic() {
        for seed in 0..50 {
            let (plan, _) = plan_one(seed, &HumanConfig::default());
            assert!(
                plan.requests.windows(2).all(|w| w[0].offset <= w[1].offset),
                "non-monotonic offsets at seed {seed}"
            );
        }
    }

    #[test]
    fn js_disabled_sessions_never_fetch_scripts() {
        let cfg = HumanConfig {
            js_disabled_prob: 1.0,
            hyperactive_prob: 0.0,
            ..HumanConfig::default()
        };
        for seed in 0..20 {
            let (plan, kind) = plan_one(seed, &cfg);
            assert_eq!(kind, HumanKind::JsDisabled);
            assert!(
                plan.requests.iter().all(|r| !r.path.ends_with(".js")),
                "js fetched in js-disabled session"
            );
        }
    }

    #[test]
    fn hyperactive_sessions_are_fast_and_long() {
        let cfg = HumanConfig {
            js_disabled_prob: 0.0,
            hyperactive_prob: 1.0,
            ..HumanConfig::default()
        };
        let (plan, kind) = plan_one(3, &cfg);
        assert_eq!(kind, HumanKind::Hyperactive);
        assert!(plan.len() >= 18, "only {} requests", plan.len());
        let span = plan.requests.last().unwrap().offset;
        let rate = plan.len() as f64 / span.max(1.0);
        assert!(rate > 0.15, "hyperactive rate {rate} too slow");
    }

    #[test]
    fn regular_sessions_think_like_humans() {
        let mut gaps = Vec::new();
        for seed in 0..30 {
            let (plan, _) = plan_one(seed, &HumanConfig::default());
            // Gap between consecutive page requests only.
            let pages: Vec<f64> = plan
                .requests
                .iter()
                .filter(|r| {
                    divscrape_httplog::RequestPath::parse(&r.path).resource_class()
                        == divscrape_httplog::ResourceClass::Page
                })
                .map(|r| r.offset)
                .collect();
            gaps.extend(pages.windows(2).map(|w| w[1] - w[0]));
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(mean > 8.0, "mean page gap {mean}s is bot-like");
    }

    #[test]
    fn first_request_carries_entry_referrer_or_none() {
        for seed in 0..20 {
            let (plan, _) = plan_one(seed, &HumanConfig::default());
            let first = &plan.requests[0];
            if let Some(r) = &first.referrer {
                assert!(
                    r.contains("google") || r.contains("bing"),
                    "unexpected entry referrer {r}"
                );
            }
        }
    }

    #[test]
    fn statuses_are_dominated_by_200() {
        let mut ok = 0u32;
        let mut total = 0u32;
        for seed in 0..60 {
            let (plan, _) = plan_one(seed, &HumanConfig::default());
            for r in &plan.requests {
                total += 1;
                if r.status == HttpStatus::OK {
                    ok += 1;
                }
            }
        }
        assert!(
            ok as f64 / total as f64 > 0.75,
            "200 share {} of {total}",
            ok
        );
    }
}
