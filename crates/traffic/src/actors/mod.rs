//! Actor behaviour models.
//!
//! One module per client population. Every actor exposes a `plan_session`
//! function that turns a seeded RNG plus a start time, address and client id
//! into a [`SessionPlan`](crate::SessionPlan). All behavioural knobs live in per-actor config
//! structs so experiments (ablations, calibration sweeps) can perturb one
//! population without touching the others.

pub mod botnet;
pub mod crawler;
pub mod human;
pub mod monitor;
pub mod partner;
pub mod scanner;
pub mod stealth;

use rand::Rng;

use crate::distrib::LogNormal;

/// Samples an HTML page response size.
pub(crate) fn page_bytes<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    LogNormal::from_mean_cv(45_000.0, 0.5).sample_clamped(rng, 4_000.0, 400_000.0) as u64
}

/// Samples a static-asset response size.
pub(crate) fn asset_bytes<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    LogNormal::from_mean_cv(26_000.0, 1.1).sample_clamped(rng, 200.0, 600_000.0) as u64
}

/// Samples an API (JSON) response size.
pub(crate) fn api_bytes<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    LogNormal::from_mean_cv(2_200.0, 0.6).sample_clamped(rng, 150.0, 40_000.0) as u64
}

/// Size of a redirect response body.
pub(crate) fn redirect_bytes() -> u64 {
    352
}

/// Size of an error-page body for the given status.
pub(crate) fn error_bytes(status: u16) -> u64 {
    match status {
        400 => 248,
        403 => 199,
        404 => 1_042,
        _ => 612,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_helpers_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let p = page_bytes(&mut rng);
            assert!((4_000..=400_000).contains(&p));
            let a = asset_bytes(&mut rng);
            assert!((200..=600_000).contains(&a));
            let j = api_bytes(&mut rng);
            assert!((150..=40_000).contains(&j));
        }
        assert!(redirect_bytes() < 1_000);
        assert!(error_bytes(404) > error_bytes(400));
    }
}
