//! Well-behaved search-engine crawlers.
//!
//! Googlebot/Bingbot sessions: fetch `robots.txt` first, then the sitemap,
//! then crawl pages politely (multi-second gaps), revalidating previously
//! seen pages with conditional GETs. They self-identify in the user agent
//! and crawl from their operators' published address ranges — which is what
//! lets both detectors whitelist them.

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use super::page_bytes;
use crate::distrib::LogNormal;
use crate::session::{RequestSpec, SessionPlan};
use crate::useragents::{BINGBOT, GOOGLEBOT};
use crate::{ActorClass, SiteModel};

/// Behavioural knobs for the crawler population.
#[derive(Debug, Clone)]
pub struct CrawlerConfig {
    /// Mean seconds between fetches (polite pacing).
    pub interval_mean_secs: f64,
    /// Mean pages fetched per crawl session.
    pub pages_mean: f64,
    /// Share of fetches that are conditional revalidations (`304`).
    pub revalidate_share: f64,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        Self {
            interval_mean_secs: 18.0,
            pages_mean: 220.0,
            revalidate_share: 0.22,
        }
    }
}

/// Which crawler operator a client belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrawlerIdentity {
    /// Googlebot.
    Google,
    /// Bingbot.
    Bing,
}

impl CrawlerIdentity {
    /// The crawler's user-agent string.
    pub fn user_agent(self) -> &'static str {
        match self {
            CrawlerIdentity::Google => GOOGLEBOT,
            CrawlerIdentity::Bing => BINGBOT,
        }
    }
}

/// Plans one crawl session.
pub fn plan_session(
    cfg: &CrawlerConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
    identity: CrawlerIdentity,
) -> SessionPlan {
    let len =
        LogNormal::from_mean_cv(cfg.pages_mean, 0.3).sample_clamped(rng, 40.0, 600.0) as usize;
    let interval = LogNormal::from_mean_cv(cfg.interval_mean_secs, 0.5);

    let mut requests = Vec::with_capacity(len + 2);
    let mut clock = 0.0f64;

    // Protocol hygiene: robots.txt, then the sitemap.
    requests.push(RequestSpec::get(
        clock,
        site.robots_txt(),
        HttpStatus::OK,
        Some(412),
    ));
    clock += interval.sample_clamped(rng, 1.0, 60.0);
    requests.push(RequestSpec::get(
        clock,
        site.sitemap(),
        HttpStatus::OK,
        Some(18_234),
    ));
    clock += interval.sample_clamped(rng, 1.0, 60.0);

    let mut offer_cursor = rng.gen_range(0..site.offer_count());
    for i in 0..len {
        let path = match i % 13 {
            0 => site.destination_path(rng.gen_range(0..24)),
            1 => site.home(),
            _ => {
                offer_cursor = (offer_cursor + 1) % site.offer_count();
                site.offer_path(offer_cursor)
            }
        };
        let (status, bytes) = if rng.gen_bool(cfg.revalidate_share) {
            (HttpStatus::NOT_MODIFIED, None)
        } else if rng.gen_bool(0.004) {
            // Stale sitemap entries 404 occasionally.
            (HttpStatus::NOT_FOUND, Some(super::error_bytes(404)))
        } else {
            (HttpStatus::OK, Some(page_bytes(rng)))
        };
        requests.push(RequestSpec::get(clock, path, status, bytes));
        clock += interval.sample_clamped(rng, 2.0, 120.0);
    }

    SessionPlan {
        start,
        addr,
        user_agent: identity.user_agent().to_owned(),
        actor: ActorClass::SearchCrawler,
        client_id,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_one(seed: u64) -> SessionPlan {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        plan_session(
            &CrawlerConfig::default(),
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(66, 249, 66, 1),
            2,
            CrawlerIdentity::Google,
        )
    }

    #[test]
    fn crawl_starts_with_robots_then_sitemap() {
        let plan = plan_one(1);
        assert_eq!(plan.requests[0].path, "/robots.txt");
        assert_eq!(plan.requests[1].path, "/sitemap.xml");
    }

    #[test]
    fn crawler_self_identifies() {
        let plan = plan_one(2);
        assert!(plan.user_agent.contains("Googlebot"));
        assert_eq!(
            CrawlerIdentity::Bing.user_agent(),
            crate::useragents::BINGBOT
        );
    }

    #[test]
    fn pacing_is_polite() {
        let plan = plan_one(3);
        let span = plan.requests.last().unwrap().offset;
        let gap = span / plan.len() as f64;
        assert!(gap > 8.0, "crawler gap {gap}s too aggressive");
    }

    #[test]
    fn revalidations_produce_304s() {
        let plan = plan_one(4);
        let n304 = plan
            .requests
            .iter()
            .filter(|r| r.status == HttpStatus::NOT_MODIFIED)
            .count();
        let share = n304 as f64 / plan.len() as f64;
        assert!((0.1..0.4).contains(&share), "304 share {share}");
    }

    #[test]
    fn crawler_fetches_no_assets() {
        let plan = plan_one(5);
        assert!(plan
            .requests
            .iter()
            .all(|r| !r.path.starts_with("/static/")));
    }
}
