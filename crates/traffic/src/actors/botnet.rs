//! The aggressive price-scraping botnet — the paper's headline threat.
//!
//! Three campaigns with distinct evasion levels model the real spectrum of
//! fare-scraping operations:
//!
//! * [`Campaign::Toolkit`] — off-the-shelf scrapers announcing HTTP-tool
//!   user agents from data-center addresses. Trivially caught by signature
//!   *and* behaviour.
//! * [`Campaign::Spoofed`] — a stale, fixed browser identity spoofed across
//!   the whole botnet (the fleet-wide uniformity is itself the fingerprint),
//!   mixed data-center/residential addresses.
//! * [`Campaign::Residential`] — current browser identities on compromised
//!   residential machines; only *behaviour* (rate, asset starvation,
//!   repetition) gives these away.
//!
//! All campaigns scrape the same way: systematic sweeps of search pages and
//! offer pages for competitive routes, no assets, machine-paced intervals.

use std::net::Ipv4Addr;

use divscrape_httplog::{ClfTimestamp, HttpStatus};
use rand::rngs::StdRng;
use rand::Rng;

use super::{api_bytes, error_bytes, page_bytes, redirect_bytes};
use crate::distrib::{LogNormal, Pareto};
use crate::session::{RequestSpec, SessionPlan};
use crate::useragents::{BrowserPool, BOTNET_SPOOFED_BROWSER, SCRAPER_TOOLS};
use crate::{ActorClass, SiteModel};

/// The three modelled scraping campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Campaign {
    /// HTTP-tool user agents, data-center addresses, fastest pacing.
    Toolkit,
    /// One stale spoofed browser identity fleet-wide.
    Spoofed,
    /// Fresh browser identities on residential addresses.
    Residential,
}

/// Behavioural knobs for one botnet campaign.
#[derive(Debug, Clone)]
pub struct BotnetConfig {
    /// Which campaign this is.
    pub campaign: Campaign,
    /// Mean seconds between requests.
    pub interval_mean_secs: f64,
    /// Mean session length in requests (Pareto-tailed).
    pub session_len_mean: f64,
    /// Probability a scrape hits the fare API instead of the HTML page.
    pub api_share: f64,
    /// Per-request probability of following the hidden honeytrap link —
    /// link-enumerating scrapers cannot tell it from a real offer.
    pub trap_prob: f64,
}

impl BotnetConfig {
    /// Default tuning for a campaign.
    pub fn for_campaign(campaign: Campaign) -> Self {
        match campaign {
            Campaign::Toolkit => Self {
                campaign,
                interval_mean_secs: 1.2,
                session_len_mean: 380.0,
                api_share: 0.10,
                trap_prob: 0.004,
            },
            Campaign::Spoofed => Self {
                campaign,
                interval_mean_secs: 1.8,
                session_len_mean: 380.0,
                api_share: 0.04,
                trap_prob: 0.003,
            },
            Campaign::Residential => Self {
                campaign,
                interval_mean_secs: 2.4,
                session_len_mean: 380.0,
                api_share: 0.02,
                trap_prob: 0.003,
            },
        }
    }
}

/// Draws the user agent a node of this campaign presents.
pub fn campaign_user_agent(campaign: Campaign, rng: &mut StdRng, browsers: &BrowserPool) -> String {
    match campaign {
        Campaign::Toolkit => SCRAPER_TOOLS[rng.gen_range(0..SCRAPER_TOOLS.len())].to_owned(),
        Campaign::Spoofed => BOTNET_SPOOFED_BROWSER.to_owned(),
        Campaign::Residential => browsers.sample(rng).to_owned(),
    }
}

/// Plans one scraping session for a botnet node.
///
/// `user_agent` must be stable per node (nodes keep their identity across
/// sessions), so it is supplied by the caller rather than drawn here.
pub fn plan_session(
    cfg: &BotnetConfig,
    site: &SiteModel,
    rng: &mut StdRng,
    start: ClfTimestamp,
    addr: Ipv4Addr,
    client_id: u32,
    user_agent: String,
) -> SessionPlan {
    let len_dist = Pareto::new(cfg.session_len_mean * 0.55, 2.2);
    let len = len_dist.sample(rng).clamp(60.0, cfg.session_len_mean * 6.0) as usize;
    let interval = LogNormal::from_mean_cv(cfg.interval_mean_secs, 0.45);

    let mut requests = Vec::with_capacity(len);
    let mut clock = 0.0f64;

    // A sweep iterates routes; within each route it paginates search results
    // then pulls the offers listed. The systematic repetition is the
    // behavioural signature in-house detectors key on.
    let mut route = site.sample_route(rng);
    let mut page = 1u32;

    for i in 0..len {
        let is_api = rng.gen_bool(cfg.api_share);
        let path = if !is_api && rng.gen_bool(cfg.trap_prob) {
            site.trap_path()
        } else if is_api {
            site.api_fares_path(route)
        } else if i % 7 == 0 {
            // Advance the sweep: next search page, or next route.
            page += 1;
            if page > 5 {
                page = 1;
                route = site.sample_route(rng);
            }
            site.search_path(rng, route, page)
        } else {
            site.offer_path(site.sample_offer(rng))
        };

        // Status mix calibrated from the paper's Table 3 "both tools"
        // column: ~97.2% 200, ~2.8% 302 (expired-session and geo redirects),
        // trace levels of 204/400/404/500.
        let (status, bytes) = {
            let u: f64 = rng.gen();
            if u < 0.971_40 {
                let b = if is_api {
                    api_bytes(rng)
                } else {
                    page_bytes(rng)
                };
                (HttpStatus::OK, Some(b))
            } else if u < 0.999_20 {
                (HttpStatus::FOUND, Some(redirect_bytes()))
            } else if u < 0.999_70 {
                (HttpStatus::NO_CONTENT, None)
            } else if u < 0.999_82 {
                (HttpStatus::BAD_REQUEST, Some(error_bytes(400)))
            } else if u < 0.999_94 {
                (HttpStatus::INTERNAL_SERVER_ERROR, Some(error_bytes(500)))
            } else {
                (HttpStatus::NOT_FOUND, Some(error_bytes(404)))
            }
        };

        requests.push(RequestSpec::get(clock, path, status, bytes));
        clock += interval.sample_clamped(rng, 0.3, 30.0);
    }

    SessionPlan {
        start,
        addr,
        user_agent,
        actor: ActorClass::PriceScraperBot,
        client_id,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_httplog::{RequestPath, ResourceClass};
    use rand::SeedableRng;

    fn plan_one(campaign: Campaign, seed: u64) -> SessionPlan {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let browsers = BrowserPool::mainstream();
        let cfg = BotnetConfig::for_campaign(campaign);
        let ua = campaign_user_agent(campaign, &mut rng, &browsers);
        plan_session(
            &cfg,
            &site,
            &mut rng,
            ClfTimestamp::PAPER_WINDOW_START,
            Ipv4Addr::new(45, 76, 12, 8),
            9,
            ua,
        )
    }

    #[test]
    fn sessions_are_long_and_fast() {
        let plan = plan_one(Campaign::Toolkit, 1);
        assert!(plan.len() >= 60, "session too short: {}", plan.len());
        let span = plan.requests.last().unwrap().offset;
        let mean_gap = span / plan.len() as f64;
        assert!(mean_gap < 3.0, "mean gap {mean_gap}s too slow for a bot");
    }

    #[test]
    fn bots_never_fetch_assets() {
        for campaign in [Campaign::Toolkit, Campaign::Spoofed, Campaign::Residential] {
            let plan = plan_one(campaign, 2);
            assert!(plan
                .requests
                .iter()
                .all(|r| { RequestPath::parse(&r.path).resource_class() != ResourceClass::Asset }));
        }
    }

    #[test]
    fn sweep_targets_search_and_offers() {
        let plan = plan_one(Campaign::Spoofed, 3);
        let searches = plan
            .requests
            .iter()
            .filter(|r| r.path.starts_with("/search"))
            .count();
        let offers = plan
            .requests
            .iter()
            .filter(|r| r.path.starts_with("/offers/"))
            .count();
        assert!(searches > 0);
        assert!(offers > searches, "offers {offers} vs searches {searches}");
    }

    #[test]
    fn campaign_identities_differ() {
        let mut rng = StdRng::seed_from_u64(4);
        let browsers = BrowserPool::mainstream();
        let toolkit = campaign_user_agent(Campaign::Toolkit, &mut rng, &browsers);
        let spoofed = campaign_user_agent(Campaign::Spoofed, &mut rng, &browsers);
        let residential = campaign_user_agent(Campaign::Residential, &mut rng, &browsers);
        assert!(
            toolkit.contains('/') && !toolkit.starts_with("Mozilla/"),
            "toolkit UA should be a tool: {toolkit}"
        );
        assert_eq!(spoofed, BOTNET_SPOOFED_BROWSER);
        assert!(residential.starts_with("Mozilla/5.0"));
        assert_ne!(residential, BOTNET_SPOOFED_BROWSER);
    }

    #[test]
    fn status_mix_is_dominated_by_200_with_redirect_tail() {
        let mut counts = std::collections::HashMap::new();
        for seed in 0..40 {
            let plan = plan_one(Campaign::Toolkit, seed);
            for r in &plan.requests {
                *counts.entry(r.status.as_u16()).or_insert(0u32) += 1;
            }
        }
        let total: u32 = counts.values().sum();
        let ok = counts.get(&200).copied().unwrap_or(0);
        let found = counts.get(&302).copied().unwrap_or(0);
        assert!(ok as f64 / total as f64 > 0.95, "200 share {ok}/{total}");
        let r302 = found as f64 / total as f64;
        assert!((0.015..0.045).contains(&r302), "302 share {r302}");
        // 304 never appears in botnet traffic (no conditional revalidation).
        assert_eq!(counts.get(&304), None);
    }

    #[test]
    fn offsets_are_monotonic() {
        for seed in 0..10 {
            let plan = plan_one(Campaign::Residential, seed);
            assert!(plan.requests.windows(2).all(|w| w[0].offset <= w[1].offset));
        }
    }
}
