//! The e-commerce site model.
//!
//! The paper's application is a travel-fare e-commerce front end. The model
//! is a page graph: home → destination/search pages → offer pages → a
//! booking funnel, plus static assets per page, a JSON fare API, robots.txt
//! and a sitemap. Offer popularity is Zipf-distributed: in fare scraping a
//! handful of competitive routes attract the bulk of lookups.

use rand::Rng;

use crate::distrib::Zipf;

/// Routes used for search queries and offer naming: realistic IATA city
/// pairs for a European travel seller.
pub const ROUTES: [&str; 24] = [
    "NCE-LHR", "CDG-JFK", "MAD-LHR", "LIS-GRU", "FRA-SIN", "AMS-BCN", "FCO-CDG", "LHR-DXB",
    "MUC-ATH", "ORY-LIS", "BCN-TXL", "VIE-ZRH", "CPH-OSL", "ARN-HEL", "DUB-AMS", "BRU-MAD",
    "GVA-NCE", "MXP-LGW", "OPO-ORY", "ATH-SKG", "WAW-KRK", "PRG-LED", "BUD-OTP", "SOF-IST",
];

/// Currencies offered by the shop; appear as query parameters.
pub const CURRENCIES: [&str; 6] = ["EUR", "GBP", "USD", "CHF", "SEK", "PLN"];

/// The modelled site: URL space and popularity structure.
///
/// ```
/// use divscrape_traffic::SiteModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let site = SiteModel::new(2_000);
/// let mut rng = StdRng::seed_from_u64(1);
/// let offer = site.offer_path(site.sample_offer(&mut rng));
/// assert!(offer.starts_with("/offers/"));
/// ```
#[derive(Debug, Clone)]
pub struct SiteModel {
    n_offers: usize,
    offer_popularity: Zipf,
    route_popularity: Zipf,
}

impl SiteModel {
    /// Creates a site with `n_offers` offer pages.
    ///
    /// # Panics
    ///
    /// Panics if `n_offers == 0`.
    pub fn new(n_offers: usize) -> Self {
        Self {
            n_offers,
            offer_popularity: Zipf::new(n_offers, 0.9),
            route_popularity: Zipf::new(ROUTES.len(), 0.8),
        }
    }

    /// Number of offer pages.
    pub fn offer_count(&self) -> usize {
        self.n_offers
    }

    /// The home page.
    pub fn home(&self) -> String {
        "/".to_owned()
    }

    /// Draws an offer id with Zipf popularity (`0..offer_count`).
    pub fn sample_offer<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.offer_popularity.sample_index(rng)
    }

    /// The canonical path of an offer page.
    pub fn offer_path(&self, offer_id: usize) -> String {
        format!("/offers/{}", offer_id % self.n_offers)
    }

    /// Draws a route string with Zipf popularity.
    pub fn sample_route<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        ROUTES[self.route_popularity.sample_index(rng)]
    }

    /// A search-results page for a route. `page` is 1-based pagination.
    pub fn search_path<R: Rng + ?Sized>(&self, rng: &mut R, route: &str, page: u32) -> String {
        let currency = CURRENCIES[rng.gen_range(0..CURRENCIES.len())];
        if page <= 1 {
            format!("/search?q={route}&currency={currency}")
        } else {
            format!("/search?q={route}&currency={currency}&page={page}")
        }
    }

    /// A destination landing page (SEO pages crawled by search engines).
    pub fn destination_path(&self, index: usize) -> String {
        let route = ROUTES[index % ROUTES.len()];
        let city = &route[4..];
        format!("/destinations/{}", city.to_ascii_lowercase())
    }

    /// The JSON fare API endpoint for a route.
    pub fn api_fares_path(&self, route: &str) -> String {
        format!("/api/v1/fares?route={route}")
    }

    /// The API availability-beacon endpoint (returns `204 No Content` when
    /// there is no fare change — a favourite polling target).
    pub fn api_beacon_path(&self, route: &str) -> String {
        format!("/api/v1/changes?route={route}")
    }

    /// The steps of the booking funnel, in order.
    pub fn booking_funnel(&self) -> [String; 3] {
        [
            "/booking/start".to_owned(),
            "/booking/details".to_owned(),
            "/booking/checkout".to_owned(),
        ]
    }

    /// `robots.txt`.
    pub fn robots_txt(&self) -> String {
        "/robots.txt".to_owned()
    }

    /// The sitemap index.
    pub fn sitemap(&self) -> String {
        "/sitemap.xml".to_owned()
    }

    /// The health endpoint polled by uptime monitors.
    pub fn health(&self) -> String {
        "/health".to_owned()
    }

    /// Static assets referenced by a page of the given path. Deterministic
    /// per page kind: every page pulls the app bundle and stylesheet, offer
    /// pages add photos, search pages add the results script.
    pub fn assets_for(&self, page_path: &str) -> Vec<String> {
        let mut assets = vec![
            "/static/css/main.css".to_owned(),
            "/static/js/app.js".to_owned(),
        ];
        if page_path.starts_with("/offers/") {
            let id: usize = page_path
                .rsplit('/')
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            assets.push(format!("/static/img/offers/{}.jpg", id % 500));
            assets.push("/static/js/gallery.js".to_owned());
        } else if page_path.starts_with("/search") {
            assets.push("/static/js/results.js".to_owned());
            assets.push("/static/img/spinner.gif".to_owned());
        } else if page_path == "/" {
            assets.push("/static/img/hero.jpg".to_owned());
            assets.push("/static/fonts/brand.woff2".to_owned());
        } else if page_path.starts_with("/booking") {
            assets.push("/static/js/payment.js".to_owned());
        }
        assets
    }

    /// The honeytrap page: linked invisibly from every page (CSS-hidden)
    /// and disallowed in `robots.txt`. No human ever sees the link and no
    /// compliant crawler follows it — only link-enumerating automation
    /// lands here, which is what makes it a detector in its own right.
    pub fn trap_path(&self) -> String {
        "/deals/unlisted-crossings".to_owned()
    }

    /// Paths a vulnerability scanner probes (none exist on the site).
    pub fn probe_paths(&self) -> &'static [&'static str] {
        &[
            "/wp-admin/setup.php",
            "/wp-login.php",
            "/.env",
            "/phpmyadmin/index.php",
            "/.git/config",
            "/cgi-bin/test.cgi",
            "/admin.php",
            "/config.php",
            "/vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php",
        ]
    }
}

impl Default for SiteModel {
    /// A site with 2,000 offers — the scale used by every scenario preset.
    fn default() -> Self {
        SiteModel::new(2_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_httplog::{RequestPath, ResourceClass};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn offer_paths_classify_as_pages() {
        let site = SiteModel::default();
        let p = RequestPath::parse(&site.offer_path(17));
        assert_eq!(p.resource_class(), ResourceClass::Page);
    }

    #[test]
    fn search_paths_carry_route_and_pagination() {
        let site = SiteModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let p1 = site.search_path(&mut rng, "NCE-LHR", 1);
        assert!(p1.contains("q=NCE-LHR"), "{p1}");
        assert!(!p1.contains("page="), "{p1}");
        let p3 = site.search_path(&mut rng, "NCE-LHR", 3);
        assert!(p3.contains("page=3"), "{p3}");
        let parsed = RequestPath::parse(&p3);
        assert_eq!(parsed.query_param("q"), Some("NCE-LHR"));
        assert_eq!(parsed.query_param("page"), Some("3"));
    }

    #[test]
    fn assets_are_deterministic_and_classified() {
        let site = SiteModel::default();
        let a1 = site.assets_for("/offers/42");
        let a2 = site.assets_for("/offers/42");
        assert_eq!(a1, a2);
        assert!(a1.len() >= 3);
        for asset in &a1 {
            assert_eq!(
                RequestPath::parse(asset).resource_class(),
                ResourceClass::Asset,
                "{asset} not an asset"
            );
        }
    }

    #[test]
    fn popular_offers_dominate_samples() {
        let site = SiteModel::new(1_000);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if site.sample_offer(&mut rng) < 50 {
                head += 1;
            }
        }
        // Top 5% of offers should draw well over 5% of traffic under Zipf.
        assert!(head > n / 5, "head draws {head} of {n}");
    }

    #[test]
    fn api_and_special_paths_classify_correctly() {
        let site = SiteModel::default();
        assert_eq!(
            RequestPath::parse(&site.api_fares_path("NCE-LHR")).resource_class(),
            ResourceClass::Api
        );
        assert_eq!(
            RequestPath::parse(&site.api_beacon_path("NCE-LHR")).resource_class(),
            ResourceClass::Api
        );
        assert_eq!(
            RequestPath::parse(&site.robots_txt()).resource_class(),
            ResourceClass::RobotsTxt
        );
        assert_eq!(
            RequestPath::parse(&site.sitemap()).resource_class(),
            ResourceClass::Sitemap
        );
        assert_eq!(
            RequestPath::parse(&site.health()).resource_class(),
            ResourceClass::Health
        );
        for probe in site.probe_paths() {
            assert_eq!(
                RequestPath::parse(probe).resource_class(),
                ResourceClass::Probe,
                "{probe} not a probe"
            );
        }
    }

    #[test]
    fn booking_funnel_is_ordered_pages() {
        let site = SiteModel::default();
        let funnel = site.booking_funnel();
        assert_eq!(funnel.len(), 3);
        for step in &funnel {
            assert_eq!(
                RequestPath::parse(step).resource_class(),
                ResourceClass::Page
            );
        }
    }

    #[test]
    fn destination_pages_cover_routes() {
        let site = SiteModel::default();
        let d = site.destination_path(0);
        assert!(d.starts_with("/destinations/"));
        assert_eq!(RequestPath::parse(&d).resource_class(), ResourceClass::Page);
    }
}
