//! Scenario configuration and presets.

use divscrape_httplog::ClfTimestamp;

use crate::actors::botnet::{BotnetConfig, Campaign};
use crate::actors::crawler::CrawlerConfig;
use crate::actors::human::HumanConfig;
use crate::actors::monitor::MonitorConfig;
use crate::actors::partner::PartnerConfig;
use crate::actors::scanner::ScannerConfig;
use crate::actors::stealth::StealthConfig;

/// Number of HTTP requests in the paper's dataset (Table 1).
pub const PAPER_TOTAL_REQUESTS: u64 = 1_469_744;

/// Fraction of total requests contributed by each population.
///
/// The defaults are the calibration that reproduces the shape of the paper's
/// Tables 1–4 (see `DESIGN.md` §5): the aggressive botnet carries the
/// "alerted by both" mass, stealth scrapers the "Distil-only" set, scanners
/// the "Arcane-only" set, and humans plus benign bots the "neither" set.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationMix {
    /// Human visitors.
    pub human: f64,
    /// Search-engine crawlers.
    pub crawler: f64,
    /// Uptime monitors.
    pub monitor: f64,
    /// Contracted partner aggregators.
    pub partner: f64,
    /// Botnet, toolkit campaign.
    pub botnet_toolkit: f64,
    /// Botnet, spoofed-identity campaign.
    pub botnet_spoofed: f64,
    /// Botnet, residential campaign.
    pub botnet_residential: f64,
    /// Stealth scrapers.
    pub stealth: f64,
    /// Reconnaissance scanners.
    pub scanner: f64,
}

impl Default for PopulationMix {
    fn default() -> Self {
        Self {
            human: 0.1225,
            crawler: 0.0055,
            monitor: 0.0018,
            partner: 0.0041,
            botnet_toolkit: 0.3351,
            botnet_spoofed: 0.3770,
            botnet_residential: 0.1257,
            stealth: 0.0220,
            scanner: 0.0063,
        }
    }
}

impl PopulationMix {
    /// The **post-shift** population of a
    /// [`DriftScenario`](crate::DriftScenario): the aggressive botnet is
    /// largely gone (blocked, or simply moved on) and the remaining
    /// traffic is human-dominated with a significant low-and-slow
    /// stealth-scraper and scanner presence.
    ///
    /// This is the regime where an offline calibration quietly rots: a
    /// rate-threshold member whose alerts were almost all true positives
    /// under the default bot-dominated mix now fires mostly on
    /// hyperactive humans, while the signature/behaviour tools keep
    /// their precision — exactly the drift that online recalibration
    /// (`divscrape-ensemble`) is built to absorb.
    pub fn stealth_shift() -> Self {
        Self {
            human: 0.62,
            crawler: 0.012,
            monitor: 0.004,
            partner: 0.008,
            botnet_toolkit: 0.04,
            botnet_spoofed: 0.04,
            botnet_residential: 0.026,
            stealth: 0.17,
            scanner: 0.08,
        }
    }

    /// A benign-dominated mix with exactly `suspicious` of the traffic
    /// malicious — the operating regime hierarchical triage is built
    /// for, where almost every entry can be dismissed by a cheap
    /// first-pass filter and only the residue pays full detector cost.
    ///
    /// The benign share `1 - suspicious` is almost entirely human
    /// (98.5%), with a sliver of crawlers, monitors and partners; the
    /// suspicious share keeps the default campaign proportions (toolkit-
    /// and spoofed-heavy, with residential, stealth and scanner tails).
    /// `suspicious` must be in `[0, 1]`; typical triage operating points
    /// are `0.01`, `0.10` and `0.50`.
    pub fn benign_heavy(suspicious: f64) -> Self {
        let s = suspicious.clamp(0.0, 1.0);
        let benign = 1.0 - s;
        Self {
            human: benign * 0.985,
            crawler: benign * 0.009,
            monitor: benign * 0.003,
            partner: benign * 0.003,
            botnet_toolkit: s * 0.35,
            botnet_spoofed: s * 0.30,
            botnet_residential: s * 0.15,
            stealth: s * 0.12,
            scanner: s * 0.08,
        }
    }

    /// Sum of all fractions (should be ≈ 1).
    pub fn total(&self) -> f64 {
        self.human
            + self.crawler
            + self.monitor
            + self.partner
            + self.botnet_toolkit
            + self.botnet_spoofed
            + self.botnet_residential
            + self.stealth
            + self.scanner
    }

    /// Validates that all fractions are non-negative and sum to ~1.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            ("human", self.human),
            ("crawler", self.crawler),
            ("monitor", self.monitor),
            ("partner", self.partner),
            ("botnet_toolkit", self.botnet_toolkit),
            ("botnet_spoofed", self.botnet_spoofed),
            ("botnet_residential", self.botnet_residential),
            ("stealth", self.stealth),
            ("scanner", self.scanner),
        ];
        for (name, v) in parts {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("population fraction `{name}` is {v}"));
            }
        }
        let total = self.total();
        if (total - 1.0).abs() > 0.01 {
            return Err(format!("population fractions sum to {total}, expected ~1"));
        }
        Ok(())
    }

    /// Total fraction of malicious traffic.
    pub fn malicious_fraction(&self) -> f64 {
        self.botnet_toolkit
            + self.botnet_spoofed
            + self.botnet_residential
            + self.stealth
            + self.scanner
    }
}

/// Full configuration of one synthetic-traffic run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed; every stream in the run derives from it.
    pub seed: u64,
    /// Total number of requests to generate (exactly).
    pub target_requests: u64,
    /// First instant of the observation window.
    pub window_start: ClfTimestamp,
    /// Window length in days.
    pub window_days: u32,
    /// Number of offer pages on the site.
    pub site_offers: usize,
    /// Population mix.
    pub mix: PopulationMix,
    /// Human behaviour knobs.
    pub human: HumanConfig,
    /// Toolkit-campaign knobs.
    pub botnet_toolkit: BotnetConfig,
    /// Spoofed-campaign knobs.
    pub botnet_spoofed: BotnetConfig,
    /// Residential-campaign knobs.
    pub botnet_residential: BotnetConfig,
    /// Stealth-scraper knobs.
    pub stealth: StealthConfig,
    /// Scanner knobs.
    pub scanner: ScannerConfig,
    /// Crawler knobs.
    pub crawler: CrawlerConfig,
    /// Monitor knobs.
    pub monitor: MonitorConfig,
    /// Partner knobs.
    pub partner: PartnerConfig,
}

impl ScenarioConfig {
    /// A scenario of `target_requests` requests with default behaviour and
    /// mix, over the paper's 8-day window.
    pub fn with_target(seed: u64, target_requests: u64) -> Self {
        Self {
            seed,
            target_requests,
            window_start: ClfTimestamp::PAPER_WINDOW_START,
            window_days: 8,
            site_offers: 2_000,
            mix: PopulationMix::default(),
            human: HumanConfig::default(),
            botnet_toolkit: BotnetConfig::for_campaign(Campaign::Toolkit),
            botnet_spoofed: BotnetConfig::for_campaign(Campaign::Spoofed),
            botnet_residential: BotnetConfig::for_campaign(Campaign::Residential),
            stealth: StealthConfig::default(),
            scanner: ScannerConfig::default(),
            crawler: CrawlerConfig::default(),
            monitor: MonitorConfig::default(),
            partner: PartnerConfig::default(),
        }
    }

    /// The full paper-scale scenario: 1,469,744 requests over 8 days
    /// starting 2018-03-11, like the dataset in Section III.
    pub fn paper_scale(seed: u64) -> Self {
        Self::with_target(seed, PAPER_TOTAL_REQUESTS)
    }

    /// ~120k requests; the workhorse for experiments that sweep parameters.
    pub fn medium(seed: u64) -> Self {
        Self::with_target(seed, 120_000)
    }

    /// ~12k requests; integration-test scale.
    pub fn small(seed: u64) -> Self {
        Self::with_target(seed, 12_000)
    }

    /// ~1.2k requests; unit-test scale.
    pub fn tiny(seed: u64) -> Self {
        Self::with_target(seed, 1_200)
    }

    /// A benign-heavy triage scenario: `target_requests` requests with
    /// [`PopulationMix::benign_heavy`]`(suspicious)` — the sweep axis of
    /// the triage benchmarks (1%/10%/50% suspicious share).
    pub fn benign_heavy(seed: u64, target_requests: u64, suspicious: f64) -> Self {
        Self {
            mix: PopulationMix::benign_heavy(suspicious),
            ..Self::with_target(seed, target_requests)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_requests == 0 {
            return Err("target_requests must be positive".into());
        }
        if self.window_days == 0 {
            return Err("window_days must be positive".into());
        }
        if self.site_offers == 0 {
            return Err("site_offers must be positive".into());
        }
        self.mix.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_sums_to_one() {
        let mix = PopulationMix::default();
        assert!((mix.total() - 1.0).abs() < 1e-9, "total {}", mix.total());
        mix.validate().unwrap();
    }

    #[test]
    fn default_mix_is_bot_dominated_like_the_paper() {
        // The paper's tools alert on ~84-87% of all traffic; the malicious
        // fraction must sit in that region for the shape to reproduce.
        let mix = PopulationMix::default();
        let m = mix.malicious_fraction();
        assert!((0.80..0.92).contains(&m), "malicious fraction {m}");
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        let mix = PopulationMix {
            human: -0.1,
            ..PopulationMix::default()
        };
        assert!(mix.validate().is_err());
        let mix = PopulationMix {
            human: PopulationMix::default().human + 0.5,
            ..PopulationMix::default()
        };
        assert!(mix.validate().is_err());
    }

    #[test]
    fn presets_scale_down_consistently() {
        let paper = ScenarioConfig::paper_scale(1);
        let small = ScenarioConfig::small(1);
        assert_eq!(paper.target_requests, 1_469_744);
        assert_eq!(paper.window_days, 8);
        assert_eq!(small.window_days, 8);
        assert_eq!(paper.mix, small.mix);
        paper.validate().unwrap();
        small.validate().unwrap();
        ScenarioConfig::medium(1).validate().unwrap();
        ScenarioConfig::tiny(1).validate().unwrap();
    }

    #[test]
    fn benign_heavy_mix_hits_the_requested_suspicious_share() {
        for s in [0.0, 0.01, 0.10, 0.50, 1.0] {
            let mix = PopulationMix::benign_heavy(s);
            mix.validate().unwrap();
            assert!(
                (mix.malicious_fraction() - s).abs() < 1e-9,
                "suspicious share {s}: got {}",
                mix.malicious_fraction()
            );
        }
        // Out-of-range inputs clamp instead of producing a bad mix.
        PopulationMix::benign_heavy(2.0).validate().unwrap();
        let cfg = ScenarioConfig::benign_heavy(7, 5_000, 0.01);
        cfg.validate().unwrap();
        assert_eq!(cfg.target_requests, 5_000);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = ScenarioConfig::tiny(1);
        cfg.target_requests = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ScenarioConfig::tiny(1);
        cfg.window_days = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ScenarioConfig::tiny(1);
        cfg.site_offers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_window_matches_section_three() {
        let cfg = ScenarioConfig::paper_scale(0);
        assert_eq!(cfg.window_start.year(), 2018);
        assert_eq!(cfg.window_start.month(), 3);
        assert_eq!(cfg.window_start.day(), 11);
        assert_eq!(cfg.window_days, 8); // March 11th..18th inclusive.
    }
}
