//! Address-space model.
//!
//! Each population draws client addresses from named pools that mirror the
//! real internet's coarse structure: residential eyeball networks, cloud /
//! hosting ranges, and the published ranges of crawler, monitoring and
//! partner operators. Detector-side artefacts (Sentinel's reputation feed)
//! are built over the *same* public structure — in reality, too, both the
//! attacker's hosting choices and the vendor's feed derive from provider
//! address registries.

use std::net::Ipv4Addr;

use divscrape_httplog::Cidr;
use rand::Rng;

/// A weighted set of CIDR blocks to draw client addresses from.
#[derive(Debug, Clone)]
pub struct IpPool {
    blocks: Vec<Cidr>,
}

impl IpPool {
    /// Creates a pool from blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<Cidr>) -> Self {
        assert!(!blocks.is_empty(), "a pool needs at least one block");
        Self { blocks }
    }

    /// The blocks in this pool.
    pub fn blocks(&self) -> &[Cidr] {
        &self.blocks
    }

    /// Draws one address uniformly across the pool's total address space.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        let total: u64 = self.blocks.iter().map(|b| b.host_count()).sum();
        let mut pick = rng.gen_range(0..total);
        for block in &self.blocks {
            if pick < block.host_count() {
                // Skip the network (.0-ish) and broadcast edges for realism.
                let idx = pick.clamp(1, block.host_count().saturating_sub(2).max(1));
                return block.nth_host(idx).expect("index clamped into block");
            }
            pick -= block.host_count();
        }
        unreachable!("pick is within total host count");
    }

    /// Whether an address falls in any block of the pool.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.blocks.iter().any(|b| b.contains(addr))
    }
}

fn cidr(s: &str) -> Cidr {
    s.parse().expect("static CIDR tables are well-formed")
}

/// Residential eyeball networks: where humans (and compromised home
/// machines) live.
pub fn residential() -> IpPool {
    IpPool::new(vec![
        cidr("81.2.0.0/15"),
        cidr("92.136.0.0/13"),
        cidr("109.64.0.0/12"),
        cidr("177.32.0.0/12"),
        cidr("24.16.0.0/13"),
        cidr("151.48.0.0/14"),
    ])
}

/// Cloud/hosting ranges: where scraping infrastructure is rented. These are
/// exactly the ranges a commercial reputation feed lists.
pub fn datacenter() -> IpPool {
    IpPool::new(vec![
        cidr("45.76.0.0/14"),
        cidr("104.131.0.0/16"),
        cidr("159.203.0.0/16"),
        cidr("188.166.0.0/16"),
        cidr("5.188.0.0/16"),
        cidr("185.220.0.0/16"),
        cidr("192.241.0.0/16"),
    ])
}

/// A residential `/20` that a sloppy reputation feed wrongly lists (stale
/// evidence from a long-cleaned infection). Humans unlucky enough to draw an
/// address here become the feed's false positives.
pub fn reputation_contamination_block() -> Cidr {
    cidr("92.143.0.0/20")
}

/// Googlebot's published crawl range (subset).
pub fn crawler_google() -> IpPool {
    IpPool::new(vec![cidr("66.249.64.0/19")])
}

/// Bingbot's published crawl range (subset).
pub fn crawler_bing() -> IpPool {
    IpPool::new(vec![cidr("157.55.32.0/20")])
}

/// The uptime-monitoring operator's published range.
pub fn monitor_range() -> IpPool {
    IpPool::new(vec![cidr("178.255.152.0/24")])
}

/// The contracted partner's range (from the API contract).
pub fn partner_range() -> IpPool {
    IpPool::new(vec![cidr("203.0.113.0/24")])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_fall_inside_their_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        for pool in [
            residential(),
            datacenter(),
            crawler_google(),
            crawler_bing(),
            monitor_range(),
            partner_range(),
        ] {
            for _ in 0..500 {
                let a = pool.sample(&mut rng);
                assert!(pool.contains(a), "{a} escaped its pool");
            }
        }
    }

    #[test]
    fn pools_are_disjoint_where_it_matters() {
        let mut rng = StdRng::seed_from_u64(2);
        let dc = datacenter();
        let res = residential();
        for _ in 0..2_000 {
            let a = dc.sample(&mut rng);
            assert!(!res.contains(a), "{a} in both datacenter and residential");
        }
        for _ in 0..2_000 {
            let a = res.sample(&mut rng);
            assert!(!dc.contains(a), "{a} in both residential and datacenter");
        }
    }

    #[test]
    fn contamination_block_sits_inside_residential_space() {
        let res = residential();
        let block = reputation_contamination_block();
        assert!(res.contains(block.network()));
        assert!(res.contains(block.nth_host(block.host_count() - 1).unwrap()));
        // ... and is NOT inside datacenter space.
        assert!(!datacenter().contains(block.network()));
    }

    #[test]
    fn residential_sampling_occasionally_hits_the_contaminated_block() {
        // The block is 4096 of ~3.6M residential addresses (~0.11%); with
        // 100k draws we expect ~115 hits — assert a loose band.
        let mut rng = StdRng::seed_from_u64(3);
        let res = residential();
        let block = reputation_contamination_block();
        let hits = (0..100_000)
            .filter(|_| block.contains(res.sample(&mut rng)))
            .count();
        assert!((20..400).contains(&hits), "contamination hits {hits}");
    }

    #[test]
    fn sampling_spreads_across_blocks() {
        let mut rng = StdRng::seed_from_u64(4);
        let res = residential();
        let mut per_block = vec![0u32; res.blocks().len()];
        for _ in 0..10_000 {
            let a = res.sample(&mut rng);
            let i = res.blocks().iter().position(|b| b.contains(a)).unwrap();
            per_block[i] += 1;
        }
        assert!(
            per_block.iter().all(|&c| c > 0),
            "some block never drawn: {per_block:?}"
        );
    }
}
