//! User-agent pools for each actor population.

use rand::Rng;

use crate::distrib::Categorical;

/// 2018-era mainstream browser user agents with market-share-like weights.
const BROWSERS: [(&str, f64); 8] = [
    (
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
        34.0,
    ),
    (
        "Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
        14.0,
    ),
    (
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
        12.0,
    ),
    (
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:58.0) Gecko/20100101 Firefox/58.0",
        11.0,
    ),
    (
        "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
        5.0,
    ),
    (
        "Mozilla/5.0 (iPhone; CPU iPhone OS 11_2_6 like Mac OS X) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0 Mobile/15D100 Safari/604.1",
        13.0,
    ),
    (
        "Mozilla/5.0 (Linux; Android 8.0.0; SM-G950F) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.137 Mobile Safari/537.36",
        8.0,
    ),
    (
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36 Edge/16.16299",
        3.0,
    ),
];

/// The stale, never-updated browser identity an aggressive botnet spoofs —
/// one fixed string across the whole campaign, which is precisely what makes
/// it fingerprintable.
pub const BOTNET_SPOOFED_BROWSER: &str =
    "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2272.89 Safari/537.36";

/// HTTP-tool identities used by unsophisticated scraper campaigns.
pub const SCRAPER_TOOLS: [&str; 4] = [
    "python-requests/2.18.4",
    "curl/7.58.0",
    "Scrapy/1.5.0 (+https://scrapy.org)",
    "Java/1.8.0_151",
];

/// The search-engine crawler identity.
pub const GOOGLEBOT: &str =
    "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)";

/// Second search-engine crawler identity.
pub const BINGBOT: &str = "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)";

/// The uptime monitor identity.
pub const PINGDOM: &str = "Pingdom.com_bot_version_1.4_(http://www.pingdom.com/)";

/// The contracted partner's API client identity.
pub const PARTNER_AGGREGATOR: &str = "FareConnect-Partner-Client/3.2 (+contract AMS-2041)";

/// A weighted pool of browser identities.
#[derive(Debug, Clone)]
pub struct BrowserPool {
    pool: Categorical<&'static str>,
}

impl BrowserPool {
    /// The 2018-era mainstream browser pool.
    pub fn mainstream() -> Self {
        Self {
            pool: Categorical::new(BROWSERS.to_vec()),
        }
    }

    /// Draws one browser identity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        self.pool.sample(rng)
    }

    /// Number of identities in the pool.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty (never; the pool is a fixed table).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for BrowserPool {
    fn default() -> Self {
        Self::mainstream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_httplog::{AgentFamily, UserAgent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_browser_identities_classify_as_browsers() {
        for (ua, _) in BROWSERS {
            assert_eq!(
                UserAgent::new(ua).family(),
                AgentFamily::Browser,
                "misclassified {ua}"
            );
        }
        assert_eq!(
            UserAgent::new(BOTNET_SPOOFED_BROWSER).family(),
            AgentFamily::Browser
        );
    }

    #[test]
    fn tool_identities_classify_as_tools() {
        for ua in SCRAPER_TOOLS {
            assert_eq!(
                UserAgent::new(ua).family(),
                AgentFamily::HttpTool,
                "misclassified {ua}"
            );
        }
    }

    #[test]
    fn crawler_and_monitor_identities_classify() {
        assert_eq!(
            UserAgent::new(GOOGLEBOT).family(),
            AgentFamily::KnownCrawler
        );
        assert_eq!(UserAgent::new(BINGBOT).family(), AgentFamily::KnownCrawler);
        assert_eq!(UserAgent::new(PINGDOM).family(), AgentFamily::Monitor);
        assert_eq!(
            UserAgent::new(PARTNER_AGGREGATOR).family(),
            AgentFamily::Unknown
        );
    }

    #[test]
    fn pool_sampling_hits_multiple_identities() {
        let pool = BrowserPool::mainstream();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(pool.sample(&mut rng));
        }
        assert!(seen.len() >= 6, "only {} identities drawn", seen.len());
    }
}
