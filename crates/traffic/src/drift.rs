//! Drifting-traffic scenarios: population shifts mid-stream.
//!
//! The paper's dataset is one 8-day window with one population mix, but a
//! deployed detector does not get that luxury: scraper populations shift —
//! campaigns end, botnets are blocked, stealth operations ramp up — and a
//! detector combination calibrated on last month's traffic can quietly
//! lose precision on this month's (Lagopoulos et al. measure exactly this
//! regime dependence; BOTracle argues combinations must adapt to it).
//!
//! A [`DriftScenario`] models the shift as a sequence of **phases**: each
//! phase is a full [`ScenarioConfig`] (its own population mix, behaviour
//! knobs and request budget) over a window that starts where the previous
//! phase's ended, so [`generate`](DriftScenario::generate) yields one
//! continuous timestamp-ordered [`LabelledLog`] whose ground truth spans
//! the shift. [`phase_boundaries`](DriftScenario::phase_boundaries)
//! reports where each phase begins in the combined log, so per-phase
//! metrics (pre-shift vs post-shift precision) fall out directly.
//!
//! ```
//! use divscrape_traffic::DriftScenario;
//!
//! // Bot-dominated week, then the stealth shift.
//! let scenario = DriftScenario::scraper_population_shift(42, 1_200);
//! let log = scenario.generate()?;
//! assert_eq!(log.len(), 2_400);
//! let bounds = scenario.phase_boundaries();
//! assert_eq!(bounds, vec![0, 1_200]);
//! // The first phase is far more malicious than the second.
//! let malicious = |range: std::ops::Range<usize>| {
//!     log.truth()[range].iter().filter(|t| t.is_malicious()).count()
//! };
//! assert!(malicious(0..1_200) > malicious(1_200..2_400));
//! # Ok::<(), String>(())
//! ```

use divscrape_httplog::SECONDS_PER_DAY;

use crate::{generate, LabelledLog, PopulationMix, ScenarioConfig};

/// A multi-phase traffic scenario: consecutive [`ScenarioConfig`]s, each
/// over the window right after its predecessor's, spliced by
/// [`generate`](Self::generate) into one continuous labelled log whose
/// population shifts at known [`phase_boundaries`](Self::phase_boundaries).
#[derive(Debug, Clone)]
pub struct DriftScenario {
    phases: Vec<ScenarioConfig>,
}

impl DriftScenario {
    /// A scenario starting with `first` as its only phase.
    pub fn new(first: ScenarioConfig) -> Self {
        Self {
            phases: vec![first],
        }
    }

    /// Appends a phase: the previous phase's configuration with a new
    /// population `mix`, a `requests` budget, a derived seed (the phases
    /// are distinct simulated populations) and a window starting where
    /// the previous phase's ends.
    pub fn then(mut self, mix: PopulationMix, requests: u64) -> Self {
        let prev = self.phases.last().expect("at least one phase");
        let mut next = prev.clone();
        next.seed = prev
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        next.window_start = prev
            .window_start
            .plus_seconds(i64::from(prev.window_days) * SECONDS_PER_DAY);
        next.mix = mix;
        next.target_requests = requests;
        self.phases.push(next);
        self
    }

    /// The canonical two-phase drift: `requests_per_phase` requests of
    /// the paper's default bot-dominated mix, then the same budget under
    /// [`PopulationMix::stealth_shift`] — the aggressive botnet largely
    /// gone, humans dominant, stealth scrapers and scanners up.
    pub fn scraper_population_shift(seed: u64, requests_per_phase: u64) -> Self {
        Self::new(ScenarioConfig::with_target(seed, requests_per_phase))
            .then(PopulationMix::stealth_shift(), requests_per_phase)
    }

    /// The configured phases, in order.
    pub fn phases(&self) -> &[ScenarioConfig] {
        &self.phases
    }

    /// The feed-order index where each phase begins in the combined log
    /// (`phase_boundaries()[i]` is the first entry of phase `i`; the
    /// first element is always `0`).
    pub fn phase_boundaries(&self) -> Vec<usize> {
        let mut bounds = Vec::with_capacity(self.phases.len());
        let mut offset = 0usize;
        for phase in &self.phases {
            bounds.push(offset);
            offset += phase.target_requests as usize;
        }
        bounds
    }

    /// Generates every phase and splices them into one continuous
    /// labelled log ([`LabelledLog::concat`]).
    ///
    /// Deterministic: the same scenario always produces the identical
    /// log.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid phase configuration.
    pub fn generate(&self) -> Result<LabelledLog, String> {
        let mut phases = self.phases.iter();
        let first = phases.next().expect("at least one phase");
        let mut log = generate(first)?;
        for phase in phases {
            log = log.concat(generate(phase)?)?;
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealth_shift_mix_is_valid_and_less_malicious() {
        let shifted = PopulationMix::stealth_shift();
        shifted.validate().unwrap();
        assert!(shifted.malicious_fraction() < PopulationMix::default().malicious_fraction());
        assert!(shifted.stealth > PopulationMix::default().stealth);
    }

    #[test]
    fn phases_cover_consecutive_windows_in_timestamp_order() {
        let scenario = DriftScenario::scraper_population_shift(7, 600);
        assert_eq!(scenario.phases().len(), 2);
        let [first, second] = scenario.phases() else {
            panic!("two phases")
        };
        assert_eq!(
            second.window_start,
            first
                .window_start
                .plus_seconds(i64::from(first.window_days) * SECONDS_PER_DAY)
        );
        assert_ne!(first.seed, second.seed);

        let log = scenario.generate().unwrap();
        assert_eq!(log.len(), 1_200);
        assert_eq!(log.window_days(), first.window_days + second.window_days);
        for pair in log.entries().windows(2) {
            assert!(pair[0].timestamp() <= pair[1].timestamp());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DriftScenario::scraper_population_shift(11, 400)
            .generate()
            .unwrap();
        let b = DriftScenario::scraper_population_shift(11, 400)
            .generate()
            .unwrap();
        assert_eq!(a.entries().len(), b.entries().len());
        for (ea, eb) in a.entries().iter().zip(b.entries()) {
            assert_eq!(ea.to_string(), eb.to_string());
        }
    }

    #[test]
    fn concat_rounds_partial_day_offsets_up() {
        // A later window starting 8.5 days after the first must report
        // a 9 + 8 = 17-day combined window, never truncate to 16.
        let first = ScenarioConfig::with_target(1, 300);
        let mut second = ScenarioConfig::with_target(2, 300);
        second.window_start = first
            .window_start
            .plus_seconds(i64::from(first.window_days) * SECONDS_PER_DAY + SECONDS_PER_DAY / 2);
        let joined = generate(&first)
            .unwrap()
            .concat(generate(&second).unwrap())
            .unwrap();
        assert_eq!(
            joined.window_days(),
            first.window_days + 1 + second.window_days
        );
    }

    #[test]
    fn concat_rejects_overlapping_windows() {
        let first = generate(&ScenarioConfig::tiny(1)).unwrap();
        let second = generate(&ScenarioConfig::tiny(2)).unwrap();
        // Same window: the second log starts before the first ends.
        assert!(first.concat(second).is_err());
    }

    #[test]
    fn extra_phases_stack() {
        let scenario =
            DriftScenario::scraper_population_shift(3, 300).then(PopulationMix::default(), 200);
        assert_eq!(scenario.phase_boundaries(), vec![0, 300, 600]);
        let log = scenario.generate().unwrap();
        assert_eq!(log.len(), 800);
    }
}
