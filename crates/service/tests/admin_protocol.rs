//! The admin endpoint end to end: a real TCP client drives the whole
//! command table against a live plane and observes the effects through
//! `STATS` — the same wire path `examples/service.rs --smoke` uses.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use divscrape_detect::{Sentinel, TenantId};
use divscrape_pipeline::{Adjudication, PipelineBuilder};
use divscrape_service::{AdminServer, IngestOutcome, ServicePlane};

fn factory(_: &TenantId, _: usize) -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .adjudication(Adjudication::k_of_n(1))
}

struct AdminClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl AdminClient {
    fn connect(server: &AdminServer) -> AdminClient {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        AdminClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn command(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").unwrap();
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .unwrap_or_else(|e| panic!("no reply to {line:?}: {e}"));
        reply.trim_end().to_owned()
    }
}

#[test]
fn admin_endpoint_drives_membership_freeze_and_budget_live() {
    let shop = TenantId::new("shop");
    let plane = ServicePlane::builder()
        .tenant(shop.clone(), 2, factory)
        .default_factory(factory)
        .default_shards(1)
        .build()
        .unwrap();
    let admin = AdminServer::bind("127.0.0.1:0", plane.clone()).unwrap();
    let mut client = AdminClient::connect(&admin);

    // STATS and TENANTS reflect the boot-time registration.
    let stats = client.command("STATS");
    assert!(stats.starts_with('{') && stats.ends_with('}'), "{stats}");
    assert!(stats.contains("\"tenant\":\"shop\""), "{stats}");
    assert!(stats.contains("\"shards\":2"), "{stats}");
    assert_eq!(client.command("TENANTS"), "[\"shop\"]");

    // JOIN: the new tenant immediately accepts traffic.
    assert_eq!(client.command("JOIN popup 3"), "OK joined popup shards=3");
    let popup = TenantId::new("popup");
    let line =
        r#"10.9.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
    assert_eq!(
        plane.ingest(&popup, line.to_owned()),
        IngestOutcome::Routed,
        "JOINed tenant must accept traffic"
    );
    assert_eq!(client.command("TENANTS"), "[\"shop\",\"popup\"]");

    // FREEZE/THAW flip the flag visible in STATS.
    assert_eq!(client.command("FREEZE popup"), "OK frozen popup");
    let frozen = client.command("STATS");
    assert!(
        frozen.contains("\"tenant\":\"popup\",\"shards\":3") && frozen.contains("\"frozen\":true"),
        "{frozen}"
    );
    assert_eq!(client.command("THAW popup"), "OK thawed popup");
    assert!(!client.command("STATS").contains("\"frozen\":true"));

    // BUDGET apportions across both tenants and lands in STATS.
    assert_eq!(client.command("BUDGET 400"), "OK budget=400 tenants=2");
    assert!(client.command("STATS").contains("\"eviction_budget\":400"));

    // LEAVE drains and reports the departed tenant's entry count.
    assert_eq!(client.command("LEAVE popup"), "OK left popup entries=1");
    assert_eq!(client.command("TENANTS"), "[\"shop\"]");
    assert!(
        client
            .command("LEAVE popup")
            .starts_with("ERR unknown tenant"),
        "double LEAVE must fail"
    );

    // The departed tenant's entry stays in the monotonic aggregate.
    assert!(client.command("STATS").contains("\"entries_processed\":1"));

    // Errors are replies, not disconnects.
    assert!(client.command("BOGUS").starts_with("ERR unknown command"));
    assert_eq!(client.command("QUIT"), "OK bye");

    // A second client can still connect after the first quit.
    let mut second = AdminClient::connect(&admin);
    assert_eq!(second.command("TENANTS"), "[\"shop\"]");
}
