//! Temporal isolation: one tenant's stalled sink must not delay another
//! tenant's ingestion or drain.
//!
//! Tenant `stuck` gets a sink that blocks inside the pipeline until the
//! test releases it — the shard driver wedges mid-chunk, its bounded
//! queue fills, and its pump blocks. Meanwhile tenant `fluent` streams a
//! whole log through the same plane and drains, under a wall-clock
//! bound. With a single shared driver (the `PipelineHub` model) this
//! scenario deadlocks; the per-tenant shard threads are what make it
//! pass.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use divscrape_detect::{Sentinel, TenantId};
use divscrape_pipeline::{Adjudication, Alert, AlertSink, PipelineBuilder, ScoredEntry};
use divscrape_service::{IngestOutcome, ServicePlane};
use divscrape_traffic::{generate, ScenarioConfig};

/// Blocks inside the pipeline (on every scored entry, so alerts are not
/// required) until the gate opens.
#[derive(Debug, Clone, Default)]
struct GatedSink {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedSink {
    fn open(&self) {
        let (lock, cvar) = &*self.gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }

    fn wait_until_open(&self) {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
    }
}

impl AlertSink for GatedSink {
    fn on_alert(&mut self, _alert: &Alert<'_>) {}

    fn on_entry(&mut self, _entry: &ScoredEntry<'_>) {
        self.wait_until_open();
    }

    fn wants_entries(&self) -> bool {
        true
    }
}

#[test]
fn stalled_tenant_does_not_delay_another_tenants_ingestion() {
    let stuck = TenantId::new("stuck");
    let fluent = TenantId::new("fluent");
    let gate = GatedSink::default();
    let sink = gate.clone();
    let plane = ServicePlane::builder()
        .queue_depth(8)
        .tenant(stuck.clone(), 1, move |_, _| {
            PipelineBuilder::new()
                .detector(Sentinel::stock())
                .adjudication(Adjudication::k_of_n(1))
                .chunk_capacity(4) // wedge on the very first chunk
                .sink(sink.clone())
        })
        .tenant(fluent.clone(), 2, |_, _| {
            PipelineBuilder::new()
                .detector(Sentinel::stock())
                .adjudication(Adjudication::k_of_n(1))
        })
        .build()
        .unwrap();

    let log = generate(&ScenarioConfig::tiny(99)).unwrap();
    let lines: Vec<String> = log.entries().iter().map(|e| e.to_string()).collect();

    // Wedge the stuck tenant: feed from a helper thread until its pump
    // path blocks (shard queue full, driver stuck in the gated sink).
    let stuck_plane = plane.clone();
    let stuck_lines = lines.clone();
    let stuck_feeder = std::thread::spawn(move || {
        for line in stuck_lines {
            // Blocks once 8 queued + in-flight lines pile up.
            if stuck_plane.ingest(&stuck, line) != IngestOutcome::Routed {
                break;
            }
        }
    });

    // Give the stuck shard time to actually wedge (first chunk reaches
    // the gated sink and stops).
    let wedged_by = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = plane.stats();
        let processed = stats
            .tenants
            .iter()
            .find(|t| t.tenant.as_str() == "stuck")
            .map(|t| t.entries_processed())
            .unwrap_or(0);
        if processed == 0 && Instant::now() > wedged_by {
            break; // sink never finalized an entry: wedged before chunk 1
        }
        if stats.routed_lines >= 8 {
            break; // queue has filled; the feeder is blocking
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !stuck_feeder.is_finished(),
        "stuck feeder should be blocked"
    );

    // The other tenant streams its whole log and drains, bounded.
    let started = Instant::now();
    for line in &lines {
        assert_eq!(
            plane.ingest(&fluent, line.clone()),
            IngestOutcome::Routed,
            "fluent tenant was refused while another tenant stalled"
        );
    }
    let reports = plane.drain(&fluent).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(
        reports.iter().map(|r| r.requests()).sum::<usize>(),
        log.len(),
        "fluent tenant lost entries"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "fluent tenant took {elapsed:?} while another tenant stalled"
    );

    // The stuck tenant really was stuck the whole time.
    let stuck_processed = plane
        .stats()
        .tenants
        .iter()
        .find(|t| t.tenant.as_str() == "stuck")
        .map(|t| t.entries_processed())
        .unwrap();
    assert_eq!(stuck_processed, 0, "gated sink let entries finalize");

    // Release the gate: the stalled tenant catches up and every line it
    // accepted is accounted for.
    gate.open();
    stuck_feeder.join().unwrap();
    let stuck = TenantId::new("stuck");
    let reports = plane.drain(&stuck).unwrap();
    let drained: usize = reports.iter().map(|r| r.requests()).sum();
    assert_eq!(
        drained,
        log.len(),
        "stuck tenant lost entries after release"
    );
}
