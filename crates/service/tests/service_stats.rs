//! `ServiceStats` aggregation: per-shard merge is exact and the
//! plane-level aggregates are **monotonic across membership churn** —
//! the same invariant the hub pins for tenant departure, here with the
//! extra per-shard layer (a leaving tenant folds every shard's final
//! counters into the departed totals).

use divscrape_detect::{Sentinel, TenantId};
use divscrape_pipeline::{Adjudication, PipelineBuilder, TriagePolicy};
use divscrape_service::{IngestOutcome, ServicePlane, ServiceStats};
use divscrape_traffic::{generate, ScenarioConfig};

fn factory(_: &TenantId, _: usize) -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
        .triage(TriagePolicy::fast())
}

fn assert_monotonic(earlier: &ServiceStats, later: &ServiceStats, step: &str) {
    assert!(
        later.entries_processed >= earlier.entries_processed,
        "{step}: entries_processed regressed {} -> {}",
        earlier.entries_processed,
        later.entries_processed
    );
    assert!(
        later.alerts >= earlier.alerts,
        "{step}: alerts regressed {} -> {}",
        earlier.alerts,
        later.alerts
    );
    assert!(
        later.runtime_updates.total() >= earlier.runtime_updates.total(),
        "{step}: runtime_updates regressed"
    );
    assert!(
        later.parse_errors >= earlier.parse_errors,
        "{step}: parse_errors regressed"
    );
    assert!(
        later.routed_lines >= earlier.routed_lines,
        "{step}: routed_lines regressed"
    );
    assert!(
        later.triage_escalations >= earlier.triage_escalations,
        "{step}: triage_escalations regressed {} -> {}",
        earlier.triage_escalations,
        later.triage_escalations
    );
    assert!(
        later.triage_suppressed_entries >= earlier.triage_suppressed_entries,
        "{step}: triage_suppressed_entries regressed {} -> {}",
        earlier.triage_suppressed_entries,
        later.triage_suppressed_entries
    );
    assert!(
        later.triage_replayed_entries >= earlier.triage_replayed_entries,
        "{step}: triage_replayed_entries regressed"
    );
    assert!(
        later.triage_spilled_entries >= earlier.triage_spilled_entries,
        "{step}: triage_spilled_entries regressed"
    );
}

#[test]
fn aggregates_stay_monotonic_across_shard_merge_and_tenant_departure() {
    let eu = TenantId::new("shop-eu");
    let us = TenantId::new("shop-us");
    let plane = ServicePlane::builder()
        .tenant(eu.clone(), 2, factory)
        .tenant(us.clone(), 3, factory)
        .global_eviction_budget(500)
        .build()
        .unwrap();

    let eu_log = generate(&ScenarioConfig::tiny(41)).unwrap();
    let us_log = generate(&ScenarioConfig::tiny(42)).unwrap();
    for entry in eu_log.entries() {
        assert_eq!(plane.ingest(&eu, entry.to_string()), IngestOutcome::Routed);
    }
    for entry in us_log.entries().iter().take(us_log.len() / 2) {
        assert_eq!(plane.ingest(&us, entry.to_string()), IngestOutcome::Routed);
    }
    // One malformed line lands somewhere and must be counted, not fatal.
    plane.ingest(&eu, "definitely not CLF".to_owned());
    let _ = plane.drain_all();

    // Per-shard merge is exact: the plane aggregate equals the sum over
    // every tenant's shard snapshots (no departed totals yet).
    let s1 = plane.stats();
    assert_eq!(s1.tenants.len(), 2);
    assert_eq!(s1.tenants[0].shards.len(), 2);
    assert_eq!(s1.tenants[1].shards.len(), 3);
    let summed_entries: u64 = s1.tenants.iter().map(|t| t.entries_processed()).sum();
    let summed_alerts: u64 = s1.tenants.iter().map(|t| t.alerts()).sum();
    assert_eq!(s1.entries_processed, summed_entries, "shard merge drifted");
    assert_eq!(s1.alerts, summed_alerts, "shard merge drifted");
    let summed_triage = s1
        .tenants
        .iter()
        .map(|t| t.triage_counters())
        .fold((0u64, 0u64, 0u64, 0u64), |acc, t| {
            (acc.0 + t.0, acc.1 + t.1, acc.2 + t.2, acc.3 + t.3)
        });
    assert_eq!(
        (
            s1.triage_escalations,
            s1.triage_suppressed_entries,
            s1.triage_replayed_entries,
            s1.triage_spilled_entries
        ),
        summed_triage,
        "triage shard merge drifted"
    );
    assert!(
        s1.triage_suppressed_entries > 0,
        "triage-enabled tenants must suppress benign traffic for the churn checks to bite"
    );
    assert_eq!(
        s1.entries_processed,
        (eu_log.len() + us_log.len() / 2) as u64
    );
    assert_eq!(s1.parse_errors, 1);
    assert!(s1.alerts > 0, "logs must alert for the comparison to bite");
    assert!(
        s1.runtime_updates.eviction > 0,
        "global budget install must register as runtime updates"
    );
    assert_eq!(s1.eviction_budget, Some(500));

    // Tenant departure: the eu tenant leaves mid-service. Its work must
    // stay in the aggregates (folded departed totals), exactly like the
    // hub's tenant-departure invariant.
    let eu_final = s1
        .tenants
        .iter()
        .find(|t| t.tenant == eu)
        .map(|t| (t.entries_processed(), t.alerts()))
        .unwrap();
    let reports = plane.leave(&eu).expect("eu was served");
    assert_eq!(reports.len(), 2);
    let s2 = plane.stats();
    assert_monotonic(&s1, &s2, "after leave");
    assert_eq!(s2.tenants.len(), 1);
    assert_eq!(
        s2.entries_processed, s1.entries_processed,
        "departed entries vanished from the aggregate"
    );
    assert_eq!(s2.alerts, s1.alerts, "departed alerts vanished");
    assert_eq!(
        s2.triage_suppressed_entries, s1.triage_suppressed_entries,
        "departed triage counters vanished from the aggregate"
    );
    assert_eq!(s2.triage_escalations, s1.triage_escalations);
    assert!(s2.entries_processed >= eu_final.0);
    assert!(s2.alerts >= eu_final.1);

    // More traffic for the surviving tenant keeps the counters rising.
    for entry in us_log.entries().iter().skip(us_log.len() / 2) {
        assert_eq!(plane.ingest(&us, entry.to_string()), IngestOutcome::Routed);
    }
    let _ = plane.drain(&us);
    let s3 = plane.stats();
    assert_monotonic(&s2, &s3, "after more traffic");
    assert_eq!(s3.entries_processed, (eu_log.len() + us_log.len()) as u64);

    // Full shutdown folds everything; nothing is lost.
    plane.shutdown();
    let s4 = plane.stats();
    assert_monotonic(&s3, &s4, "after shutdown");
    assert!(s4.tenants.is_empty());
    assert_eq!(s4.entries_processed, s3.entries_processed);
    assert_eq!(s4.alerts, s3.alerts);
    assert_eq!(s4.parse_errors, 1);

    // The JSON rendering reflects the same (monotonic) aggregates,
    // triage included.
    let json = s4.to_json();
    assert!(json.contains(&format!("\"entries_processed\":{}", s4.entries_processed)));
    assert!(json.contains("\"tenants\":[]"));
    assert!(json.contains(&format!(
        "\"triage\":{{\"escalations\":{},\"suppressed\":{},\"replayed\":{},\"spilled\":{}}}",
        s4.triage_escalations,
        s4.triage_suppressed_entries,
        s4.triage_replayed_entries,
        s4.triage_spilled_entries
    )));
}
