//! The service plane's headline invariant: **sharded isolation is
//! exact**.
//!
//! For every tenant and every shard, the alerts the plane produces on an
//! interleaved multi-transport stream — one tenant arriving over UDP
//! datagrams, one over a TCP socket, one from an in-process replay — are
//! bit-identical (combined + every member) to a standalone pipeline fed
//! only that shard's clients, across shard counts {1, 4} and eviction
//! {off, TTL+capacity}. Client-hash sharding (`shard_of`) is what makes
//! this hold: a client's whole session lands on one shard, so no
//! detector's per-client state ever splits.

use std::net::{TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use divscrape_detect::baselines::RateLimiter;
use divscrape_detect::{Arcane, EvictionConfig, Sentinel, TenantId};
use divscrape_ingest::{
    Replay, ReplayPace, SocketSource, SocketSourceConfig, UdpSource, UdpSourceConfig,
};
use divscrape_pipeline::{Adjudication, PipelineBuilder, PipelineReport};
use divscrape_service::{shard_of, PumpMode, ServicePlane, SourcePump};
use divscrape_traffic::{generate, LabelledLog, ScenarioConfig};
use std::io::Write;

struct TenantSpec {
    id: TenantId,
    seed: u64,
    compose: fn() -> PipelineBuilder,
}

fn specs() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            id: TenantId::new("alpha-udp"),
            seed: 81,
            compose: || {
                PipelineBuilder::new()
                    .detector(Sentinel::stock())
                    .detector(Arcane::stock())
                    .adjudication(Adjudication::k_of_n(1))
                    .chunk_capacity(257)
            },
        },
        TenantSpec {
            id: TenantId::new("bravo-tcp"),
            seed: 82,
            compose: || {
                PipelineBuilder::new()
                    .detector(Sentinel::stock())
                    .detector(Arcane::stock())
                    .adjudication(Adjudication::k_of_n(2))
                    .chunk_capacity(113)
            },
        },
        TenantSpec {
            id: TenantId::new("charlie-replay"),
            seed: 83,
            compose: || {
                PipelineBuilder::new()
                    .detector(Sentinel::stock())
                    .detector(RateLimiter::new(40))
                    .detector(Arcane::stock())
                    .adjudication(Adjudication::weighted(vec![1.0, 0.5, 1.0], 1.5))
            },
        },
    ]
}

fn configure(spec: &TenantSpec, eviction: Option<EvictionConfig>) -> PipelineBuilder {
    let mut builder = (spec.compose)().workers(2);
    if let Some(eviction) = eviction {
        builder = builder.eviction(eviction);
    }
    builder
}

/// The reference: a standalone pipeline over only the lines that
/// `shard_of` routes to shard `k`.
fn standalone_shard(
    spec: &TenantSpec,
    log: &LabelledLog,
    shards: usize,
    k: usize,
    eviction: Option<EvictionConfig>,
) -> PipelineReport {
    let mut pipeline = configure(spec, eviction).build().unwrap();
    for entry in log.entries() {
        if shard_of(&entry.to_string(), shards) == k {
            pipeline.push(entry.clone());
        }
    }
    pipeline.drain()
}

fn assert_identical(case: &str, got: &PipelineReport, want: &PipelineReport) {
    assert_eq!(
        got.combined.to_bools(),
        want.combined.to_bools(),
        "{case}: combined alerts diverged from the standalone pipeline"
    );
    assert_eq!(got.members.len(), want.members.len(), "{case}");
    for (g, w) in got.members.iter().zip(&want.members) {
        assert_eq!(g.name(), w.name(), "{case}");
        assert_eq!(
            g.to_bools(),
            w.to_bools(),
            "{case}: member {} diverged from the standalone pipeline",
            g.name()
        );
    }
}

#[test]
fn sharded_plane_is_bit_identical_to_standalone_pipelines_per_shard() {
    let specs = specs();
    let logs: Vec<LabelledLog> = specs
        .iter()
        .map(|s| generate(&ScenarioConfig::tiny(s.seed)).unwrap())
        .collect();
    let eviction = EvictionConfig::ttl(3_600).with_capacity(64);

    for shards in [1usize, 4] {
        for evict in [None, Some(eviction)] {
            let case_base = format!("shards={shards} eviction={}", evict.is_some());
            let mut builder = ServicePlane::builder().queue_depth(4096);
            for spec in &specs {
                let compose = spec.compose;
                builder = builder.tenant(spec.id.clone(), shards, move |_, _| {
                    let mut b = compose().workers(2);
                    if let Some(e) = evict {
                        b = b.eviction(e);
                    }
                    b
                });
            }
            let plane = builder.build().unwrap();

            // Leg 1 — UDP datagrams, lossy intake, one line per datagram.
            // Queue depths are deep and the sender paced, so nothing
            // drops and the equivalence comparison stays exact (the
            // lossy accounting itself is pinned by `udp_edge_cases`).
            let udp_source = UdpSource::bind_with(
                "127.0.0.1:0",
                UdpSourceConfig {
                    queue_depth: 8192,
                    ..Default::default()
                },
            )
            .unwrap();
            let udp_addr = udp_source.local_addr();
            let udp_pump = SourcePump::spawn(&plane, &specs[0].id, udp_source, PumpMode::Lossy);
            let udp_lines = logs[0].len() as u64;

            // Leg 2 — TCP socket source, blocking intake.
            let tcp_source = SocketSource::bind_with(
                "127.0.0.1:0",
                SocketSourceConfig {
                    queue_depth: 4096,
                    finish_on_disconnect: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let tcp_addr = tcp_source.local_addr();
            let tcp_pump = SourcePump::spawn(&plane, &specs[1].id, tcp_source, PumpMode::Blocking);

            // Leg 3 — in-process replay, blocking intake.
            let replay = Replay::from_entries(logs[2].entries(), ReplayPace::Unlimited);
            let replay_pump = SourcePump::spawn(&plane, &specs[2].id, replay, PumpMode::Blocking);

            // Feed the two network legs concurrently with the replay.
            let udp_payload: Vec<String> =
                logs[0].entries().iter().map(|e| e.to_string()).collect();
            let udp_feeder = std::thread::spawn(move || {
                let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
                for (i, line) in udp_payload.iter().enumerate() {
                    socket.send_to(line.as_bytes(), udp_addr).unwrap();
                    if i % 16 == 15 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            });
            let tcp_payload: Vec<String> =
                logs[1].entries().iter().map(|e| e.to_string()).collect();
            let tcp_feeder = std::thread::spawn(move || {
                let mut conn = TcpStream::connect(tcp_addr).unwrap();
                for line in &tcp_payload {
                    writeln!(conn, "{line}").unwrap();
                }
            });
            udp_feeder.join().unwrap();
            tcp_feeder.join().unwrap();

            // UDP has no EOF: wait until every datagram came through,
            // then stop the pump. The TCP and replay pumps finish on
            // their own.
            let deadline = Instant::now() + Duration::from_secs(60);
            while udp_pump.stats().lines < udp_lines {
                assert!(
                    Instant::now() < deadline,
                    "{case_base}: UDP leg delivered {}/{udp_lines}",
                    udp_pump.stats().lines
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            let udp_stats = udp_pump.stop();
            assert_eq!(udp_stats.lines, udp_lines, "{case_base}");
            assert_eq!(udp_stats.dropped, 0, "{case_base}: lossy path dropped");
            assert!(tcp_pump.wait(Duration::from_secs(60)), "{case_base}");
            let tcp_stats = tcp_pump.stop();
            assert_eq!(tcp_stats.lines, logs[1].len() as u64, "{case_base}");
            assert!(replay_pump.wait(Duration::from_secs(60)), "{case_base}");
            assert_eq!(replay_pump.stop().lines, logs[2].len() as u64);

            let plane_stats_pre = plane.stats();
            assert_eq!(plane_stats_pre.dropped_lines, 0, "{case_base}");
            assert_eq!(plane_stats_pre.unrouted_lines, 0, "{case_base}");

            for (spec, log) in specs.iter().zip(&logs) {
                let case = format!("{case_base} tenant={}", spec.id.as_str());
                let reports = plane.drain(&spec.id).unwrap();
                assert_eq!(reports.len(), shards, "{case}");
                let total: usize = reports.iter().map(|r| r.requests()).sum();
                assert_eq!(total, log.len(), "{case}: entry count");
                let mut tenant_alerts = 0u64;
                for (k, got) in reports.iter().enumerate() {
                    let shard_case = format!("{case} shard={k}");
                    let want = standalone_shard(spec, log, shards, k, evict);
                    assert_eq!(got.requests(), want.requests(), "{shard_case}: count");
                    assert_identical(&shard_case, got, &want);
                    tenant_alerts += want.combined.count();
                }
                assert!(
                    tenant_alerts > 0,
                    "{case}: reference must alert for the comparison to bite"
                );
            }
            assert_eq!(plane.stats().parse_errors, 0, "{case_base}");
        }
    }
}
