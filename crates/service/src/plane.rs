//! The [`ServicePlane`]: per-tenant sharded driver threads behind one
//! cloneable routing handle.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, RwLock};

use divscrape_detect::TenantId;
use divscrape_pipeline::{
    apportion_budget, BuildError, PipelineBuilder, PipelineReport, PipelineStats, RuntimeUpdates,
};

use crate::shard::{offer_line, send_line, shard_of, Offer, ShardHandle, ShardMsg};

/// Default per-shard queue depth (messages buffered between a source
/// pump and the shard driver).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Builds one shard's [`PipelineBuilder`] for a tenant. Called once per
/// shard with the shard index; the plane stamps the tenant id onto the
/// returned builder itself, so factories need not call
/// [`PipelineBuilder::tenant`].
pub type TenantFactory = dyn Fn(&TenantId, usize) -> PipelineBuilder + Send + Sync;

/// Why a [`ServicePlaneBuilder::build`] or [`ServicePlane::join`] call
/// failed.
#[derive(Debug)]
pub enum ServiceError {
    /// A shard's pipeline failed to build.
    Pipeline(BuildError),
    /// The tenant is already served by the plane.
    DuplicateTenant(TenantId),
    /// [`ServicePlane::join`] was called but the plane has no default
    /// tenant factory.
    NoFactory,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Pipeline(e) => write!(f, "shard pipeline build failed: {e}"),
            ServiceError::DuplicateTenant(id) => {
                write!(f, "tenant already joined: {}", id.as_str())
            }
            ServiceError::NoFactory => write!(f, "no default tenant factory configured"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<BuildError> for ServiceError {
    fn from(e: BuildError) -> Self {
        ServiceError::Pipeline(e)
    }
}

/// What became of one ingested line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Queued on the owning shard.
    Routed,
    /// The shard's queue was full and the lossy path dropped the line
    /// (only [`ServicePlane::offer`] / [`TenantIngress::offer`] drop).
    Dropped,
    /// No such tenant (or its shards already stopped); counted and
    /// discarded.
    UnknownTenant,
}

/// Counters shared between the plane handle and every ingress clone.
#[derive(Default)]
struct RoutingCounters {
    routed: AtomicU64,
    dropped: AtomicU64,
    unrouted: AtomicU64,
}

/// Totals carried over from tenants that have left, keeping the plane's
/// aggregate counters monotonic across membership churn (mirrors the
/// hub's departed-tenant folding).
#[derive(Default, Clone, Copy)]
struct Departed {
    entries: u64,
    alerts: u64,
    parse_errors: u64,
    updates: RuntimeUpdates,
    triage_escalations: u64,
    triage_suppressed: u64,
    triage_replayed: u64,
    triage_spilled: u64,
    drift_alarms: u64,
}

struct TenantRuntime {
    id: TenantId,
    shards: Vec<ShardHandle>,
    frozen: bool,
}

struct PlaneShared {
    registry: RwLock<Vec<TenantRuntime>>,
    default_factory: Option<Arc<TenantFactory>>,
    default_shards: usize,
    queue_depth: usize,
    budget: Mutex<Option<usize>>,
    routing: RoutingCounters,
    departed: Mutex<Departed>,
}

/// Configures and builds a [`ServicePlane`]. Obtained from
/// [`ServicePlane::builder`].
pub struct ServicePlaneBuilder {
    tenants: Vec<(TenantId, usize, Arc<TenantFactory>)>,
    default_factory: Option<Arc<TenantFactory>>,
    default_shards: usize,
    queue_depth: usize,
    budget: Option<usize>,
}

impl fmt::Debug for ServicePlaneBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServicePlaneBuilder")
            .field("tenants", &self.tenants.len())
            .field("default_shards", &self.default_shards)
            .field("queue_depth", &self.queue_depth)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl Default for ServicePlaneBuilder {
    fn default() -> Self {
        ServicePlaneBuilder {
            tenants: Vec::new(),
            default_factory: None,
            default_shards: 1,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            budget: None,
        }
    }
}

impl ServicePlaneBuilder {
    /// Registers a tenant with `shards` driver shards; `factory` builds
    /// each shard's pipeline (see [`TenantFactory`]). `shards` is
    /// clamped to at least 1.
    pub fn tenant(
        mut self,
        id: TenantId,
        shards: usize,
        factory: impl Fn(&TenantId, usize) -> PipelineBuilder + Send + Sync + 'static,
    ) -> Self {
        self.tenants.push((id, shards.max(1), Arc::new(factory)));
        self
    }

    /// Factory used when a tenant joins at runtime without one of its
    /// own ([`ServicePlane::join`], the admin `JOIN` command).
    pub fn default_factory(
        mut self,
        factory: impl Fn(&TenantId, usize) -> PipelineBuilder + Send + Sync + 'static,
    ) -> Self {
        self.default_factory = Some(Arc::new(factory));
        self
    }

    /// Shard count for tenants joining without an explicit count
    /// (default 1).
    pub fn default_shards(mut self, shards: usize) -> Self {
        self.default_shards = shards.max(1);
        self
    }

    /// Bounded per-shard queue depth, in messages (default
    /// [`DEFAULT_QUEUE_DEPTH`]). Blocking ingestion waits when a shard's
    /// queue is full; lossy ingestion drops and counts.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// One service-wide client-state budget, apportioned across every
    /// shard of every tenant by live-client share (re-apportioned on
    /// join/leave and by [`ServicePlane::set_eviction_budget`]).
    pub fn global_eviction_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Spawns every tenant's shard drivers and returns the plane handle.
    ///
    /// # Errors
    ///
    /// Fails when a tenant is registered twice or a shard pipeline does
    /// not build; already-spawned shards are stopped on the way out.
    pub fn build(self) -> Result<ServicePlane, ServiceError> {
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for (id, _, _) in &self.tenants {
            if seen.insert(id.as_str(), ()).is_some() {
                return Err(ServiceError::DuplicateTenant(id.clone()));
            }
        }
        let mut registry = Vec::with_capacity(self.tenants.len());
        for (id, shards, factory) in &self.tenants {
            match spawn_tenant(id, *shards, factory.as_ref(), self.queue_depth) {
                Ok(runtime) => registry.push(runtime),
                Err(e) => {
                    for runtime in registry {
                        for shard in runtime.shards {
                            let _ = shard.stop();
                        }
                    }
                    return Err(e);
                }
            }
        }
        let plane = ServicePlane {
            shared: Arc::new(PlaneShared {
                registry: RwLock::new(registry),
                default_factory: self.default_factory,
                default_shards: self.default_shards,
                queue_depth: self.queue_depth,
                budget: Mutex::new(self.budget),
                routing: RoutingCounters::default(),
                departed: Mutex::new(Departed::default()),
            }),
        };
        if self.budget.is_some() {
            plane.rebalance_eviction();
        }
        Ok(plane)
    }
}

fn spawn_tenant<F>(
    id: &TenantId,
    shards: usize,
    factory: &F,
    queue_depth: usize,
) -> Result<TenantRuntime, ServiceError>
where
    F: Fn(&TenantId, usize) -> PipelineBuilder + ?Sized,
{
    let mut handles = Vec::with_capacity(shards);
    for shard in 0..shards {
        let pipeline = factory(id, shard).tenant(id.clone()).build()?;
        handles.push(ShardHandle::spawn(pipeline, queue_depth));
    }
    Ok(TenantRuntime {
        id: id.clone(),
        shards: handles,
        frozen: false,
    })
}

/// A multi-tenant, sharded detection service: every tenant gets its own
/// driver thread per shard, so one tenant's stalled sink can fill only
/// its own bounded queues — it cannot delay another tenant's ingestion.
///
/// Built by [`ServicePlane::builder`]; the handle is cheap to clone and
/// every clone drives the same plane (source pumps, the admin endpoint
/// and the application share clones). Within a tenant, lines are routed
/// by [`shard_of`] so a client's whole session stays on one shard and
/// each shard's verdicts are bit-identical to a standalone pipeline over
/// that client subset (pinned by this repository's `service_equivalence`
/// test).
///
/// ```
/// use divscrape_detect::{Sentinel, TenantId};
/// use divscrape_pipeline::PipelineBuilder;
/// use divscrape_service::ServicePlane;
///
/// let shop = TenantId::new("shop");
/// let plane = ServicePlane::builder()
///     .tenant(shop.clone(), 2, |_, _| {
///         PipelineBuilder::new().detector(Sentinel::stock())
///     })
///     .build()
///     .map_err(|e| e.to_string())?;
///
/// let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
/// plane.ingest(&shop, line.to_owned());
/// let reports = plane.drain(&shop).expect("tenant is served");
/// assert_eq!(reports.len(), 2); // one report per shard
/// assert_eq!(reports.iter().map(|r| r.requests()).sum::<usize>(), 1);
/// # Ok::<(), String>(())
/// ```
#[derive(Clone)]
pub struct ServicePlane {
    shared: Arc<PlaneShared>,
}

impl fmt::Debug for ServicePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tenants = self.tenants();
        f.debug_struct("ServicePlane")
            .field("tenants", &tenants)
            .finish_non_exhaustive()
    }
}

impl ServicePlane {
    /// Starts configuring a plane.
    ///
    /// ```
    /// use divscrape_service::ServicePlane;
    /// let builder = ServicePlane::builder().default_shards(2);
    /// let plane = builder.build().map_err(|e| e.to_string())?;
    /// assert!(plane.tenants().is_empty());
    /// # Ok::<(), String>(())
    /// ```
    pub fn builder() -> ServicePlaneBuilder {
        ServicePlaneBuilder::default()
    }

    /// The tenants currently served, in registration order.
    ///
    /// ```
    /// use divscrape_service::ServicePlane;
    /// let plane = ServicePlane::builder().build().map_err(|e| e.to_string())?;
    /// assert!(plane.tenants().is_empty());
    /// # Ok::<(), String>(())
    /// ```
    pub fn tenants(&self) -> Vec<TenantId> {
        self.read_registry().iter().map(|t| t.id.clone()).collect()
    }

    /// Routes one raw line to `tenant`'s owning shard, **blocking** while
    /// that shard's queue is full (backpressure confined to the caller —
    /// use a per-tenant [`SourcePump`](crate::SourcePump) so it blocks
    /// only that tenant's pump thread).
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::{IngestOutcome, ServicePlane};
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 1, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
    /// assert_eq!(plane.ingest(&shop, line.to_owned()), IngestOutcome::Routed);
    /// let other = TenantId::new("nobody");
    /// assert_eq!(plane.ingest(&other, line.to_owned()), IngestOutcome::UnknownTenant);
    /// # Ok::<(), String>(())
    /// ```
    pub fn ingest(&self, tenant: &TenantId, line: String) -> IngestOutcome {
        match self.route(tenant, &line) {
            Some(tx) if send_line(&tx, line) => {
                self.shared.routing.routed.fetch_add(1, Ordering::Relaxed);
                IngestOutcome::Routed
            }
            // A routed-but-gone shard (tenant left mid-send) counts the
            // same as an unknown tenant: the line had no owner.
            _ => {
                self.shared.routing.unrouted.fetch_add(1, Ordering::Relaxed);
                IngestOutcome::UnknownTenant
            }
        }
    }

    /// Lossy twin of [`ingest`](Self::ingest): never blocks — when the
    /// owning shard's queue is full the line is dropped and counted
    /// (syslog semantics, the UDP intake path).
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::{IngestOutcome, ServicePlane};
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 1, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
    /// assert_eq!(plane.offer(&shop, line.to_owned()), IngestOutcome::Routed);
    /// # Ok::<(), String>(())
    /// ```
    pub fn offer(&self, tenant: &TenantId, line: String) -> IngestOutcome {
        match self.route(tenant, &line) {
            Some(tx) => match offer_line(&tx, line) {
                Offer::Accepted => {
                    self.shared.routing.routed.fetch_add(1, Ordering::Relaxed);
                    IngestOutcome::Routed
                }
                Offer::Full => {
                    self.shared.routing.dropped.fetch_add(1, Ordering::Relaxed);
                    IngestOutcome::Dropped
                }
                Offer::Gone => {
                    self.shared.routing.unrouted.fetch_add(1, Ordering::Relaxed);
                    IngestOutcome::UnknownTenant
                }
            },
            None => {
                self.shared.routing.unrouted.fetch_add(1, Ordering::Relaxed);
                IngestOutcome::UnknownTenant
            }
        }
    }

    /// A dedicated ingress handle for one tenant: shard senders resolved
    /// once, so per-line routing skips the registry. Returns `None` for
    /// an unknown tenant. If the tenant later leaves, sends through the
    /// stale handle report [`IngestOutcome::UnknownTenant`].
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::{IngestOutcome, ServicePlane};
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 2, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let ingress = plane.ingress(&shop).expect("tenant is served");
    /// let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
    /// assert_eq!(ingress.send(line.to_owned()), IngestOutcome::Routed);
    /// # Ok::<(), String>(())
    /// ```
    pub fn ingress(&self, tenant: &TenantId) -> Option<TenantIngress> {
        let registry = self.read_registry();
        let runtime = registry.iter().find(|t| &t.id == tenant)?;
        Some(TenantIngress {
            senders: runtime.shards.iter().map(|s| s.sender()).collect(),
            plane: self.clone(),
        })
    }

    fn route(&self, tenant: &TenantId, line: &str) -> Option<SyncSender<ShardMsg>> {
        let registry = self.read_registry();
        let runtime = registry.iter().find(|t| &t.id == tenant)?;
        let shard = shard_of(line, runtime.shards.len());
        Some(runtime.shards[shard].sender())
        // Lock dropped here — the (possibly blocking) send happens outside.
    }

    /// Adds a tenant at runtime using the plane's default factory and
    /// shard count; re-apportions the global eviction budget if one is
    /// set.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoFactory`] without a
    /// [`default_factory`](ServicePlaneBuilder::default_factory),
    /// [`ServiceError::DuplicateTenant`] when already served.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let plane = ServicePlane::builder()
    ///     .default_factory(|_, _| PipelineBuilder::new().detector(Sentinel::stock()))
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// plane.join(&TenantId::new("late"), None).map_err(|e| e.to_string())?;
    /// assert_eq!(plane.tenants().len(), 1);
    /// # Ok::<(), String>(())
    /// ```
    pub fn join(&self, tenant: &TenantId, shards: Option<usize>) -> Result<(), ServiceError> {
        let factory = self
            .shared
            .default_factory
            .clone()
            .ok_or(ServiceError::NoFactory)?;
        self.join_with(
            tenant,
            shards.unwrap_or(self.shared.default_shards),
            move |id, shard| factory(id, shard),
        )
    }

    /// Adds a tenant at runtime with its own pipeline factory.
    ///
    /// # Errors
    ///
    /// [`ServiceError::DuplicateTenant`] when already served;
    /// [`ServiceError::Pipeline`] when a shard pipeline fails to build.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let plane = ServicePlane::builder().build().map_err(|e| e.to_string())?;
    /// plane
    ///     .join_with(&TenantId::new("bespoke"), 2, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .map_err(|e| e.to_string())?;
    /// assert_eq!(plane.tenants().len(), 1);
    /// # Ok::<(), String>(())
    /// ```
    pub fn join_with(
        &self,
        tenant: &TenantId,
        shards: usize,
        factory: impl Fn(&TenantId, usize) -> PipelineBuilder + Send + Sync,
    ) -> Result<(), ServiceError> {
        if self.read_registry().iter().any(|t| &t.id == tenant) {
            return Err(ServiceError::DuplicateTenant(tenant.clone()));
        }
        // Build outside the write lock — pipeline spawning is slow.
        let runtime = spawn_tenant(tenant, shards.max(1), &factory, self.shared.queue_depth)?;
        {
            let mut registry = self.write_registry();
            if registry.iter().any(|t| &t.id == tenant) {
                // Raced with a concurrent join; discard ours.
                for shard in runtime.shards {
                    let _ = shard.stop();
                }
                return Err(ServiceError::DuplicateTenant(tenant.clone()));
            }
            registry.push(runtime);
        }
        self.rebalance_eviction();
        Ok(())
    }

    /// Removes a tenant: final-drains every shard, folds its lifetime
    /// counters into the plane's departed totals (aggregates stay
    /// monotonic) and returns the per-shard reports, in shard order.
    /// Returns `None` for an unknown tenant.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 2, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let reports = plane.leave(&shop).expect("tenant was served");
    /// assert_eq!(reports.len(), 2);
    /// assert!(plane.tenants().is_empty());
    /// # Ok::<(), String>(())
    /// ```
    pub fn leave(&self, tenant: &TenantId) -> Option<Vec<PipelineReport>> {
        let runtime = {
            let mut registry = self.write_registry();
            let at = registry.iter().position(|t| &t.id == tenant)?;
            registry.remove(at)
        };
        let mut reports = Vec::with_capacity(runtime.shards.len());
        let mut parting = Departed::default();
        for shard in runtime.shards {
            if let Some(fin) = shard.stop() {
                parting.entries += fin.stats.entries_processed;
                parting.alerts += fin.stats.alerts;
                parting.parse_errors += fin.parse_errors;
                parting.updates.eviction += fin.stats.runtime_updates.eviction;
                parting.updates.adjudication += fin.stats.runtime_updates.adjudication;
                parting.triage_escalations += fin.stats.triage_escalations;
                parting.triage_suppressed += fin.stats.triage_suppressed_entries;
                parting.triage_replayed += fin.stats.triage_replayed_entries;
                parting.triage_spilled += fin.stats.triage_spilled_entries;
                parting.drift_alarms += fin.stats.drift_alarms;
                reports.push(fin.report);
            }
        }
        {
            let mut departed = self.lock_departed();
            departed.entries += parting.entries;
            departed.alerts += parting.alerts;
            departed.parse_errors += parting.parse_errors;
            departed.updates.eviction += parting.updates.eviction;
            departed.updates.adjudication += parting.updates.adjudication;
            departed.triage_escalations += parting.triage_escalations;
            departed.triage_suppressed += parting.triage_suppressed;
            departed.triage_replayed += parting.triage_replayed;
            departed.triage_spilled += parting.triage_spilled;
            departed.drift_alarms += parting.drift_alarms;
        }
        self.rebalance_eviction();
        Some(reports)
    }

    /// Freezes (`true`) or thaws (`false`) online recalibration on every
    /// shard of `tenant`. Returns whether the tenant is served. The
    /// freeze rides the shard queues, so it lands *after* any lines
    /// already queued — ordered like traffic.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 1, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// assert!(plane.set_frozen(&shop, true));
    /// assert!(plane.stats().tenants[0].frozen);
    /// # Ok::<(), String>(())
    /// ```
    pub fn set_frozen(&self, tenant: &TenantId, frozen: bool) -> bool {
        let senders: Vec<_> = {
            let mut registry = self.write_registry();
            match registry.iter_mut().find(|t| &t.id == tenant) {
                Some(runtime) => {
                    runtime.frozen = frozen;
                    runtime.shards.iter().map(|s| s.sender()).collect()
                }
                None => return false,
            }
        };
        for tx in senders {
            let _ = tx.send(ShardMsg::Freeze(frozen));
        }
        true
    }

    /// Installs a service-wide client-state budget and apportions it
    /// across every shard of every tenant — floors of one client per
    /// worker replica, the remainder by live-client share (the same
    /// [`apportion_budget`] arithmetic the hub uses). Returns the
    /// per-tenant allotments, in registration order. Budget installs
    /// ride the shard queues (fire-and-forget), so a stalled shard
    /// applies its allotment when it next drains its queue.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 2, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock()).workers(2)
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let allotments = plane.set_eviction_budget(100);
    /// assert_eq!(allotments.len(), 1);
    /// assert_eq!(allotments[0].1, 100); // whole budget to the only tenant
    /// assert_eq!(plane.stats().eviction_budget, Some(100));
    /// # Ok::<(), String>(())
    /// ```
    pub fn set_eviction_budget(&self, budget: usize) -> Vec<(TenantId, usize)> {
        *self
            .shared
            .budget
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(budget);
        self.rebalance_eviction()
    }

    /// Re-apportions the currently installed budget (no-op without one).
    /// Called automatically on join/leave; call it periodically to track
    /// shifting live-client shares. Returns per-tenant allotments.
    pub fn rebalance_eviction(&self) -> Vec<(TenantId, usize)> {
        let budget = match *self
            .shared
            .budget
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
        {
            Some(budget) => budget,
            None => return Vec::new(),
        };
        // Snapshot (sender, floor, share) per shard without holding the
        // lock across any send.
        let mut senders = Vec::new();
        let mut floors = Vec::new();
        let mut shares = Vec::new();
        let mut owners = Vec::new();
        {
            let registry = self.read_registry();
            for (slot, runtime) in registry.iter().enumerate() {
                for shard in &runtime.shards {
                    let (stats, _) = shard.published();
                    senders.push(shard.sender());
                    floors.push(shard.worker_count());
                    shares.push(stats.live_clients_aggregate);
                    owners.push((slot, runtime.id.clone()));
                }
            }
        }
        if senders.is_empty() {
            return Vec::new();
        }
        let allotments = apportion_budget(budget, &floors, &shares);
        let mut per_tenant: Vec<(TenantId, usize)> = Vec::new();
        for ((tx, allotment), (slot, id)) in senders.iter().zip(&allotments).zip(&owners) {
            let _ = tx.send(ShardMsg::Budget(*allotment));
            if per_tenant.len() <= *slot {
                per_tenant.push((id.clone(), 0));
            }
            per_tenant[*slot].1 += *allotment;
        }
        per_tenant
    }

    /// Flushes every shard of `tenant` and returns the per-shard
    /// [`PipelineReport`]s, in shard order ([`shard_of`] index). Returns
    /// `None` for an unknown tenant. Blocks until every shard has
    /// drained — queued lines are processed first.
    pub fn drain(&self, tenant: &TenantId) -> Option<Vec<PipelineReport>> {
        let senders: Vec<_> = {
            let registry = self.read_registry();
            let runtime = registry.iter().find(|t| &t.id == tenant)?;
            runtime.shards.iter().map(|s| s.sender()).collect()
        };
        Some(drain_shards(&senders))
    }

    /// Flushes every tenant and returns `(tenant, per-shard reports)`
    /// pairs in registration order. All shards drain concurrently.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let plane = ServicePlane::builder()
    ///     .tenant(TenantId::new("a"), 1, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .tenant(TenantId::new("b"), 2, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let all = plane.drain_all();
    /// assert_eq!(all.len(), 2);
    /// assert_eq!(all[1].1.len(), 2);
    /// # Ok::<(), String>(())
    /// ```
    pub fn drain_all(&self) -> Vec<(TenantId, Vec<PipelineReport>)> {
        let plan: Vec<(TenantId, Vec<SyncSender<ShardMsg>>)> = {
            let registry = self.read_registry();
            registry
                .iter()
                .map(|t| (t.id.clone(), t.shards.iter().map(|s| s.sender()).collect()))
                .collect()
        };
        plan.into_iter()
            .map(|(id, senders)| (id, drain_shards(&senders)))
            .collect()
    }

    /// Removes every tenant (final drain, departed totals folded). The
    /// aggregate counters in [`stats`](Self::stats) survive — shutdown
    /// folds everything into the departed totals.
    pub fn shutdown(&self) {
        for tenant in self.tenants() {
            let _ = self.leave(&tenant);
        }
    }

    /// A point-in-time snapshot of the whole plane: per-tenant per-shard
    /// pipeline counters plus monotonic aggregates. Reads each shard's
    /// last *published* snapshot — never the pipeline itself — so a
    /// stalled shard yields stale numbers instead of blocking the call.
    ///
    /// ```
    /// use divscrape_detect::{Sentinel, TenantId};
    /// use divscrape_pipeline::PipelineBuilder;
    /// use divscrape_service::ServicePlane;
    ///
    /// let shop = TenantId::new("shop");
    /// let plane = ServicePlane::builder()
    ///     .tenant(shop.clone(), 2, |_, _| {
    ///         PipelineBuilder::new().detector(Sentinel::stock())
    ///     })
    ///     .build()
    ///     .map_err(|e| e.to_string())?;
    /// let stats = plane.stats();
    /// assert_eq!(stats.tenants.len(), 1);
    /// assert_eq!(stats.tenants[0].shards.len(), 2);
    /// assert_eq!(stats.entries_processed, 0);
    /// # Ok::<(), String>(())
    /// ```
    pub fn stats(&self) -> ServiceStats {
        let mut tenants = Vec::new();
        {
            let registry = self.read_registry();
            for runtime in registry.iter() {
                let mut shards = Vec::with_capacity(runtime.shards.len());
                let mut parse_errors = 0u64;
                for shard in &runtime.shards {
                    let (stats, errors) = shard.published();
                    parse_errors += errors;
                    shards.push(stats);
                }
                tenants.push(TenantShardStats {
                    tenant: runtime.id.clone(),
                    frozen: runtime.frozen,
                    parse_errors,
                    shards,
                });
            }
        }
        let departed = *self.lock_departed();
        let live = |f: &dyn Fn(&PipelineStats) -> u64| -> u64 {
            tenants.iter().flat_map(|t| t.shards.iter()).map(f).sum()
        };
        ServiceStats {
            entries_processed: departed.entries + live(&|s| s.entries_processed),
            entries_pending: tenants
                .iter()
                .flat_map(|t| t.shards.iter())
                .map(|s| s.entries_pending)
                .sum(),
            alerts: departed.alerts + live(&|s| s.alerts),
            inflight_chunks: tenants
                .iter()
                .flat_map(|t| t.shards.iter())
                .map(|s| s.inflight_chunks)
                .sum(),
            live_clients_aggregate: tenants
                .iter()
                .flat_map(|t| t.shards.iter())
                .map(|s| s.live_clients_aggregate)
                .sum(),
            runtime_updates: RuntimeUpdates {
                eviction: departed.updates.eviction + live(&|s| s.runtime_updates.eviction),
                adjudication: departed.updates.adjudication
                    + live(&|s| s.runtime_updates.adjudication),
            },
            parse_errors: departed.parse_errors
                + tenants.iter().map(|t| t.parse_errors).sum::<u64>(),
            triage_escalations: departed.triage_escalations + live(&|s| s.triage_escalations),
            triage_suppressed_entries: departed.triage_suppressed
                + live(&|s| s.triage_suppressed_entries),
            triage_replayed_entries: departed.triage_replayed
                + live(&|s| s.triage_replayed_entries),
            triage_spilled_entries: departed.triage_spilled + live(&|s| s.triage_spilled_entries),
            drift_alarms: departed.drift_alarms + live(&|s| s.drift_alarms),
            routed_lines: self.shared.routing.routed.load(Ordering::Relaxed),
            dropped_lines: self.shared.routing.dropped.load(Ordering::Relaxed),
            unrouted_lines: self.shared.routing.unrouted.load(Ordering::Relaxed),
            eviction_budget: *self
                .shared
                .budget
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
            tenants,
        }
    }

    fn read_registry(&self) -> std::sync::RwLockReadGuard<'_, Vec<TenantRuntime>> {
        self.shared
            .registry
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_registry(&self) -> std::sync::RwLockWriteGuard<'_, Vec<TenantRuntime>> {
        self.shared
            .registry
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_departed(&self) -> std::sync::MutexGuard<'_, Departed> {
        self.shared
            .departed
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

fn drain_shards(senders: &[SyncSender<ShardMsg>]) -> Vec<PipelineReport> {
    // Kick every shard first so they drain concurrently, then collect.
    let replies: Vec<_> = senders
        .iter()
        .map(|tx| {
            let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
            let sent = tx.send(ShardMsg::Drain(reply_tx)).is_ok();
            (sent, reply_rx)
        })
        .collect();
    replies
        .into_iter()
        .filter_map(|(sent, rx)| if sent { rx.recv().ok() } else { None })
        .collect()
}

/// A per-tenant ingress handle: shard routing resolved once (see
/// [`ServicePlane::ingress`]). Clones share the plane's routing
/// counters.
#[derive(Clone)]
pub struct TenantIngress {
    senders: Vec<SyncSender<ShardMsg>>,
    plane: ServicePlane,
}

impl fmt::Debug for TenantIngress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantIngress")
            .field("shards", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl TenantIngress {
    /// Blocking routed send — see [`ServicePlane::ingest`].
    pub fn send(&self, line: String) -> IngestOutcome {
        let shard = shard_of(&line, self.senders.len());
        if send_line(&self.senders[shard], line) {
            self.plane
                .shared
                .routing
                .routed
                .fetch_add(1, Ordering::Relaxed);
            IngestOutcome::Routed
        } else {
            self.plane
                .shared
                .routing
                .unrouted
                .fetch_add(1, Ordering::Relaxed);
            IngestOutcome::UnknownTenant
        }
    }

    /// Lossy send — see [`ServicePlane::offer`].
    pub fn offer(&self, line: String) -> IngestOutcome {
        let shard = shard_of(&line, self.senders.len());
        match offer_line(&self.senders[shard], line) {
            Offer::Accepted => {
                self.plane
                    .shared
                    .routing
                    .routed
                    .fetch_add(1, Ordering::Relaxed);
                IngestOutcome::Routed
            }
            Offer::Full => {
                self.plane
                    .shared
                    .routing
                    .dropped
                    .fetch_add(1, Ordering::Relaxed);
                IngestOutcome::Dropped
            }
            Offer::Gone => {
                self.plane
                    .shared
                    .routing
                    .unrouted
                    .fetch_add(1, Ordering::Relaxed);
                IngestOutcome::UnknownTenant
            }
        }
    }
}

/// One tenant's slice of a [`ServiceStats`] snapshot: the per-shard
/// pipeline counters plus tenant-level tallies.
#[derive(Debug, Clone)]
pub struct TenantShardStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Whether recalibration is administratively frozen
    /// ([`ServicePlane::set_frozen`]).
    pub frozen: bool,
    /// Lines that reached this tenant's shards but failed CLF parsing.
    pub parse_errors: u64,
    /// Per-shard pipeline counters, in [`shard_of`] index order.
    pub shards: Vec<PipelineStats>,
}

impl TenantShardStats {
    /// Entries finalized across this tenant's shards.
    pub fn entries_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.entries_processed).sum()
    }

    /// Adjudicated alerts raised across this tenant's shards.
    pub fn alerts(&self) -> u64 {
        self.shards.iter().map(|s| s.alerts).sum()
    }

    /// Client-state footprint summed across this tenant's shards.
    pub fn live_clients(&self) -> usize {
        self.shards.iter().map(|s| s.live_clients_aggregate).sum()
    }

    /// Triage counters summed across this tenant's shards, as
    /// `(escalations, suppressed, replayed, spilled)` — all zero for a
    /// tenant whose pipelines run without a triage stage.
    pub fn triage_counters(&self) -> (u64, u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.triage_escalations,
                acc.1 + s.triage_suppressed_entries,
                acc.2 + s.triage_replayed_entries,
                acc.3 + s.triage_spilled_entries,
            )
        })
    }
}

/// A point-in-time snapshot of a [`ServicePlane`]. The `entries_processed`,
/// `alerts`, `runtime_updates` and `parse_errors` aggregates include
/// tenants that have since left — monotonic across membership churn,
/// like [`HubStats`](divscrape_pipeline::HubStats).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Per-tenant, per-shard counters in registration order.
    pub tenants: Vec<TenantShardStats>,
    /// Entries finalized across all shards of all tenants, departed
    /// tenants included — monotonic.
    pub entries_processed: u64,
    /// Entries accepted but not yet finalized, across current tenants.
    pub entries_pending: usize,
    /// Adjudicated alerts raised, departed tenants included — monotonic.
    pub alerts: u64,
    /// Chunks in flight across every shard's worker pool.
    pub inflight_chunks: usize,
    /// Service-wide client-state footprint (sum of every shard's
    /// aggregate).
    pub live_clients_aggregate: usize,
    /// Runtime reconfiguration applied across the plane, departed
    /// tenants included — monotonic.
    pub runtime_updates: RuntimeUpdates,
    /// Lines rejected by CLF parsing, departed tenants included.
    pub parse_errors: u64,
    /// Clients escalated by triage filters across the plane, departed
    /// tenants included — monotonic (zero when no tenant runs triage).
    pub triage_escalations: u64,
    /// Entries suppressed by triage stages across the plane, departed
    /// tenants included — monotonic.
    pub triage_suppressed_entries: u64,
    /// Suppressed entries replayed through the detectors across the
    /// plane, departed tenants included — monotonic.
    pub triage_replayed_entries: u64,
    /// Suppressed entries spilled under replay-buffer caps across the
    /// plane, departed tenants included — monotonic.
    pub triage_spilled_entries: u64,
    /// Drift alarms raised by tenant recalibrators across the plane,
    /// departed tenants included — monotonic (zero when no tenant runs
    /// recalibration). See
    /// [`PipelineStats::drift_alarms`](divscrape_pipeline::PipelineStats::drift_alarms).
    pub drift_alarms: u64,
    /// Lines accepted onto a shard queue.
    pub routed_lines: u64,
    /// Lines dropped by the lossy path because the owning shard's queue
    /// was full.
    pub dropped_lines: u64,
    /// Lines for tenants the plane does not serve.
    pub unrouted_lines: u64,
    /// The installed service-wide client budget, if any.
    pub eviction_budget: Option<usize>,
}

impl ServiceStats {
    /// Renders the snapshot as one JSON object on a single line — the
    /// admin endpoint's `STATS` reply.
    ///
    /// ```
    /// use divscrape_service::ServiceStats;
    ///
    /// let json = ServiceStats::default().to_json();
    /// assert!(json.starts_with('{') && json.ends_with('}'));
    /// assert!(json.contains("\"entries_processed\":0"));
    /// assert!(!json.contains('\n'));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.tenants.len() * 160);
        out.push('{');
        push_field(&mut out, "entries_processed", self.entries_processed);
        out.push(',');
        push_field(&mut out, "entries_pending", self.entries_pending as u64);
        out.push(',');
        push_field(&mut out, "alerts", self.alerts);
        out.push(',');
        push_field(&mut out, "inflight_chunks", self.inflight_chunks as u64);
        out.push(',');
        push_field(
            &mut out,
            "live_clients_aggregate",
            self.live_clients_aggregate as u64,
        );
        out.push(',');
        push_field(&mut out, "parse_errors", self.parse_errors);
        out.push(',');
        push_field(&mut out, "routed_lines", self.routed_lines);
        out.push(',');
        push_field(&mut out, "dropped_lines", self.dropped_lines);
        out.push(',');
        push_field(&mut out, "unrouted_lines", self.unrouted_lines);
        out.push_str(",\"eviction_budget\":");
        match self.eviction_budget {
            Some(budget) => out.push_str(&budget.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"runtime_updates\":{");
        push_field(&mut out, "eviction", self.runtime_updates.eviction);
        out.push(',');
        push_field(&mut out, "adjudication", self.runtime_updates.adjudication);
        out.push_str("},\"triage\":{");
        push_field(&mut out, "escalations", self.triage_escalations);
        out.push(',');
        push_field(&mut out, "suppressed", self.triage_suppressed_entries);
        out.push(',');
        push_field(&mut out, "replayed", self.triage_replayed_entries);
        out.push(',');
        push_field(&mut out, "spilled", self.triage_spilled_entries);
        out.push_str("},");
        push_field(&mut out, "drift_alarms", self.drift_alarms);
        out.push_str(",\"tenants\":[");
        for (i, tenant) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            push_json_string(&mut out, tenant.tenant.as_str());
            out.push(',');
            push_field(&mut out, "shards", tenant.shards.len() as u64);
            out.push(',');
            push_field(&mut out, "entries_processed", tenant.entries_processed());
            out.push(',');
            push_field(&mut out, "alerts", tenant.alerts());
            out.push(',');
            push_field(&mut out, "live_clients", tenant.live_clients() as u64);
            out.push(',');
            push_field(&mut out, "parse_errors", tenant.parse_errors);
            let (escalations, suppressed, replayed, spilled) = tenant.triage_counters();
            out.push_str(",\"triage\":{");
            push_field(&mut out, "escalations", escalations);
            out.push(',');
            push_field(&mut out, "suppressed", suppressed);
            out.push(',');
            push_field(&mut out, "replayed", replayed);
            out.push(',');
            push_field(&mut out, "spilled", spilled);
            out.push_str("},\"frozen\":");
            out.push_str(if tenant.frozen { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_field(out: &mut String, name: &str, value: u64) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Drop for PlaneShared {
    fn drop(&mut self) {
        let registry = self
            .registry
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for runtime in registry.drain(..) {
            for shard in runtime.shards {
                let _ = shard.stop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_detect::Sentinel;
    use divscrape_pipeline::Adjudication;

    fn factory(_: &TenantId, _: usize) -> PipelineBuilder {
        PipelineBuilder::new()
            .detector(Sentinel::stock())
            .adjudication(Adjudication::k_of_n(1))
    }

    fn clf(ip: &str, seq: u32) -> String {
        format!(
            "{ip} - - [11/Mar/2018:00:00:{:02} +0000] \"GET /item/{seq} HTTP/1.1\" 200 12 \"-\" \"curl/7.58.0\"",
            seq % 60
        )
    }

    #[test]
    fn routed_lines_land_and_drain_across_shards() {
        let shop = TenantId::new("shop");
        let plane = ServicePlane::builder()
            .tenant(shop.clone(), 4, factory)
            .build()
            .expect("plane builds");
        for i in 0..40 {
            let line = clf(&format!("10.0.{}.{}", i % 5, i % 7 + 1), i);
            assert_eq!(plane.ingest(&shop, line), IngestOutcome::Routed);
        }
        let reports = plane.drain(&shop).expect("served");
        assert_eq!(reports.len(), 4);
        let total: usize = reports.iter().map(|r| r.requests()).sum();
        assert_eq!(total, 40);
        let stats = plane.stats();
        assert_eq!(stats.routed_lines, 40);
        assert_eq!(stats.entries_processed, 40);
        assert_eq!(stats.parse_errors, 0);
    }

    #[test]
    fn unknown_tenant_is_counted_not_fatal() {
        let plane = ServicePlane::builder().build().expect("plane builds");
        let ghost = TenantId::new("ghost");
        assert_eq!(
            plane.ingest(&ghost, clf("10.0.0.1", 0)),
            IngestOutcome::UnknownTenant
        );
        assert_eq!(plane.stats().unrouted_lines, 1);
    }

    #[test]
    fn parse_errors_are_counted_per_tenant() {
        let shop = TenantId::new("shop");
        let plane = ServicePlane::builder()
            .tenant(shop.clone(), 1, factory)
            .build()
            .expect("plane builds");
        plane.ingest(&shop, "not a log line".to_owned());
        plane.ingest(&shop, clf("10.0.0.1", 1));
        let _ = plane.drain(&shop);
        let stats = plane.stats();
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(stats.tenants[0].parse_errors, 1);
        assert_eq!(stats.entries_processed, 1);
    }

    #[test]
    fn join_leave_round_trip_folds_departed_totals() {
        let plane = ServicePlane::builder()
            .default_factory(factory)
            .default_shards(2)
            .build()
            .expect("plane builds");
        let late = TenantId::new("late");
        plane.join(&late, None).expect("join");
        assert!(matches!(
            plane.join(&late, None),
            Err(ServiceError::DuplicateTenant(_))
        ));
        for i in 0..30 {
            plane.ingest(&late, clf(&format!("10.1.0.{}", i % 6 + 1), i));
        }
        let reports = plane.leave(&late).expect("served");
        assert_eq!(reports.len(), 2);
        assert_eq!(reports.iter().map(|r| r.requests()).sum::<usize>(), 30);
        let stats = plane.stats();
        assert!(stats.tenants.is_empty());
        assert_eq!(stats.entries_processed, 30, "departed totals folded");
        assert!(plane.leave(&late).is_none());
    }

    #[test]
    fn stats_json_is_well_formed_enough_to_round_trip_fields() {
        let shop = TenantId::new("shop \"quoted\"");
        let plane = ServicePlane::builder()
            .tenant(shop.clone(), 1, factory)
            .build()
            .expect("plane builds");
        let json = plane.stats().to_json();
        assert!(json.contains("\"tenant\":\"shop \\\"quoted\\\"\""));
        assert!(json.contains("\"eviction_budget\":null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
