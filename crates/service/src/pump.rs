//! [`SourcePump`]: a per-tenant thread feeding one [`LogSource`] into
//! the plane.
//!
//! The pump is where the plane's isolation story meets the sources: a
//! blocking pump absorbs backpressure from its own tenant's full shard
//! queues on its own thread, so a TCP or replay feed slows down instead
//! of losing lines — while a *lossy* pump (the UDP/syslog path) drops
//! and counts. Either way, no other tenant's intake is involved.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use divscrape_detect::TenantId;
use divscrape_ingest::{LogSource, SourceEvent};

use crate::plane::{IngestOutcome, ServicePlane};

/// How long the pump waits in each [`LogSource::poll`] before checking
/// its stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Whether a [`SourcePump`] blocks or drops when the owning shard's
/// queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpMode {
    /// Wait for queue space ([`ServicePlane::ingest`]) — lossless feeds:
    /// TCP sources, replays, file tails.
    Blocking,
    /// Drop the line and count it ([`ServicePlane::offer`]) — lossy
    /// feeds: UDP/syslog intake, where the datagram was already
    /// fire-and-forget.
    Lossy,
}

#[derive(Default)]
struct PumpCounters {
    lines: AtomicU64,
    truncated: AtomicU64,
    dropped: AtomicU64,
    unrouted: AtomicU64,
    errors: AtomicU64,
    done: AtomicBool,
}

/// A snapshot of one pump's counters ([`SourcePump::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Lines pulled from the source.
    pub lines: u64,
    /// Oversized lines the source discarded
    /// ([`SourceEvent::Truncated`]).
    pub truncated: u64,
    /// Lines dropped by a [`PumpMode::Lossy`] pump because the shard
    /// queue was full.
    pub dropped: u64,
    /// Lines discarded because the tenant is no longer served.
    pub unrouted: u64,
    /// Unrecoverable source errors (the pump exits on the first).
    pub errors: u64,
    /// Whether the pump thread has exited (EOF, error or
    /// [`SourcePump::stop`]).
    pub done: bool,
}

/// A thread pumping one [`LogSource`] into one tenant of a
/// [`ServicePlane`] — see the module docs for the isolation rationale.
///
/// ```
/// use divscrape_detect::{Sentinel, TenantId};
/// use divscrape_ingest::{Replay, ReplayPace};
/// use divscrape_pipeline::PipelineBuilder;
/// use divscrape_service::{PumpMode, ServicePlane, SourcePump};
/// use std::time::Duration;
///
/// let shop = TenantId::new("shop");
/// let plane = ServicePlane::builder()
///     .tenant(shop.clone(), 2, |_, _| {
///         PipelineBuilder::new().detector(Sentinel::stock())
///     })
///     .build()
///     .map_err(|e| e.to_string())?;
///
/// let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
/// let source = Replay::from_lines(vec![line.to_owned()], ReplayPace::Unlimited);
/// let pump = SourcePump::spawn(&plane, &shop, source, PumpMode::Blocking);
/// assert!(pump.wait(Duration::from_secs(10)), "replay finishes");
/// let stats = pump.stop();
/// assert_eq!(stats.lines, 1);
/// assert_eq!(plane.drain(&shop).unwrap().iter().map(|r| r.requests()).sum::<usize>(), 1);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct SourcePump {
    thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    counters: Arc<PumpCounters>,
}

impl std::fmt::Debug for PumpCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PumpCounters")
            .field("lines", &self.lines.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl SourcePump {
    /// Spawns the pump thread. The pump runs until the source reports
    /// [`SourceEvent::Eof`], fails, or [`stop`](Self::stop) is called.
    pub fn spawn<S>(
        plane: &ServicePlane,
        tenant: &TenantId,
        source: S,
        mode: PumpMode,
    ) -> SourcePump
    where
        S: LogSource + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(PumpCounters::default());
        let thread = {
            let plane = plane.clone();
            let tenant = tenant.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            thread::Builder::new()
                .name("divscrape-pump".into())
                .spawn(move || run_pump(plane, tenant, source, mode, stop, counters))
                .expect("spawn source pump")
        };
        SourcePump {
            thread: Some(thread),
            stop,
            counters,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PumpStats {
        PumpStats {
            lines: self.counters.lines.load(Ordering::Relaxed),
            truncated: self.counters.truncated.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            unrouted: self.counters.unrouted.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            done: self.counters.done.load(Ordering::Acquire),
        }
    }

    /// Whether the pump thread has exited on its own (source EOF or
    /// error).
    pub fn is_done(&self) -> bool {
        self.counters.done.load(Ordering::Acquire)
    }

    /// Waits up to `timeout` for the pump to finish on its own; `true`
    /// when it did.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.is_done() {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }

    /// Signals the pump to stop, joins its thread and returns the final
    /// counters.
    pub fn stop(mut self) -> PumpStats {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.stats()
    }
}

impl Drop for SourcePump {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run_pump<S: LogSource>(
    plane: ServicePlane,
    tenant: TenantId,
    mut source: S,
    mode: PumpMode,
    stop: Arc<AtomicBool>,
    counters: Arc<PumpCounters>,
) {
    while !stop.load(Ordering::Acquire) {
        match source.poll(POLL) {
            Ok(SourceEvent::Line(line)) => {
                counters.lines.fetch_add(1, Ordering::Relaxed);
                let outcome = match mode {
                    PumpMode::Blocking => plane.ingest(&tenant, line),
                    PumpMode::Lossy => plane.offer(&tenant, line),
                };
                match outcome {
                    IngestOutcome::Routed => {}
                    IngestOutcome::Dropped => {
                        counters.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    IngestOutcome::UnknownTenant => {
                        counters.unrouted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Ok(SourceEvent::Truncated { .. }) => {
                counters.truncated.fetch_add(1, Ordering::Relaxed);
            }
            Ok(SourceEvent::Idle) => {}
            Ok(SourceEvent::Eof) => break,
            Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    counters.done.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_detect::Sentinel;
    use divscrape_ingest::{Replay, ReplayPace};
    use divscrape_pipeline::{Adjudication, PipelineBuilder};

    fn factory(_: &TenantId, _: usize) -> PipelineBuilder {
        PipelineBuilder::new()
            .detector(Sentinel::stock())
            .adjudication(Adjudication::k_of_n(1))
    }

    #[test]
    fn replay_pump_feeds_all_lines_and_reports_done() {
        let shop = TenantId::new("shop");
        let plane = ServicePlane::builder()
            .tenant(shop.clone(), 2, factory)
            .build()
            .expect("plane builds");
        let lines: Vec<String> = (0..25)
            .map(|i| {
                format!(
                    "10.2.0.{} - - [11/Mar/2018:00:00:{:02} +0000] \"GET /p/{i} HTTP/1.1\" 200 9 \"-\" \"curl/7.58.0\"",
                    i % 9 + 1,
                    i % 60
                )
            })
            .collect();
        let pump = SourcePump::spawn(
            &plane,
            &shop,
            Replay::from_lines(lines, ReplayPace::Unlimited),
            PumpMode::Blocking,
        );
        assert!(pump.wait(Duration::from_secs(10)));
        let stats = pump.stop();
        assert_eq!(stats.lines, 25);
        assert_eq!(stats.dropped + stats.unrouted + stats.errors, 0);
        let total: usize = plane
            .drain(&shop)
            .expect("served")
            .iter()
            .map(|r| r.requests())
            .sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn pump_for_unknown_tenant_counts_unrouted() {
        let plane = ServicePlane::builder().build().expect("plane builds");
        let ghost = TenantId::new("ghost");
        let line = "10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 5 \"-\" \"x\"";
        let pump = SourcePump::spawn(
            &plane,
            &ghost,
            Replay::from_lines(vec![line.to_owned()], ReplayPace::Unlimited),
            PumpMode::Lossy,
        );
        assert!(pump.wait(Duration::from_secs(10)));
        assert_eq!(pump.stop().unrouted, 1);
    }
}
