//! Client-hash sharding and the per-shard driver thread.
//!
//! A tenant's traffic is split across `n` shards by [`shard_of`], a pure
//! function of the line's client identity (source address + user agent).
//! Every stock detector keys its state per client, so pinning a client to
//! one shard preserves run affinity: the shard sees the client's complete
//! request sequence and its verdicts are bit-identical to a standalone
//! pipeline fed only that shard's clients.

use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use divscrape_pipeline::{Pipeline, PipelineReport, PipelineStats};

/// How long a shard driver waits for input before ticking (publishing
/// stats, observing shutdown).
const TICK: Duration = Duration::from_millis(25);

/// Lines between stats publications while input is flowing.
const PUBLISH_EVERY: u64 = 256;

/// Picks the shard that owns a log line, by hashing the line's client
/// identity — the source address (first CLF token) and the user agent
/// (last quoted CLF field) — with FNV-1a.
///
/// The function is pure: equal `(address, user-agent)` pairs always map
/// to the same shard, so a client's whole session lands on one shard and
/// per-client detector state never splits. Malformed lines still map
/// deterministically — whichever shard receives one rejects it in CLF
/// parsing and counts a parse error.
///
/// ```
/// use divscrape_service::shard_of;
///
/// let line = r#"10.0.0.9 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
/// let shard = shard_of(line, 4);
/// assert!(shard < 4);
/// // Same client, different request: same shard.
/// let later = line.replace("GET /", "GET /checkout");
/// assert_eq!(shard_of(&later, 4), shard);
/// // One shard is no sharding at all.
/// assert_eq!(shard_of(line, 1), 0);
/// ```
pub fn shard_of(line: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let bytes = line.as_bytes();
    let addr_end = bytes.iter().position(|&b| b == b' ').unwrap_or(bytes.len());
    let addr = &bytes[..addr_end];
    // The user agent is the last quoted CLF field; hash whatever sits
    // between the final quote pair (empty when the line has no quotes).
    let agent = match line.rfind('"') {
        Some(close) if close > 0 => match line[..close].rfind('"') {
            Some(open) => &bytes[open + 1..close],
            None => &[][..],
        },
        _ => &[][..],
    };
    let mut hash = fnv1a(FNV_OFFSET, addr);
    hash = fnv1a(hash, &[0xff]);
    hash = fnv1a(hash, agent);
    (hash % shards as u64) as usize
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Everything a shard driver accepts over its queue. Lines and control
/// share one bounded channel, so control operations are ordered with the
/// traffic they follow.
pub(crate) enum ShardMsg {
    /// One raw log line to parse and push.
    Line(String),
    /// Flush the pipeline and reply with its report.
    Drain(SyncSender<PipelineReport>),
    /// Freeze (`true`) or thaw (`false`) the online recalibrator.
    Freeze(bool),
    /// Install a new global eviction capacity for this shard's pool.
    Budget(usize),
    /// Final drain: reply with the report plus closing counters, then
    /// exit the driver thread.
    Stop(SyncSender<ShardFinal>),
}

/// A stopped shard's parting state, folded into the plane's departed
/// totals so aggregates stay monotonic across tenant churn.
pub(crate) struct ShardFinal {
    pub report: PipelineReport,
    pub stats: PipelineStats,
    pub parse_errors: u64,
}

/// The driver's most recently published snapshot. Readers (`STATS`, the
/// plane's aggregation) never touch the pipeline itself, so a stalled
/// shard serves stale-but-instant numbers instead of blocking the admin
/// plane.
#[derive(Default)]
pub(crate) struct ShardPublished {
    pub stats: PipelineStats,
    pub parse_errors: u64,
}

/// One shard of one tenant: a bounded queue feeding a dedicated driver
/// thread that owns the shard's [`Pipeline`].
pub(crate) struct ShardHandle {
    tx: SyncSender<ShardMsg>,
    thread: Option<JoinHandle<()>>,
    published: Arc<Mutex<ShardPublished>>,
    worker_count: usize,
}

/// What became of a lossy line offer.
pub(crate) enum Offer {
    Accepted,
    Full,
    Gone,
}

impl ShardHandle {
    /// Spawns the driver thread for `pipeline` behind a queue of
    /// `queue_depth` messages.
    pub(crate) fn spawn(pipeline: Pipeline, queue_depth: usize) -> ShardHandle {
        let (tx, rx) = sync_channel(queue_depth.max(1));
        let published = Arc::new(Mutex::new(ShardPublished {
            stats: pipeline.stats(),
            parse_errors: 0,
        }));
        let worker_count = pipeline.worker_count();
        let board = Arc::clone(&published);
        let thread = thread::Builder::new()
            .name("divscrape-shard".into())
            .spawn(move || run_shard(pipeline, rx, board))
            .expect("spawn shard driver");
        ShardHandle {
            tx,
            thread: Some(thread),
            published,
            worker_count,
        }
    }

    /// A clone of the shard's input queue, for sending outside any
    /// registry lock (a blocking send while holding the lock would let
    /// one stalled tenant wedge every other tenant's ingestion).
    pub(crate) fn sender(&self) -> SyncSender<ShardMsg> {
        self.tx.clone()
    }

    pub(crate) fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Snapshot of the driver's last published counters.
    pub(crate) fn published(&self) -> (PipelineStats, u64) {
        let board = self
            .published
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (board.stats.clone(), board.parse_errors)
    }

    /// Stops the driver: final drain, parting counters, thread joined.
    pub(crate) fn stop(mut self) -> Option<ShardFinal> {
        let (reply_tx, reply_rx) = sync_channel(1);
        let sent = self.tx.send(ShardMsg::Stop(reply_tx)).is_ok();
        let fin = if sent { reply_rx.recv().ok() } else { None };
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        fin
    }
}

pub(crate) fn send_line(tx: &SyncSender<ShardMsg>, line: String) -> bool {
    tx.send(ShardMsg::Line(line)).is_ok()
}

pub(crate) fn offer_line(tx: &SyncSender<ShardMsg>, line: String) -> Offer {
    match tx.try_send(ShardMsg::Line(line)) {
        Ok(()) => Offer::Accepted,
        Err(TrySendError::Full(_)) => Offer::Full,
        Err(TrySendError::Disconnected(_)) => Offer::Gone,
    }
}

fn publish(pipeline: &Pipeline, parse_errors: u64, board: &Mutex<ShardPublished>) {
    let mut slot = board
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    slot.stats = pipeline.stats();
    slot.parse_errors = parse_errors;
}

fn run_shard(mut pipeline: Pipeline, rx: Receiver<ShardMsg>, board: Arc<Mutex<ShardPublished>>) {
    let mut parse_errors = 0u64;
    let mut since_publish = 0u64;
    loop {
        match rx.recv_timeout(TICK) {
            Ok(ShardMsg::Line(line)) => {
                if pipeline.push_line(&line).is_err() {
                    parse_errors += 1;
                }
                since_publish += 1;
                if since_publish >= PUBLISH_EVERY {
                    publish(&pipeline, parse_errors, &board);
                    since_publish = 0;
                }
            }
            Ok(ShardMsg::Drain(reply)) => {
                let report = pipeline.drain();
                publish(&pipeline, parse_errors, &board);
                since_publish = 0;
                let _ = reply.send(report);
            }
            Ok(ShardMsg::Freeze(frozen)) => {
                pipeline.set_recalibration_frozen(frozen);
                publish(&pipeline, parse_errors, &board);
            }
            Ok(ShardMsg::Budget(capacity)) => {
                pipeline.set_eviction_global_capacity(capacity);
                publish(&pipeline, parse_errors, &board);
            }
            Ok(ShardMsg::Stop(reply)) => {
                let report = pipeline.drain();
                let stats = pipeline.stats();
                publish(&pipeline, parse_errors, &board);
                let _ = reply.send(ShardFinal {
                    report,
                    stats,
                    parse_errors,
                });
                return;
            }
            Err(RecvTimeoutError::Timeout) => {
                publish(&pipeline, parse_errors, &board);
                since_publish = 0;
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Plane dropped without an orderly stop: flush and exit.
                let _ = pipeline.drain();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_for(ip: &str, agent: &str) -> String {
        format!(
            "{ip} - - [11/Mar/2018:00:00:00 +0000] \"GET /item HTTP/1.1\" 200 12 \"-\" \"{agent}\""
        )
    }

    #[test]
    fn same_client_always_lands_on_the_same_shard() {
        for shards in [2usize, 3, 4, 7] {
            for i in 0..50u32 {
                let ip = format!("10.1.{}.{}", i / 8, i % 8 + 1);
                let a = shard_of(&line_for(&ip, "curl/7.58.0"), shards);
                let b = shard_of(
                    &line_for(&ip, "curl/7.58.0").replace("/item", "/cart"),
                    shards,
                );
                assert_eq!(a, b, "client {ip} split across shards");
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn distinct_agents_on_one_address_can_diverge() {
        // Different UA = different client identity; over many agents the
        // hash must use the agent bytes (not collapse to address-only).
        let spread: std::collections::HashSet<usize> = (0..32)
            .map(|i| shard_of(&line_for("10.0.0.1", &format!("bot/{i}.0")), 4))
            .collect();
        assert!(spread.len() > 1, "agent bytes ignored by shard_of");
    }

    #[test]
    fn hash_spreads_clients_across_shards() {
        let mut counts = [0usize; 4];
        for i in 0..400u32 {
            let ip = format!("10.{}.{}.{}", i % 200, (i / 20) % 250 + 1, i % 250 + 1);
            counts[shard_of(&line_for(&ip, "Mozilla/5.0"), 4)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(count > 40, "shard {shard} starved: {counts:?}");
        }
    }

    #[test]
    fn malformed_lines_stay_in_range_and_map_deterministically() {
        for junk in ["", "garbage-without-quotes", "\"", "a \"b"] {
            let shard = shard_of(junk, 4);
            assert!(shard < 4);
            assert_eq!(shard_of(junk, 4), shard);
        }
    }
}
