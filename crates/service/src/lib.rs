//! The sharded **service plane** for the `divscrape` reproduction: the
//! deployable, multi-tenant form of the streaming pipeline.
//!
//! `divscrape-pipeline`'s [`PipelineHub`](divscrape_pipeline::PipelineHub)
//! isolates tenants structurally but drives them all from one caller
//! thread — a stalled tenant sink stalls the whole feed. This crate
//! promotes the hub into a *service plane* where isolation is also
//! temporal:
//!
//! * [`ServicePlane`] gives every tenant its own **driver thread per
//!   shard** behind bounded queues. A stalled tenant fills only its own
//!   queues; every other tenant keeps ingesting (pinned by this
//!   repository's `service_isolation` test).
//! * Within a tenant, [`shard_of`] routes each line by client hash
//!   (source address + user agent), so a client's whole session lands on
//!   one shard and each shard's verdicts stay **bit-identical** to a
//!   standalone pipeline over that client subset (`service_equivalence`
//!   test).
//! * [`SourcePump`] feeds any [`LogSource`](divscrape_ingest::LogSource)
//!   into the plane — blocking for lossless feeds (TCP, replay, file
//!   tail), lossy-and-counted for UDP/syslog intake
//!   ([`UdpSource`](divscrape_ingest::UdpSource)).
//! * [`AdminServer`] exposes a line protocol (`STATS`, `TENANTS`,
//!   `JOIN`, `LEAVE`, `FREEZE`/`THAW`, `BUDGET`) over TCP, serving live
//!   [`ServiceStats`] as JSON lines; drivable with `nc`.
//! * Alert delivery multiplexes over **one** collector connection via
//!   [`MuxCollector`](divscrape_pipeline::MuxCollector) — every tenant's
//!   sink shares the socket (and its disk spool) while per-tenant
//!   telemetry splits back out.
//!
//! # Quickstart: two tenants, sharded, one admin endpoint
//!
//! ```
//! use divscrape_detect::{Sentinel, TenantId};
//! use divscrape_pipeline::PipelineBuilder;
//! use divscrape_service::{AdminServer, ServicePlane};
//!
//! let eu = TenantId::new("shop-eu");
//! let us = TenantId::new("shop-us");
//! let plane = ServicePlane::builder()
//!     .tenant(eu.clone(), 2, |_, _| {
//!         PipelineBuilder::new().detector(Sentinel::stock())
//!     })
//!     .tenant(us.clone(), 1, |_, _| {
//!         PipelineBuilder::new().detector(Sentinel::stock())
//!     })
//!     .build()
//!     .map_err(|e| e.to_string())?;
//! let admin = AdminServer::bind("127.0.0.1:0", plane.clone()).map_err(|e| e.to_string())?;
//!
//! let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 5 "-" "curl/7.58.0""#;
//! plane.ingest(&eu, line.to_owned());
//! plane.ingest(&us, line.to_owned());
//! let _ = plane.drain_all();
//! assert_eq!(plane.stats().entries_processed, 2);
//! drop(admin);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admin;
mod plane;
mod pump;
mod shard;

pub use admin::AdminServer;
pub use plane::{
    IngestOutcome, ServiceError, ServicePlane, ServicePlaneBuilder, ServiceStats, TenantFactory,
    TenantIngress, TenantShardStats, DEFAULT_QUEUE_DEPTH,
};
pub use pump::{PumpMode, PumpStats, SourcePump};
pub use shard::shard_of;

// Re-exported so service deployments can name tenants and compose
// pipelines without depending on the lower crates directly.
pub use divscrape_detect::TenantId;
pub use divscrape_pipeline::PipelineBuilder;
