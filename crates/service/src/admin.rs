//! [`AdminServer`]: a line-protocol control endpoint for a
//! [`ServicePlane`].
//!
//! One TCP connection, one command per line, one reply per command —
//! drivable with `nc`. Commands:
//!
//! | command | reply |
//! |---|---|
//! | `STATS` | one JSON object line ([`ServiceStats::to_json`]) |
//! | `TENANTS` | one JSON array of tenant names |
//! | `JOIN <name> [shards]` | `OK joined <name> shards=<n>` or `ERR …` |
//! | `LEAVE <name>` | `OK left <name> entries=<n>` or `ERR …` |
//! | `FREEZE <name>` / `THAW <name>` | `OK …` or `ERR …` |
//! | `BUDGET <n>` | `OK budget=<n> tenants=<m>` or `ERR …` |
//! | `QUIT` | `OK bye` and the connection closes |
//!
//! `STATS` and `TENANTS` read each shard's last *published* snapshot,
//! so a stalled tenant cannot wedge the admin plane.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use divscrape_detect::TenantId;

use crate::plane::{push_json_string, ServicePlane};

/// How often the accept loop and connection readers check the stop
/// flag.
const POLL: Duration = Duration::from_millis(25);

/// A line-protocol admin endpoint bound to a [`ServicePlane`] — see the
/// module docs for the command set.
///
/// The listener and every connection get their own thread; all of them
/// exit when the server is dropped.
///
/// ```
/// use divscrape_detect::{Sentinel, TenantId};
/// use divscrape_pipeline::PipelineBuilder;
/// use divscrape_service::{AdminServer, ServicePlane};
/// use std::io::{BufRead, BufReader, Write};
/// use std::net::TcpStream;
///
/// let plane = ServicePlane::builder()
///     .tenant(TenantId::new("shop"), 1, |_, _| {
///         PipelineBuilder::new().detector(Sentinel::stock())
///     })
///     .build()
///     .map_err(|e| e.to_string())?;
/// let admin = AdminServer::bind("127.0.0.1:0", plane)?;
///
/// let mut conn = TcpStream::connect(admin.local_addr())?;
/// writeln!(conn, "STATS")?;
/// let mut reply = String::new();
/// BufReader::new(conn.try_clone()?).read_line(&mut reply)?;
/// assert!(reply.contains("\"tenants\":[{\"tenant\":\"shop\""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct AdminServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds the endpoint and starts accepting connections. Bind to
    /// port 0 to let the OS pick (read it back with
    /// [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: impl ToSocketAddrs, plane: ServicePlane) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("divscrape-admin".into())
                .spawn(move || accept_loop(listener, plane, stop))?
        };
        Ok(AdminServer {
            local_addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address — connect and speak the line protocol here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: TcpListener, plane: ServicePlane, stop: Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let plane = plane.clone();
                let stop = Arc::clone(&stop);
                if let Ok(handle) = thread::Builder::new()
                    .name("divscrape-admin-conn".into())
                    .spawn(move || serve_connection(stream, plane, stop))
                {
                    connections.push(handle);
                }
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, plane: ServicePlane, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Acquire) {
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let command = line.trim();
                let reply = if command.is_empty() {
                    line.clear();
                    continue;
                } else {
                    let (reply, quit) = dispatch(command, &plane);
                    line.clear();
                    if quit {
                        let _ = writeln!(writer, "{reply}");
                        return;
                    }
                    reply
                };
                if writeln!(writer, "{reply}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
            // Timeout while a line is still in flight: keep the partial
            // contents of `line` and resume appending on the next pass.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// Executes one admin command; returns `(reply, close_connection)`.
fn dispatch(command: &str, plane: &ServicePlane) -> (String, bool) {
    let mut words = command.split_whitespace();
    let verb = words.next().unwrap_or("").to_ascii_uppercase();
    match verb.as_str() {
        "STATS" => (plane.stats().to_json(), false),
        "TENANTS" => {
            let mut out = String::from("[");
            for (i, tenant) in plane.tenants().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, tenant.as_str());
            }
            out.push(']');
            (out, false)
        }
        "JOIN" => match words.next() {
            Some(name) => {
                let shards = words.next().and_then(|w| w.parse::<usize>().ok());
                match plane.join(&TenantId::new(name), shards) {
                    Ok(()) => {
                        let joined = shards.map(|s| s.max(1)).unwrap_or_else(|| {
                            plane.stats().tenants.last().map_or(1, |t| t.shards.len())
                        });
                        (format!("OK joined {name} shards={joined}"), false)
                    }
                    Err(e) => (format!("ERR {e}"), false),
                }
            }
            None => ("ERR JOIN needs a tenant name".to_owned(), false),
        },
        "LEAVE" => match words.next() {
            Some(name) => match plane.leave(&TenantId::new(name)) {
                Some(reports) => {
                    let entries: usize = reports.iter().map(|r| r.requests()).sum();
                    (format!("OK left {name} entries={entries}"), false)
                }
                None => (format!("ERR unknown tenant: {name}"), false),
            },
            None => ("ERR LEAVE needs a tenant name".to_owned(), false),
        },
        "FREEZE" | "THAW" => {
            let frozen = verb == "FREEZE";
            match words.next() {
                Some(name) => {
                    if plane.set_frozen(&TenantId::new(name), frozen) {
                        (
                            format!("OK {} {name}", if frozen { "frozen" } else { "thawed" }),
                            false,
                        )
                    } else {
                        (format!("ERR unknown tenant: {name}"), false)
                    }
                }
                None => (format!("ERR {verb} needs a tenant name"), false),
            }
        }
        "BUDGET" => match words.next().and_then(|w| w.parse::<usize>().ok()) {
            Some(budget) => {
                let allotments = plane.set_eviction_budget(budget);
                (
                    format!("OK budget={budget} tenants={}", allotments.len()),
                    false,
                )
            }
            None => ("ERR BUDGET needs a non-negative integer".to_owned(), false),
        },
        "QUIT" => ("OK bye".to_owned(), true),
        other => (format!("ERR unknown command: {other}"), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_detect::Sentinel;
    use divscrape_pipeline::{Adjudication, PipelineBuilder};

    fn plane() -> ServicePlane {
        ServicePlane::builder()
            .tenant(TenantId::new("shop"), 1, |_, _| {
                PipelineBuilder::new()
                    .detector(Sentinel::stock())
                    .adjudication(Adjudication::k_of_n(1))
            })
            .default_factory(|_, _| {
                PipelineBuilder::new()
                    .detector(Sentinel::stock())
                    .adjudication(Adjudication::k_of_n(1))
            })
            .build()
            .expect("plane builds")
    }

    #[test]
    fn dispatch_covers_the_command_table() {
        let plane = plane();
        let (stats, _) = dispatch("STATS", &plane);
        assert!(stats.starts_with('{'));
        let (tenants, _) = dispatch("tenants", &plane);
        assert_eq!(tenants, "[\"shop\"]");
        let (join, _) = dispatch("JOIN late 2", &plane);
        assert_eq!(join, "OK joined late shards=2");
        let (dup, _) = dispatch("JOIN late", &plane);
        assert!(dup.starts_with("ERR"));
        let (freeze, _) = dispatch("FREEZE late", &plane);
        assert_eq!(freeze, "OK frozen late");
        let (thaw, _) = dispatch("THAW late", &plane);
        assert_eq!(thaw, "OK thawed late");
        let (budget, _) = dispatch("BUDGET 500", &plane);
        assert_eq!(budget, "OK budget=500 tenants=2");
        let (leave, _) = dispatch("LEAVE late", &plane);
        assert_eq!(leave, "OK left late entries=0");
        let (gone, _) = dispatch("LEAVE late", &plane);
        assert!(gone.starts_with("ERR unknown tenant"));
        let (bad, _) = dispatch("NONSENSE", &plane);
        assert!(bad.starts_with("ERR unknown command"));
        let (bye, quit) = dispatch("QUIT", &plane);
        assert_eq!(bye, "OK bye");
        assert!(quit);
    }
}
