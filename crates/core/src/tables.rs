//! Paper-vs-measured table rendering.
//!
//! Each function renders one of the paper's tables with the published
//! counts alongside this reproduction's measurements. Absolute counts are
//! not expected to match (the substrate is a simulator); the *shape*
//! assertions live in [`crate::calibration`].

use divscrape_ensemble::report::{percent, thousands, TextTable};
use divscrape_httplog::HttpStatus;

use crate::paper;
use crate::study::StudyReport;

fn status_label(code: u16) -> String {
    HttpStatus::new(code).map_or_else(|| code.to_string(), |s| s.paper_label())
}

/// Table 1 — total requests and per-tool alert totals.
pub fn table1(report: &StudyReport) -> String {
    let mut t = TextTable::new("Table 1 - HTTP requests alerted by the two tools");
    t.columns(&["", "Paper", "Measured", "Measured %"]);
    t.row_owned(vec![
        "Total HTTP requests".into(),
        thousands(paper::TABLE1.total_requests),
        thousands(report.total_requests()),
        String::new(),
    ]);
    t.row_owned(vec![
        "Alerted by Distil / sentinel".into(),
        thousands(paper::TABLE1.distil_alerts),
        thousands(report.sentinel.count()),
        percent(report.sentinel.rate()),
    ]);
    t.row_owned(vec![
        "Alerted by Arcane / arcane".into(),
        thousands(paper::TABLE1.arcane_alerts),
        thousands(report.arcane.count()),
        percent(report.arcane.rate()),
    ]);
    t.render()
}

/// Table 2 — diversity in the alerting behaviour.
pub fn table2(report: &StudyReport) -> String {
    let c = &report.contingency;
    let total = c.total().max(1) as f64;
    let mut t = TextTable::new("Table 2 - Diversity in the alerting behavior of the two tools");
    t.columns(&[
        "HTTP requests alerted by:",
        "Paper",
        "Measured",
        "Measured %",
    ]);
    let rows: [(&str, u64, u64); 4] = [
        ("Both tools", paper::TABLE2.both, c.both),
        ("Neither", paper::TABLE2.neither, c.neither),
        ("Arcane only", paper::TABLE2.arcane_only, c.only_second),
        (
            "Distil/sentinel only",
            paper::TABLE2.distil_only,
            c.only_first,
        ),
    ];
    for (label, paper_count, measured) in rows {
        t.row_owned(vec![
            label.into(),
            thousands(paper_count),
            thousands(measured),
            percent(measured as f64 / total),
        ]);
    }
    t.render()
}

fn status_table(
    title: &str,
    paper_rows: &[(u16, u64)],
    measured: &divscrape_ensemble::StatusBreakdown,
) -> String {
    let mut t = TextTable::new(title);
    t.columns(&["HTTP status", "Paper", "Measured"]);
    let mut seen: Vec<u16> = paper_rows.iter().map(|(s, _)| *s).collect();
    for s in measured.statuses() {
        if !seen.contains(&s) {
            seen.push(s);
        }
    }
    // Order by measured count descending (the paper orders by count too).
    seen.sort_by_key(|s| {
        std::cmp::Reverse(
            HttpStatus::new(*s)
                .map(|st| measured.count(st))
                .unwrap_or(0),
        )
    });
    for code in seen {
        let paper_count = paper_rows
            .iter()
            .find(|(s, _)| *s == code)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let measured_count = HttpStatus::new(code).map_or(0, |s| measured.count(s));
        if paper_count == 0 && measured_count == 0 {
            continue;
        }
        t.row_owned(vec![
            status_label(code),
            thousands(paper_count),
            thousands(measured_count),
        ]);
    }
    t.render()
}

/// Table 3 — alerted requests by HTTP status, overall counts (both tools).
pub fn table3(report: &StudyReport) -> String {
    let arcane = status_table(
        "Table 3a - Alerted requests by HTTP status (Arcane, overall)",
        &paper::TABLE3_ARCANE,
        &report.status_arcane,
    );
    let sentinel = status_table(
        "Table 3b - Alerted requests by HTTP status (Distil/sentinel, overall)",
        &paper::TABLE3_DISTIL,
        &report.status_sentinel,
    );
    format!("{arcane}\n{sentinel}")
}

/// Table 4 — statuses of the requests alerted by exactly one tool.
pub fn table4(report: &StudyReport) -> String {
    let arcane = status_table(
        "Table 4a - Alerted by Arcane only, by HTTP status",
        &paper::TABLE4_ARCANE_ONLY,
        &report.status_arcane_only,
    );
    let sentinel = status_table(
        "Table 4b - Alerted by Distil/sentinel only, by HTTP status",
        &paper::TABLE4_DISTIL_ONLY,
        &report.status_sentinel_only,
    );
    format!("{arcane}\n{sentinel}")
}

/// The Section-V labelled analysis: per-tool and per-scheme quality.
pub fn labelled_metrics(report: &StudyReport) -> String {
    let mut t = TextTable::new("Labelled analysis (the paper's Section V, completed)");
    t.columns(&[
        "Detector / scheme",
        "Sensitivity",
        "Specificity",
        "Precision",
        "F1",
        "MCC",
    ]);
    let l = &report.labelled;
    for (name, m) in [
        ("sentinel (Distil-like)", &l.sentinel),
        ("arcane (in-house-like)", &l.arcane),
        ("1-out-of-2 (either alerts)", &l.one_out_of_two),
        ("2-out-of-2 (both alert)", &l.two_out_of_two),
    ] {
        t.row_owned(vec![
            name.into(),
            percent(m.sensitivity()),
            percent(m.specificity()),
            percent(m.precision()),
            format!("{:.4}", m.f1()),
            format!("{:.4}", m.mcc()),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nDouble-fault rate (both tools wrong): {}\nAgreement diversity: Q={:.4} phi={:.4} disagreement={} kappa={:.4}\n",
        percent(l.oracle.double_fault()),
        report.agreement.yule_q,
        report.agreement.phi,
        percent(report.agreement.disagreement),
        report.agreement.kappa,
    ));
    out
}

/// Per-actor detection rates — the root-cause view of the exclusive alerts.
pub fn per_actor(report: &StudyReport) -> String {
    let mut t = TextTable::new("Detection rate by actor population");
    t.columns(&["Actor", "Requests", "Sentinel", "Arcane"]);
    for (actor, d) in &report.per_actor {
        t.row_owned(vec![
            actor.name().into(),
            thousands(d.requests),
            percent(d.sentinel_rate),
            percent(d.arcane_rate),
        ]);
    }
    t.render()
}

/// All tables, concatenated — the full paper-style report.
pub fn full_report(report: &StudyReport) -> String {
    format!(
        "{}\n{}\n{}\n{}\n{}\n{}",
        table1(report),
        table2(report),
        table3(report),
        table4(report),
        labelled_metrics(report),
        per_actor(report),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{DiversityStudy, StudyConfig};
    use divscrape_traffic::ScenarioConfig;

    fn report() -> StudyReport {
        DiversityStudy::new(StudyConfig::new(ScenarioConfig::small(2018)))
            .run()
            .unwrap()
    }

    #[test]
    fn tables_render_paper_and_measured_columns() {
        let r = report();
        let t1 = table1(&r);
        assert!(t1.contains("1,469,744"), "paper total missing:\n{t1}");
        assert!(t1.contains("12,000"), "measured total missing:\n{t1}");
        let t2 = table2(&r);
        assert!(t2.contains("Both tools"));
        assert!(t2.contains("1,231,408"));
        let t3 = table3(&r);
        assert!(t3.contains("200 (OK)"));
        assert!(t3.contains("302 (Found)"));
        let t4 = table4(&r);
        assert!(t4.contains("Arcane only"));
    }

    #[test]
    fn labelled_section_reports_all_schemes() {
        let r = report();
        let text = labelled_metrics(&r);
        for needle in [
            "sentinel",
            "arcane",
            "1-out-of-2",
            "2-out-of-2",
            "Double-fault",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn per_actor_lists_every_population() {
        let r = report();
        let text = per_actor(&r);
        for actor in ["human", "price-scraper-bot", "stealth-scraper", "scanner"] {
            assert!(text.contains(actor), "missing {actor}");
        }
    }

    #[test]
    fn full_report_contains_all_sections() {
        let text = full_report(&report());
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3a",
            "Table 4b",
            "Labelled",
            "Detection rate",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
