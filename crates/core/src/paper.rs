//! The numbers the paper reports, as typed constants.
//!
//! Every reproduction harness prints these next to its own measurements.
//! Source: Marques et al., "Using Diverse Detectors for Detecting Malicious
//! Web Scraping Activity", DSN 2018 — Tables 1–4. In this workspace the
//! commercial tool (Distil Networks) is reproduced as `sentinel` and the
//! in-house tool (Arcane) as `arcane`.

/// Table 1: total traffic and per-tool alert totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperTotals {
    /// Total HTTP requests in the dataset.
    pub total_requests: u64,
    /// Requests alerted by Distil (the commercial tool).
    pub distil_alerts: u64,
    /// Requests alerted by Arcane (the in-house tool).
    pub arcane_alerts: u64,
}

/// Table 1 as published.
pub const TABLE1: PaperTotals = PaperTotals {
    total_requests: 1_469_744,
    distil_alerts: 1_275_056,
    arcane_alerts: 1_240_713,
};

/// Table 2: the 2×2 agreement breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperContingency {
    /// Alerted by both tools.
    pub both: u64,
    /// Alerted by neither.
    pub neither: u64,
    /// Alerted by Arcane only.
    pub arcane_only: u64,
    /// Alerted by Distil only.
    pub distil_only: u64,
}

/// Table 2 as published.
pub const TABLE2: PaperContingency = PaperContingency {
    both: 1_231_408,
    neither: 185_383,
    arcane_only: 9_305,
    distil_only: 43_648,
};

/// Table 3, Arcane column: alerted requests by HTTP status (overall).
pub const TABLE3_ARCANE: [(u16, u64); 7] = [
    (200, 1_204_241),
    (302, 34_561),
    (204, 1_560),
    (400, 256),
    (304, 76),
    (500, 11),
    (404, 8),
];

/// Table 3, Distil column: alerted requests by HTTP status (overall).
pub const TABLE3_DISTIL: [(u16, u64); 8] = [
    (200, 1_239_079),
    (302, 34_832),
    (204, 1_018),
    (400, 73),
    (404, 32),
    (304, 15),
    (500, 6),
    (403, 1),
];

/// Table 4, Arcane-only column: statuses of requests alerted only by Arcane.
pub const TABLE4_ARCANE_ONLY: [(u16, u64); 7] = [
    (200, 7_693),
    (204, 956),
    (302, 321),
    (400, 247),
    (304, 76),
    (404, 7),
    (500, 5),
];

/// Table 4, Distil-only column: statuses of requests alerted only by Distil.
pub const TABLE4_DISTIL_ONLY: [(u16, u64); 7] = [
    (200, 42_531),
    (302, 592),
    (204, 414),
    (400, 64),
    (404, 31),
    (304, 15),
    (403, 1),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_partitions_table1_exactly() {
        // The paper's tables are internally consistent; encode that as an
        // invariant so a typo in the constants cannot survive.
        assert_eq!(
            TABLE2.both + TABLE2.neither + TABLE2.arcane_only + TABLE2.distil_only,
            TABLE1.total_requests
        );
        assert_eq!(TABLE2.both + TABLE2.distil_only, TABLE1.distil_alerts);
        assert_eq!(TABLE2.both + TABLE2.arcane_only, TABLE1.arcane_alerts);
    }

    #[test]
    fn table3_columns_sum_to_the_tool_totals() {
        let arcane: u64 = TABLE3_ARCANE.iter().map(|(_, c)| c).sum();
        let distil: u64 = TABLE3_DISTIL.iter().map(|(_, c)| c).sum();
        assert_eq!(arcane, TABLE1.arcane_alerts);
        assert_eq!(distil, TABLE1.distil_alerts);
    }

    #[test]
    fn table4_columns_sum_to_the_exclusive_counts() {
        let arcane_only: u64 = TABLE4_ARCANE_ONLY.iter().map(|(_, c)| c).sum();
        let distil_only: u64 = TABLE4_DISTIL_ONLY.iter().map(|(_, c)| c).sum();
        assert_eq!(arcane_only, TABLE2.arcane_only);
        assert_eq!(distil_only, TABLE2.distil_only);
    }

    #[test]
    fn per_status_both_counts_are_consistent_across_tables() {
        // For every status: Table3(tool) − Table4(tool-only) must agree
        // between the tools (it is the same "both alerted" population).
        let get = |table: &[(u16, u64)], status: u16| {
            table
                .iter()
                .find(|(s, _)| *s == status)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        for status in [200u16, 204, 302, 304, 400, 403, 404, 500] {
            let both_via_arcane = get(&TABLE3_ARCANE, status) - get(&TABLE4_ARCANE_ONLY, status);
            let both_via_distil = get(&TABLE3_DISTIL, status) - get(&TABLE4_DISTIL_ONLY, status);
            assert_eq!(
                both_via_arcane, both_via_distil,
                "status {status} inconsistent"
            );
        }
    }
}
