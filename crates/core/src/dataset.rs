//! Persisting and reloading labelled datasets.
//!
//! The paper's blocking problem was that its corpus existed only inside
//! Amadeus and without labels. This module makes every generated corpus a
//! shareable artefact: the traffic as a standard Apache access log (so any
//! third-party tool can consume it), and the ground truth as a JSON-lines
//! sidecar keyed by line number.

use std::io::{self, BufRead, Write};

use divscrape_httplog::{LogEntry, LogReader};
use divscrape_traffic::{ActorClass, GroundTruth, LabelledLog};
use serde::{Deserialize, Serialize};

/// One label record in the sidecar file (one JSON object per log line).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelRecord {
    /// 0-based index of the request in the log file.
    pub index: u64,
    /// Actor-class name (see [`ActorClass::name`]).
    pub actor: String,
    /// Whether the request is malicious.
    pub malicious: bool,
    /// Simulated client id.
    pub client_id: u32,
    /// Simulated session id.
    pub session_id: u32,
}

/// Error while writing or reading a dataset.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A log line failed to parse at the given 1-based line number.
    Log(String),
    /// A label record is malformed or inconsistent with the log.
    Label(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset i/o failed: {e}"),
            DatasetError::Log(m) => write!(f, "dataset log malformed: {m}"),
            DatasetError::Label(m) => write!(f, "dataset labels malformed: {m}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn actor_by_name(name: &str) -> Option<ActorClass> {
    ActorClass::ALL.into_iter().find(|a| a.name() == name)
}

/// Writes the traffic as Combined Log Format and the labels as JSON lines.
///
/// # Errors
///
/// Propagates the first I/O or serialization failure.
pub fn write_dataset<W1: Write, W2: Write>(
    log: &LabelledLog,
    log_writer: W1,
    mut label_writer: W2,
) -> Result<(), DatasetError> {
    log.write_log(log_writer)?;
    for (i, (_, truth)) in log.iter().enumerate() {
        let record = LabelRecord {
            index: i as u64,
            actor: truth.actor().name().to_owned(),
            malicious: truth.is_malicious(),
            client_id: truth.client_id(),
            session_id: truth.session_id(),
        };
        let line = serde_json::to_string(&record)
            .map_err(|e| DatasetError::Label(e.to_string()))?;
        writeln!(label_writer, "{line}")?;
    }
    label_writer.flush()?;
    Ok(())
}

/// Reads back a dataset written by [`write_dataset`].
///
/// Returns the entries and the parallel ground truth. The label sidecar
/// must describe exactly the log's lines, in order.
///
/// # Errors
///
/// Fails on unparsable log lines, malformed label records, index
/// mismatches, unknown actor names, or a length mismatch.
pub fn read_dataset<R1: BufRead, R2: BufRead>(
    log_reader: R1,
    label_reader: R2,
) -> Result<(Vec<LogEntry>, Vec<GroundTruth>), DatasetError> {
    let mut entries = Vec::new();
    for item in LogReader::new(log_reader) {
        match item {
            Ok(e) => entries.push(e),
            Err(e) => return Err(DatasetError::Log(e.to_string())),
        }
    }

    let mut truth = Vec::with_capacity(entries.len());
    for (i, line) in label_reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: LabelRecord = serde_json::from_str(&line)
            .map_err(|e| DatasetError::Label(format!("line {}: {e}", i + 1)))?;
        if record.index != truth.len() as u64 {
            return Err(DatasetError::Label(format!(
                "label index {} out of order at line {}",
                record.index,
                i + 1
            )));
        }
        let actor = actor_by_name(&record.actor).ok_or_else(|| {
            DatasetError::Label(format!("unknown actor `{}` at line {}", record.actor, i + 1))
        })?;
        if actor.is_malicious() != record.malicious {
            return Err(DatasetError::Label(format!(
                "label line {}: malicious flag contradicts actor `{}`",
                i + 1,
                record.actor
            )));
        }
        truth.push(GroundTruth::new(actor, record.client_id, record.session_id));
    }

    if truth.len() != entries.len() {
        return Err(DatasetError::Label(format!(
            "{} log lines but {} labels",
            entries.len(),
            truth.len()
        )));
    }
    Ok((entries, truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_traffic::{generate, ScenarioConfig};
    use std::io::Cursor;

    fn roundtrip(seed: u64) -> (LabelledLog, Vec<LogEntry>, Vec<GroundTruth>) {
        let log = generate(&ScenarioConfig::tiny(seed)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let (entries, truth) =
            read_dataset(Cursor::new(log_buf), Cursor::new(label_buf)).unwrap();
        (log, entries, truth)
    }

    #[test]
    fn dataset_round_trips_exactly() {
        let (log, entries, truth) = roundtrip(55);
        assert_eq!(entries.as_slice(), log.entries());
        assert_eq!(truth.as_slice(), log.truth());
    }

    #[test]
    fn labels_are_valid_json_lines() {
        let log = generate(&ScenarioConfig::tiny(56)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let text = String::from_utf8(label_buf).unwrap();
        assert_eq!(text.lines().count(), log.len());
        let first: LabelRecord = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.index, 0);
    }

    #[test]
    fn detects_index_disorder() {
        let log = generate(&ScenarioConfig::tiny(57)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(label_buf)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        lines.swap(0, 1);
        let err = read_dataset(
            Cursor::new(log_buf),
            Cursor::new(lines.join("\n").into_bytes()),
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::Label(_)), "{err}");
    }

    #[test]
    fn detects_length_mismatch() {
        let log = generate(&ScenarioConfig::tiny(58)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let text = String::from_utf8(label_buf).unwrap();
        let truncated: String = text.lines().take(log.len() - 1).collect::<Vec<_>>().join("\n");
        let err = read_dataset(
            Cursor::new(log_buf),
            Cursor::new(truncated.into_bytes()),
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::Label(_)));
    }

    #[test]
    fn detects_contradictory_malice_flags() {
        let log = generate(&ScenarioConfig::tiny(59)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let flipped = String::from_utf8(label_buf)
            .unwrap()
            .lines()
            .map(|l| {
                // Flip the first human record's flag.
                if l.contains("\"human\"") && l.contains("\"malicious\":false") {
                    l.replacen("\"malicious\":false", "\"malicious\":true", 1)
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = read_dataset(Cursor::new(log_buf), Cursor::new(flipped.into_bytes()));
        assert!(err.is_err());
    }

    #[test]
    fn detects_corrupt_log_lines() {
        let log = generate(&ScenarioConfig::tiny(60)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        log_buf.splice(0..0, b"corrupted first line\n".iter().copied());
        let err = read_dataset(Cursor::new(log_buf), Cursor::new(label_buf)).unwrap_err();
        assert!(matches!(err, DatasetError::Log(_)));
    }
}
