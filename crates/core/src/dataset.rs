//! Persisting and reloading labelled datasets.
//!
//! The paper's blocking problem was that its corpus existed only inside
//! Amadeus and without labels. This module makes every generated corpus a
//! shareable artefact: the traffic as a standard Apache access log (so any
//! third-party tool can consume it), and the ground truth as a JSON-lines
//! sidecar keyed by line number.
//!
//! The sidecar records are flat five-field JSON objects; serialization is
//! hand-rolled here (see [`LabelRecord::to_json_string`]) so the dataset
//! format carries no dependency beyond the standard library.

use std::io::{self, BufRead, Write};

use divscrape_httplog::{LogEntry, LogReader};
use divscrape_traffic::{ActorClass, GroundTruth, LabelledLog};
use serde::{Deserialize, Serialize};

/// One label record in the sidecar file (one JSON object per log line).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelRecord {
    /// 0-based index of the request in the log file.
    pub index: u64,
    /// Actor-class name (see [`ActorClass::name`]).
    pub actor: String,
    /// Whether the request is malicious.
    pub malicious: bool,
    /// Simulated client id.
    pub client_id: u32,
    /// Simulated session id.
    pub session_id: u32,
}

impl LabelRecord {
    /// Renders the record as one compact JSON object, in stable field
    /// order: `{"index":..,"actor":"..","malicious":..,"client_id":..,"session_id":..}`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"index\":");
        out.push_str(&self.index.to_string());
        out.push_str(",\"actor\":\"");
        for c in self.actor.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str("\",\"malicious\":");
        out.push_str(if self.malicious { "true" } else { "false" });
        out.push_str(",\"client_id\":");
        out.push_str(&self.client_id.to_string());
        out.push_str(",\"session_id\":");
        out.push_str(&self.session_id.to_string());
        out.push('}');
        out
    }

    /// Parses a record rendered by [`to_json_string`](Self::to_json_string)
    /// (fields may appear in any order; unknown fields are rejected).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or semantic problem.
    pub fn from_json_str(s: &str) -> Result<Self, String> {
        let mut index = None;
        let mut actor = None;
        let mut malicious = None;
        let mut client_id = None;
        let mut session_id = None;
        for (key, value) in json::parse_flat_object(s)? {
            match (key.as_str(), value) {
                ("index", json::Scalar::Number(n)) => index = Some(n),
                ("actor", json::Scalar::String(a)) => actor = Some(a),
                ("malicious", json::Scalar::Bool(b)) => malicious = Some(b),
                ("client_id", json::Scalar::Number(n)) => {
                    client_id = Some(u32::try_from(n).map_err(|_| "client_id overflows u32")?);
                }
                ("session_id", json::Scalar::Number(n)) => {
                    session_id = Some(u32::try_from(n).map_err(|_| "session_id overflows u32")?);
                }
                (other, _) => return Err(format!("unexpected or mistyped field `{other}`")),
            }
        }
        Ok(LabelRecord {
            index: index.ok_or("missing field `index`")?,
            actor: actor.ok_or("missing field `actor`")?,
            malicious: malicious.ok_or("missing field `malicious`")?,
            client_id: client_id.ok_or("missing field `client_id`")?,
            session_id: session_id.ok_or("missing field `session_id`")?,
        })
    }
}

/// A minimal parser for flat JSON objects of scalars — all a label sidecar
/// line ever contains.
mod json {
    /// A scalar JSON value.
    pub enum Scalar {
        /// A JSON string (escapes resolved).
        String(String),
        /// A non-negative integer.
        Number(u64),
        /// `true` / `false`.
        Bool(bool),
    }

    /// Parses `{"key":scalar,..}` into key/value pairs.
    pub fn parse_flat_object(s: &str) -> Result<Vec<(String, Scalar)>, String> {
        let mut chars = s.trim().chars().peekable();
        let mut pairs = Vec::new();
        if chars.next() != Some('{') {
            return Err("expected `{`".into());
        }
        skip_ws(&mut chars);
        if chars.peek() == Some(&'}') {
            chars.next();
            return finish(chars, pairs);
        }
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected `:` after key `{key}`"));
            }
            skip_ws(&mut chars);
            let value = parse_scalar(&mut chars)?;
            pairs.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => return finish(chars, pairs),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn finish(
        mut chars: std::iter::Peekable<std::str::Chars<'_>>,
        pairs: Vec<(String, Scalar)>,
    ) -> Result<Vec<(String, Scalar)>, String> {
        skip_ws(&mut chars);
        if chars.next().is_some() {
            return Err("trailing characters after object".into());
        }
        Ok(pairs)
    }

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected `\"`".into());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).ok_or("bad unicode escape")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_scalar(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Scalar, String> {
        match chars.peek() {
            Some('"') => Ok(Scalar::String(parse_string(chars)?)),
            Some('t') | Some('f') => {
                let word: String = std::iter::from_fn(|| {
                    chars
                        .peek()
                        .filter(|c| c.is_ascii_alphabetic())
                        .copied()
                        .inspect(|_c| {
                            chars.next();
                        })
                })
                .collect();
                match word.as_str() {
                    "true" => Ok(Scalar::Bool(true)),
                    "false" => Ok(Scalar::Bool(false)),
                    other => Err(format!("unexpected literal `{other}`")),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let digits: String = std::iter::from_fn(|| {
                    chars
                        .peek()
                        .filter(|c| c.is_ascii_digit())
                        .copied()
                        .inspect(|_c| {
                            chars.next();
                        })
                })
                .collect();
                digits
                    .parse::<u64>()
                    .map(Scalar::Number)
                    .map_err(|e| format!("bad number `{digits}`: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }
}

/// Error while writing or reading a dataset.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A log line failed to parse at the given 1-based line number.
    Log(String),
    /// A label record is malformed or inconsistent with the log.
    Label(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset i/o failed: {e}"),
            DatasetError::Log(m) => write!(f, "dataset log malformed: {m}"),
            DatasetError::Label(m) => write!(f, "dataset labels malformed: {m}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn actor_by_name(name: &str) -> Option<ActorClass> {
    ActorClass::ALL.into_iter().find(|a| a.name() == name)
}

/// Writes the traffic as Combined Log Format and the labels as JSON lines.
///
/// # Errors
///
/// Propagates the first I/O or serialization failure.
pub fn write_dataset<W1: Write, W2: Write>(
    log: &LabelledLog,
    log_writer: W1,
    mut label_writer: W2,
) -> Result<(), DatasetError> {
    log.write_log(log_writer)?;
    for (i, (_, truth)) in log.iter().enumerate() {
        let record = LabelRecord {
            index: i as u64,
            actor: truth.actor().name().to_owned(),
            malicious: truth.is_malicious(),
            client_id: truth.client_id(),
            session_id: truth.session_id(),
        };
        writeln!(label_writer, "{}", record.to_json_string())?;
    }
    label_writer.flush()?;
    Ok(())
}

/// Reads back a dataset written by [`write_dataset`].
///
/// Returns the entries and the parallel ground truth. The label sidecar
/// must describe exactly the log's lines, in order.
///
/// # Errors
///
/// Fails on unparsable log lines, malformed label records, index
/// mismatches, unknown actor names, or a length mismatch.
pub fn read_dataset<R1: BufRead, R2: BufRead>(
    log_reader: R1,
    label_reader: R2,
) -> Result<(Vec<LogEntry>, Vec<GroundTruth>), DatasetError> {
    let mut entries = Vec::new();
    for item in LogReader::new(log_reader) {
        match item {
            Ok(e) => entries.push(e),
            Err(e) => return Err(DatasetError::Log(e.to_string())),
        }
    }

    let mut truth = Vec::with_capacity(entries.len());
    for (i, line) in label_reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = LabelRecord::from_json_str(&line)
            .map_err(|e| DatasetError::Label(format!("line {}: {e}", i + 1)))?;
        if record.index != truth.len() as u64 {
            return Err(DatasetError::Label(format!(
                "label index {} out of order at line {}",
                record.index,
                i + 1
            )));
        }
        let actor = actor_by_name(&record.actor).ok_or_else(|| {
            DatasetError::Label(format!(
                "unknown actor `{}` at line {}",
                record.actor,
                i + 1
            ))
        })?;
        if actor.is_malicious() != record.malicious {
            return Err(DatasetError::Label(format!(
                "label line {}: malicious flag contradicts actor `{}`",
                i + 1,
                record.actor
            )));
        }
        truth.push(GroundTruth::new(actor, record.client_id, record.session_id));
    }

    if truth.len() != entries.len() {
        return Err(DatasetError::Label(format!(
            "{} log lines but {} labels",
            entries.len(),
            truth.len()
        )));
    }
    Ok((entries, truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_traffic::{generate, ScenarioConfig};
    use std::io::Cursor;

    fn roundtrip(seed: u64) -> (LabelledLog, Vec<LogEntry>, Vec<GroundTruth>) {
        let log = generate(&ScenarioConfig::tiny(seed)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let (entries, truth) = read_dataset(Cursor::new(log_buf), Cursor::new(label_buf)).unwrap();
        (log, entries, truth)
    }

    #[test]
    fn dataset_round_trips_exactly() {
        let (log, entries, truth) = roundtrip(55);
        assert_eq!(entries.as_slice(), log.entries());
        assert_eq!(truth.as_slice(), log.truth());
    }

    #[test]
    fn labels_are_valid_json_lines() {
        let log = generate(&ScenarioConfig::tiny(56)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let text = String::from_utf8(label_buf).unwrap();
        assert_eq!(text.lines().count(), log.len());
        let first = LabelRecord::from_json_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.index, 0);
    }

    #[test]
    fn detects_index_disorder() {
        let log = generate(&ScenarioConfig::tiny(57)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(label_buf)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        lines.swap(0, 1);
        let err = read_dataset(
            Cursor::new(log_buf),
            Cursor::new(lines.join("\n").into_bytes()),
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::Label(_)), "{err}");
    }

    #[test]
    fn detects_length_mismatch() {
        let log = generate(&ScenarioConfig::tiny(58)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let text = String::from_utf8(label_buf).unwrap();
        let truncated: String = text
            .lines()
            .take(log.len() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        let err =
            read_dataset(Cursor::new(log_buf), Cursor::new(truncated.into_bytes())).unwrap_err();
        assert!(matches!(err, DatasetError::Label(_)));
    }

    #[test]
    fn detects_contradictory_malice_flags() {
        let log = generate(&ScenarioConfig::tiny(59)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        let flipped = String::from_utf8(label_buf)
            .unwrap()
            .lines()
            .map(|l| {
                // Flip the first human record's flag.
                if l.contains("\"human\"") && l.contains("\"malicious\":false") {
                    l.replacen("\"malicious\":false", "\"malicious\":true", 1)
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = read_dataset(Cursor::new(log_buf), Cursor::new(flipped.into_bytes()));
        assert!(err.is_err());
    }

    #[test]
    fn detects_corrupt_log_lines() {
        let log = generate(&ScenarioConfig::tiny(60)).unwrap();
        let mut log_buf = Vec::new();
        let mut label_buf = Vec::new();
        write_dataset(&log, &mut log_buf, &mut label_buf).unwrap();
        log_buf.splice(0..0, b"corrupted first line\n".iter().copied());
        let err = read_dataset(Cursor::new(log_buf), Cursor::new(label_buf)).unwrap_err();
        assert!(matches!(err, DatasetError::Log(_)));
    }
}
