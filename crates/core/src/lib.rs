//! `divscrape` — a reproduction of *"Using Diverse Detectors for Detecting
//! Malicious Web Scraping Activity"* (Marques et al., DSN 2018).
//!
//! The paper runs two independently built scraping detectors — Distil
//! Networks (commercial) and Arcane (Amadeus in-house) — over 1.47 M
//! production access-log requests and measures the *diversity* of their
//! alerting behaviour. Everything in that study is proprietary; this
//! workspace rebuilds the whole stack:
//!
//! | Layer | Crate |
//! |---|---|
//! | Apache Combined Log Format substrate | `divscrape-httplog` |
//! | Labelled e-commerce traffic simulator | `divscrape-traffic` |
//! | The diverse detectors + baselines | `divscrape-detect` |
//! | Contingency, adjudication, metrics | `divscrape-ensemble` |
//! | The study pipeline (this crate) | `divscrape` |
//!
//! # Quick start
//!
//! ```
//! use divscrape::{tables, DiversityStudy, StudyConfig};
//! use divscrape_traffic::ScenarioConfig;
//!
//! // A 12k-request study (use `StudyConfig::paper_scale(seed)` for the
//! // full 1,469,744-request reproduction).
//! let report = DiversityStudy::new(StudyConfig::new(ScenarioConfig::small(2018))).run()?;
//!
//! // The paper's Table 2, paper-vs-measured.
//! println!("{}", tables::table2(&report));
//! assert_eq!(report.contingency.total(), report.total_requests());
//! # Ok::<(), divscrape::StudyError>(())
//! ```
//!
//! The [`paper`] module holds the published numbers; [`tables`] renders
//! paper-vs-measured tables; [`calibration`] checks that a run reproduces
//! the paper's *shape* (who wins, how dominant the overlap is, how the
//! exclusive sets skew).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dataset;
pub mod paper;
mod study;
pub mod tables;

pub use study::{
    ActorDetection, DiversityStudy, LabelledAnalysis, StudyConfig, StudyError, StudyReport,
};

// Re-export the workspace layers so downstream users need one dependency.
pub use divscrape_detect as detect;
pub use divscrape_ensemble as ensemble;
pub use divscrape_httplog as httplog;
pub use divscrape_traffic as traffic;
