//! The end-to-end diversity study.
//!
//! [`DiversityStudy`] wires the whole reproduction together: generate the
//! scenario, stream it through a two-tool detection
//! [`Pipeline`](divscrape_pipeline::Pipeline) (optionally sharded across
//! worker threads), and compute everything the paper reports plus the
//! labelled analyses its Section V calls for.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use divscrape_detect::{
    Arcane, ArcaneConfig, ReputationFeed, Sentinel, SentinelConfig, SignatureEngine,
};
use divscrape_ensemble::{
    AgreementDiversity, AlertVector, ConfusionMatrix, Contingency, KOutOfN, OracleDiversity,
    StatusBreakdown,
};
use divscrape_pipeline::{Adjudication, PipelineBuilder};
use divscrape_traffic::{generate, ActorClass, LabelledLog, ScenarioConfig};
use serde::Serialize;

/// Configuration of one study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// The traffic scenario.
    pub scenario: ScenarioConfig,
    /// Worker threads for detector execution (1 = sequential).
    pub workers: usize,
    /// Sentinel configuration.
    pub sentinel: SentinelConfig,
    /// Arcane configuration.
    pub arcane: ArcaneConfig,
}

impl StudyConfig {
    /// A study over the given scenario with stock detectors, sequential.
    pub fn new(scenario: ScenarioConfig) -> Self {
        Self {
            scenario,
            workers: 1,
            sentinel: SentinelConfig::default(),
            arcane: ArcaneConfig::default(),
        }
    }

    /// The full paper-scale study (1,469,744 requests).
    pub fn paper_scale(seed: u64) -> Self {
        Self::new(ScenarioConfig::paper_scale(seed))
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Error from running a study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyError {
    message: String,
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "diversity study failed: {}", self.message)
    }
}

impl Error for StudyError {}

impl From<String> for StudyError {
    fn from(message: String) -> Self {
        Self { message }
    }
}

/// Per-tool labelled quality plus adjudication-scheme quality.
#[derive(Debug, Clone, Serialize)]
pub struct LabelledAnalysis {
    /// Sentinel's confusion matrix.
    pub sentinel: ConfusionMatrix,
    /// Arcane's confusion matrix.
    pub arcane: ConfusionMatrix,
    /// 1-out-of-2 adjudication.
    pub one_out_of_two: ConfusionMatrix,
    /// 2-out-of-2 adjudication.
    pub two_out_of_two: ConfusionMatrix,
    /// Joint-correctness diversity (double fault etc.).
    pub oracle: OracleDiversity,
}

/// Detection rates of each tool on one actor population.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ActorDetection {
    /// Requests this actor generated.
    pub requests: u64,
    /// Share of them alerted by Sentinel.
    pub sentinel_rate: f64,
    /// Share of them alerted by Arcane.
    pub arcane_rate: f64,
}

/// Everything one study run produces.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The generated traffic (kept for downstream experiments).
    pub log: LabelledLog,
    /// Sentinel's alert vector (reproduces the Distil column).
    pub sentinel: AlertVector,
    /// Arcane's alert vector.
    pub arcane: AlertVector,
    /// Table 2: agreement contingency (first = Sentinel/Distil).
    pub contingency: Contingency,
    /// Table 3, Sentinel column.
    pub status_sentinel: StatusBreakdown,
    /// Table 3, Arcane column.
    pub status_arcane: StatusBreakdown,
    /// Table 4, Sentinel-only column.
    pub status_sentinel_only: StatusBreakdown,
    /// Table 4, Arcane-only column.
    pub status_arcane_only: StatusBreakdown,
    /// Unlabelled agreement-diversity statistics.
    pub agreement: AgreementDiversity,
    /// The labelled analyses of Section V.
    pub labelled: LabelledAnalysis,
    /// Per-actor detection rates (the exclusive-alert root-cause view).
    pub per_actor: BTreeMap<ActorClass, ActorDetection>,
}

/// The end-to-end study runner.
#[derive(Debug, Clone)]
pub struct DiversityStudy {
    config: StudyConfig,
}

impl DiversityStudy {
    /// Creates a study from configuration.
    pub fn new(config: StudyConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Generates the traffic, runs both tools, and computes every analysis.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError`] when the scenario configuration is invalid.
    pub fn run(&self) -> Result<StudyReport, StudyError> {
        let log = generate(&self.config.scenario)?;
        Ok(self.run_on(log))
    }

    /// Runs the detectors and analyses over an existing log (e.g. to reuse
    /// one expensive generation across experiments).
    ///
    /// Both tools run inside one streaming
    /// [`Pipeline`](divscrape_pipeline::Pipeline) with 1-out-of-2
    /// adjudication; the configured worker count becomes the pipeline's
    /// client-shard width, which never changes a verdict.
    pub fn run_on(&self, log: LabelledLog) -> StudyReport {
        let mut pipeline = PipelineBuilder::new()
            .detector(Sentinel::new(
                self.config.sentinel.clone(),
                SignatureEngine::stock(),
                ReputationFeed::stock(),
            ))
            .detector(Arcane::new(self.config.arcane.clone()))
            .adjudication(Adjudication::k_of_n(1))
            // Clamp: `workers` is a pub field, so 0 is constructible even
            // though `with_workers` never produces it.
            .workers(self.config.workers.max(1))
            .build()
            .expect("two detectors with 1oo2 always compose");
        pipeline.push_batch(log.entries());
        let streamed = pipeline.drain();

        let one = streamed.combined;
        let mut members = streamed.members.into_iter();
        let (sentinel, arcane) = (
            members.next().expect("sentinel member"),
            members.next().expect("arcane member"),
        );

        let contingency = Contingency::of(&sentinel, &arcane);
        let sentinel_only = sentinel.minus(&arcane);
        let arcane_only = arcane.minus(&sentinel);

        let two = KOutOfN::all(2).apply(&[&sentinel, &arcane]);

        let labelled = LabelledAnalysis {
            sentinel: ConfusionMatrix::of(&sentinel, log.truth()),
            arcane: ConfusionMatrix::of(&arcane, log.truth()),
            one_out_of_two: ConfusionMatrix::of(&one, log.truth()),
            two_out_of_two: ConfusionMatrix::of(&two, log.truth()),
            oracle: OracleDiversity::of(&sentinel, &arcane, log.truth()),
        };

        let mut per_actor: BTreeMap<ActorClass, [u64; 3]> = BTreeMap::new();
        for (i, truth) in log.truth().iter().enumerate() {
            let slot = per_actor.entry(truth.actor()).or_insert([0; 3]);
            slot[0] += 1;
            slot[1] += u64::from(sentinel.get(i));
            slot[2] += u64::from(arcane.get(i));
        }
        let per_actor = per_actor
            .into_iter()
            .map(|(actor, [n, s, a])| {
                (
                    actor,
                    ActorDetection {
                        requests: n,
                        sentinel_rate: s as f64 / n.max(1) as f64,
                        arcane_rate: a as f64 / n.max(1) as f64,
                    },
                )
            })
            .collect();

        StudyReport {
            status_sentinel: StatusBreakdown::of(&sentinel, log.entries()),
            status_arcane: StatusBreakdown::of(&arcane, log.entries()),
            status_sentinel_only: StatusBreakdown::of(&sentinel_only, log.entries()),
            status_arcane_only: StatusBreakdown::of(&arcane_only, log.entries()),
            agreement: AgreementDiversity::from_contingency(&contingency),
            contingency,
            labelled,
            per_actor,
            sentinel,
            arcane,
            log,
        }
    }
}

impl StudyReport {
    /// Total requests analyzed.
    pub fn total_requests(&self) -> u64 {
        self.log.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> StudyReport {
        DiversityStudy::new(StudyConfig::new(ScenarioConfig::small(2018)))
            .run()
            .unwrap()
    }

    #[test]
    fn report_is_internally_consistent() {
        let r = small_report();
        assert_eq!(r.contingency.total(), r.total_requests());
        assert_eq!(
            r.contingency.both + r.contingency.only_first,
            r.sentinel.count()
        );
        assert_eq!(
            r.contingency.both + r.contingency.only_second,
            r.arcane.count()
        );
        assert_eq!(r.status_sentinel.total(), r.sentinel.count());
        assert_eq!(r.status_arcane.total(), r.arcane.count());
        assert_eq!(r.status_sentinel_only.total(), r.contingency.only_first);
        assert_eq!(r.status_arcane_only.total(), r.contingency.only_second);
    }

    #[test]
    fn adjudication_matrices_bracket_the_tools() {
        let r = small_report();
        let l = &r.labelled;
        // 1oo2 can only improve sensitivity over each tool; 2oo2 can only
        // improve specificity.
        assert!(l.one_out_of_two.sensitivity() >= l.sentinel.sensitivity() - 1e-12);
        assert!(l.one_out_of_two.sensitivity() >= l.arcane.sensitivity() - 1e-12);
        assert!(l.two_out_of_two.specificity() >= l.sentinel.specificity() - 1e-12);
        assert!(l.two_out_of_two.specificity() >= l.arcane.specificity() - 1e-12);
    }

    #[test]
    fn both_tools_detect_well_on_labelled_traffic() {
        let r = small_report();
        assert!(r.labelled.sentinel.sensitivity() > 0.9);
        assert!(r.labelled.arcane.sensitivity() > 0.9);
        assert!(r.labelled.sentinel.specificity() > 0.95);
        assert!(r.labelled.arcane.specificity() > 0.95);
    }

    #[test]
    fn per_actor_rates_reflect_the_design() {
        let r = small_report();
        let stealth = r.per_actor[&ActorClass::StealthScraper];
        assert!(stealth.sentinel_rate > 0.9, "{}", stealth.sentinel_rate);
        assert!(stealth.arcane_rate < 0.2, "{}", stealth.arcane_rate);
        // At small scale the scanner population is a single truncated
        // session, so only the *direction* of the asymmetry is stable; the
        // magnitude is asserted by the medium-scale calibration test.
        let scanner = r.per_actor[&ActorClass::Scanner];
        assert!(
            scanner.arcane_rate > scanner.sentinel_rate + 0.2,
            "arcane {} vs sentinel {}",
            scanner.arcane_rate,
            scanner.sentinel_rate
        );
        let bots = r.per_actor[&ActorClass::PriceScraperBot];
        assert!(bots.sentinel_rate > 0.9);
        assert!(bots.arcane_rate > 0.9);
        let humans = r.per_actor[&ActorClass::Human];
        assert!(humans.sentinel_rate < 0.05);
        assert!(humans.arcane_rate < 0.05);
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let seq = DiversityStudy::new(StudyConfig::new(ScenarioConfig::tiny(7)))
            .run()
            .unwrap();
        let par = DiversityStudy::new(StudyConfig::new(ScenarioConfig::tiny(7)).with_workers(4))
            .run()
            .unwrap();
        assert_eq!(seq.sentinel, par.sentinel);
        assert_eq!(seq.arcane, par.arcane);
    }

    #[test]
    fn invalid_scenarios_error_cleanly() {
        let mut scenario = ScenarioConfig::tiny(1);
        scenario.target_requests = 0;
        let err = DiversityStudy::new(StudyConfig::new(scenario)).run();
        assert!(err.is_err());
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("target_requests"), "{msg}");
    }
}
