//! Shape checks: does a measured run reproduce the *structure* of the
//! paper's results?
//!
//! Absolute counts cannot match (the substrate is a simulator, not the
//! Amadeus production estate), so reproduction quality is judged on shape:
//! which tool alerts more, how dominant the overlap is, how asymmetric the
//! exclusive sets are, and how the exclusive sets skew by HTTP status.

use divscrape_httplog::HttpStatus;
use serde::Serialize;

use crate::study::StudyReport;

/// One shape assertion with its outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ShapeFinding {
    /// Short stable identifier.
    pub name: &'static str,
    /// What the paper's tables show.
    pub expectation: String,
    /// What this run measured.
    pub measured: String,
    /// Whether the run reproduces the shape.
    pub passed: bool,
}

impl ShapeFinding {
    fn new(
        name: &'static str,
        expectation: impl Into<String>,
        measured: impl Into<String>,
        passed: bool,
    ) -> Self {
        Self {
            name,
            expectation: expectation.into(),
            measured: measured.into(),
            passed,
        }
    }
}

/// Runs every shape check against a report.
pub fn check_shape(report: &StudyReport) -> Vec<ShapeFinding> {
    let mut findings = Vec::new();
    let total = report.total_requests().max(1) as f64;
    let c = &report.contingency;

    let sentinel_rate = report.sentinel.rate();
    let arcane_rate = report.arcane.rate();
    findings.push(ShapeFinding::new(
        "commercial-tool-alerts-more",
        "Distil 86.8% > Arcane 84.4%",
        format!(
            "sentinel {:.2}% vs arcane {:.2}%",
            sentinel_rate * 100.0,
            arcane_rate * 100.0
        ),
        sentinel_rate > arcane_rate,
    ));

    let both_share = c.both as f64 / total;
    findings.push(ShapeFinding::new(
        "overlap-dominates",
        "both-alerted ≈ 83.8% (accept 70–95%)",
        format!("{:.2}%", both_share * 100.0),
        (0.70..=0.95).contains(&both_share),
    ));

    let neither_share = c.neither as f64 / total;
    findings.push(ShapeFinding::new(
        "neither-is-the-clean-minority",
        "neither ≈ 12.6% (accept 6–22%)",
        format!("{:.2}%", neither_share * 100.0),
        (0.06..=0.22).contains(&neither_share),
    ));

    let ratio = c.only_first as f64 / c.only_second.max(1) as f64;
    findings.push(ShapeFinding::new(
        "exclusive-asymmetry",
        "Distil-only ≈ 4.7× Arcane-only (accept 2–10×)",
        format!("{ratio:.2}×"),
        (2.0..=10.0).contains(&ratio),
    ));

    let s200 = report.status_sentinel_only.share(HttpStatus::OK);
    findings.push(ShapeFinding::new(
        "distil-only-is-mostly-200",
        "97.4% of Distil-only alerts are 200 (accept ≥ 85%)",
        format!("{:.2}%", s200 * 100.0),
        s200 >= 0.85,
    ));

    let a204 = report.status_arcane_only.share(HttpStatus::NO_CONTENT);
    let a400 = report.status_arcane_only.share(HttpStatus::BAD_REQUEST);
    findings.push(ShapeFinding::new(
        "arcane-only-skews-to-beacons",
        "10.3% of Arcane-only alerts are 204 (accept ≥ 3%)",
        format!("{:.2}%", a204 * 100.0),
        a204 >= 0.03,
    ));
    // The acceptance floor is well below the paper's 2.7% because the
    // 400-share of the (small) exclusive set swings with the seed; the
    // check is that errors stay over-represented versus the botnet's
    // ≈0.01% trace level, not that the exact share reproduces.
    findings.push(ShapeFinding::new(
        "arcane-only-skews-to-errors",
        "2.7% of Arcane-only alerts are 400 (accept ≥ 0.3%)",
        format!("{:.2}%", a400 * 100.0),
        a400 >= 0.003,
    ));

    // Table 3 status ordering: 200 dominates, 302 second, for both tools.
    for (name, breakdown) in [
        ("arcane-status-ordering", &report.status_arcane),
        ("sentinel-status-ordering", &report.status_sentinel),
    ] {
        let rows = breakdown.rows();
        let ok =
            rows.first().map(|(s, _)| *s) == Some(200) && rows.get(1).map(|(s, _)| *s) == Some(302);
        findings.push(ShapeFinding::new(
            name,
            "200 first, 302 second in the alert-status ordering",
            format!(
                "top statuses: {:?}",
                rows.iter().take(3).map(|(s, _)| *s).collect::<Vec<_>>()
            ),
            ok,
        ));
    }

    findings
}

/// Renders findings as a text report.
pub fn render_findings(findings: &[ShapeFinding]) -> String {
    let mut out = String::from("Shape reproduction checks\n=========================\n");
    for f in findings {
        out.push_str(&format!(
            "[{}] {}\n    paper:    {}\n    measured: {}\n",
            if f.passed { "PASS" } else { "FAIL" },
            f.name,
            f.expectation,
            f.measured,
        ));
    }
    let passed = findings.iter().filter(|f| f.passed).count();
    out.push_str(&format!("{passed}/{} checks passed\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{DiversityStudy, StudyConfig};
    use divscrape_traffic::ScenarioConfig;

    #[test]
    fn medium_scale_run_reproduces_every_shape() {
        let report = DiversityStudy::new(StudyConfig::new(ScenarioConfig::medium(2018)))
            .run()
            .unwrap();
        let findings = check_shape(&report);
        let failed: Vec<&ShapeFinding> = findings.iter().filter(|f| !f.passed).collect();
        assert!(
            failed.is_empty(),
            "failed shape checks:\n{}",
            render_findings(&findings)
        );
    }

    #[test]
    fn findings_render_with_verdicts() {
        let report = DiversityStudy::new(StudyConfig::new(ScenarioConfig::small(3)))
            .run()
            .unwrap();
        let findings = check_shape(&report);
        let text = render_findings(&findings);
        assert!(text.contains("PASS") || text.contains("FAIL"));
        assert!(text.contains("checks passed"));
        assert_eq!(findings.len(), 9);
    }
}
