//! Cost of the analysis layer: bitset algebra, contingency, adjudication,
//! metrics, ROC.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_detect::{run, Arcane, Sentinel};
use divscrape_ensemble::{
    AgreementDiversity, AlertVector, ConfusionMatrix, Contingency, KOutOfN, RocCurve,
    StatusBreakdown,
};
use divscrape_traffic::{generate, ScenarioConfig};
use std::hint::black_box;

fn setup() -> (
    divscrape_traffic::LabelledLog,
    AlertVector,
    AlertVector,
    Vec<f32>,
) {
    let log = generate(&ScenarioConfig::small(4)).unwrap();
    let sentinel_verdicts = run(&mut Sentinel::stock(), log.entries());
    let arcane_verdicts = run(&mut Arcane::stock(), log.entries());
    let s = AlertVector::from_bools(
        "sentinel",
        &sentinel_verdicts
            .iter()
            .map(|v| v.alert)
            .collect::<Vec<_>>(),
    );
    let a = AlertVector::from_bools(
        "arcane",
        &arcane_verdicts.iter().map(|v| v.alert).collect::<Vec<_>>(),
    );
    let scores: Vec<f32> = arcane_verdicts.iter().map(|v| v.score).collect();
    (log, s, a, scores)
}

fn bench_ensemble(c: &mut Criterion) {
    let (log, s, a, scores) = setup();
    let n = log.len() as u64;

    let mut g = c.benchmark_group("ensemble");
    g.throughput(Throughput::Elements(n));
    g.bench_function("bitset_and_or_minus_12k", |b| {
        b.iter(|| {
            let both = s.and(&a);
            let either = s.or(&a);
            let only = s.minus(&a);
            black_box((both.count(), either.count(), only.count()))
        })
    });
    g.bench_function("contingency_12k", |b| {
        b.iter(|| Contingency::of(black_box(&s), black_box(&a)))
    });
    g.bench_function("status_breakdown_12k", |b| {
        b.iter(|| StatusBreakdown::of(black_box(&s), log.entries()))
    });
    g.bench_function("k_out_of_n_12k", |b| {
        b.iter(|| KOutOfN::any(2).apply(&[black_box(&s), black_box(&a)]))
    });
    g.bench_function("confusion_matrix_12k", |b| {
        b.iter(|| ConfusionMatrix::of(black_box(&s), log.truth()))
    });
    g.bench_function("agreement_diversity_12k", |b| {
        b.iter(|| AgreementDiversity::of(black_box(&s), black_box(&a)))
    });
    g.bench_function("roc_curve_12k", |b| {
        b.iter(|| {
            RocCurve::from_scores(black_box(&scores), log.truth())
                .unwrap()
                .auc()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ensemble);
criterion_main!(benches);
