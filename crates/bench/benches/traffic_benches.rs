//! Throughput of the synthetic traffic generator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_traffic::{generate, ScenarioConfig};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic/generate");
    for (name, scenario) in [
        ("tiny_1k", ScenarioConfig::tiny(1)),
        ("small_12k", ScenarioConfig::small(1)),
        ("medium_120k", ScenarioConfig::medium(1)),
    ] {
        g.sample_size(10);
        g.throughput(Throughput::Elements(scenario.target_requests));
        g.bench_function(name, |b| b.iter(|| generate(black_box(&scenario)).unwrap()));
    }
    g.finish();
}

fn bench_render_to_clf(c: &mut Criterion) {
    let log = generate(&ScenarioConfig::small(2)).unwrap();
    let mut g = c.benchmark_group("traffic");
    g.sample_size(20);
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("render_12k_to_clf", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(4 << 20);
            log.write_log(&mut out).unwrap();
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_generate, bench_render_to_clf);
criterion_main!(benches);
