//! Durable-store benches: what the append log costs on the pipeline's
//! hot path, and what replay costs on restart.
//!
//! 1. **Append throughput by fsync policy** — per-record `append` vs
//!    `append_batch` under `Never` / `OnFlush` (`Always` is measured at
//!    a reduced record count; it is the worst case by design).
//! 2. **Idempotent replay** — re-appending an already-stored prefix
//!    (what a restarted exactly-once ingester does): all-duplicate
//!    batches must be much cheaper than first-time writes.
//! 3. **Read-back** — `records()` over a populated multi-segment store,
//!    the retro-scoring tool's input path.
//!
//! Scale defaults to `small` (12k requests); set `DIVSCRAPE_BENCH_SCALE`
//! for paper-scale runs:
//!
//! ```text
//! DIVSCRAPE_BENCH_SCALE=paper cargo bench -p divscrape-bench --bench store_benches
//! ```

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_bench::scenario_for;
use divscrape_store::{AlertStore, FsyncPolicy, Record, RecordKey, RecordKind, StoreConfig};
use divscrape_traffic::LabelledLog;

fn log() -> LabelledLog {
    let scale = std::env::var("DIVSCRAPE_BENCH_SCALE").unwrap_or_else(|_| "small".to_owned());
    let scenario = scenario_for(&scale, 5).expect("DIVSCRAPE_BENCH_SCALE");
    divscrape_traffic::generate(&scenario).unwrap()
}

/// One store record per log entry, keyed and payloaded the way the
/// pipeline's `StoreSink` does it.
fn records(log: &LabelledLog) -> Vec<Record> {
    log.entries()
        .iter()
        .enumerate()
        .map(|(i, entry)| Record {
            key: RecordKey {
                tenant: None,
                client: entry.client_key(),
                offset: i as u64,
            },
            kind: RecordKind::Score,
            payload: entry.to_string().into_bytes(),
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("divscrape-storebench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(fsync: FsyncPolicy) -> StoreConfig {
    StoreConfig::default().fsync(fsync)
}

fn bench_append(c: &mut Criterion) {
    let log = log();
    let all = records(&log);

    let mut g = c.benchmark_group("store/append");
    g.sample_size(10);
    for (label, fsync, n) in [
        ("never", FsyncPolicy::Never, all.len()),
        ("on_flush", FsyncPolicy::OnFlush, all.len()),
        // Syncing every record is the worst case by design; bench a
        // slice so the group stays affordable.
        ("always", FsyncPolicy::Always, all.len().min(512)),
    ] {
        let batch = &all[..n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("one_by_one/{label}"), |b| {
            b.iter(|| {
                let dir = temp_dir("append");
                let mut store = AlertStore::open(&dir, config(fsync)).unwrap();
                for record in batch {
                    store.append(record.clone()).unwrap();
                }
                store.flush().unwrap();
                let len = store.len();
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
                len
            })
        });
        g.bench_function(format!("batched/{label}"), |b| {
            b.iter(|| {
                let dir = temp_dir("append");
                let mut store = AlertStore::open(&dir, config(fsync)).unwrap();
                let summary = store.append_batch(batch.iter().cloned()).unwrap();
                store.flush().unwrap();
                assert_eq!(summary.appended, n as u64);
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
                summary.appended
            })
        });
    }
    g.finish();
}

fn bench_replay_and_readback(c: &mut Criterion) {
    let log = log();
    let all = records(&log);

    // A populated store the replay and read-back paths run against.
    let dir = temp_dir("replay");
    let mut store = AlertStore::open(&dir, config(FsyncPolicy::Never)).unwrap();
    store.append_batch(all.iter().cloned()).unwrap();
    store.flush().unwrap();
    drop(store);

    let mut g = c.benchmark_group("store/restart");
    g.sample_size(10);
    g.throughput(Throughput::Elements(all.len() as u64));
    // What a restarted exactly-once ingester does: re-offer the whole
    // already-stored prefix and let the keyed index turn it into no-ops.
    g.bench_function("idempotent_replay", |b| {
        let mut store = AlertStore::open(&dir, config(FsyncPolicy::Never)).unwrap();
        b.iter(|| {
            let summary = store.append_batch(all.iter().cloned()).unwrap();
            assert_eq!(summary.skipped, all.len() as u64);
            summary.skipped
        })
    });
    // Open cost (index rebuild from segments) plus full record scan —
    // the retro-scoring tool's input path.
    g.bench_function("open_and_read_back", |b| {
        b.iter(|| {
            let mut store = AlertStore::open(&dir, config(FsyncPolicy::Never)).unwrap();
            let records = store.records().unwrap();
            assert_eq!(records.len(), all.len());
            records.len()
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_append, bench_replay_and_readback);
criterion_main!(benches);
