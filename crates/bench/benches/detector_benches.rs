//! Per-detector throughput over a pre-generated log, plus the sharded
//! parallel runner.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_detect::baselines::{
    Cart, CartParams, Logistic, LogisticParams, NaiveBayes, RateLimiter, SessionModelDetector,
    SignatureOnly, TrainingSet,
};
use divscrape_detect::parallel::run_sharded_alerts;
use divscrape_detect::{run_alerts, Arcane, Detector, Sentinel, Sessionizer};
use divscrape_traffic::{generate, LabelledLog, ScenarioConfig};

fn log() -> LabelledLog {
    generate(&ScenarioConfig::small(3)).unwrap()
}

fn bench_detector<D: Detector + Clone>(
    c: &mut Criterion,
    name: &str,
    proto: &D,
    log: &LabelledLog,
) {
    let mut g = c.benchmark_group("detector");
    g.sample_size(10);
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function(name, |b| {
        b.iter(|| {
            let mut d = proto.clone();
            d.reset();
            run_alerts(&mut d, log.entries())
        })
    });
    g.finish();
}

fn bench_all(c: &mut Criterion) {
    let log = log();
    bench_detector(c, "sentinel_12k", &Sentinel::stock(), &log);
    bench_detector(c, "arcane_12k", &Arcane::stock(), &log);
    bench_detector(c, "rate_limiter_12k", &RateLimiter::new(60), &log);
    bench_detector(c, "signature_only_12k", &SignatureOnly::stock(), &log);

    let training = TrainingSet::from_log(&log, 5);
    let bayes = NaiveBayes::train(&training).unwrap();
    bench_detector(
        c,
        "naive_bayes_12k",
        &SessionModelDetector::new(bayes, 0.5, 3),
        &log,
    );
    let logistic = Logistic::train(&training, LogisticParams::default()).unwrap();
    bench_detector(
        c,
        "logistic_12k",
        &SessionModelDetector::new(logistic, 0.5, 3),
        &log,
    );
    let cart = Cart::train(&training, CartParams::default()).unwrap();
    bench_detector(
        c,
        "cart_12k",
        &SessionModelDetector::new(cart, 0.5, 3),
        &log,
    );
}

fn bench_sessionizer(c: &mut Criterion) {
    let log = log();
    let mut g = c.benchmark_group("detector");
    g.sample_size(10);
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("sessionizer_12k", |b| {
        b.iter(|| {
            let mut s = Sessionizer::default();
            for e in log.entries() {
                let _ = s.observe(e);
            }
            s.active_clients()
        })
    });
    g.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let log = log();
    let mut g = c.benchmark_group("detector/sharded_sentinel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(log.len() as u64));
    for workers in [1usize, 2] {
        g.bench_function(format!("{workers}_workers"), |b| {
            b.iter(|| run_sharded_alerts(&Sentinel::stock(), log.entries(), workers))
        });
    }
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let log = log();
    let training = TrainingSet::from_log(&log, 3);
    let mut g = c.benchmark_group("detector/train");
    g.sample_size(10);
    g.bench_function("naive_bayes", |b| {
        b.iter(|| NaiveBayes::train(&training).unwrap())
    });
    g.bench_function("logistic_sgd", |b| {
        b.iter(|| Logistic::train(&training, LogisticParams::default()).unwrap())
    });
    g.bench_function("cart", |b| {
        b.iter(|| Cart::train(&training, CartParams::default()).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_all,
    bench_sessionizer,
    bench_sharded,
    bench_training
);
criterion_main!(benches);
