//! Hierarchical triage: the first-pass filter's per-entry cost and the
//! end-to-end pipeline win it buys on benign-heavy traffic.
//!
//! Two groups:
//!
//! * `triage/classify` — [`FastTriage::classify`] alone over parsed
//!   views, the cost every entry pays before the detectors run. The
//!   triage claim only works if this is nanoseconds, not microseconds.
//! * `triage/pipeline_*` — the full five-detector pipeline with triage
//!   off versus the stock policy, over a benign-heavy log at 1%
//!   suspicious (the operating point the `triage_bench` example gates
//!   in CI; this group tracks the same race under criterion's
//!   statistics).
//!
//! Scale defaults to `small` (12k requests); set `DIVSCRAPE_BENCH_SCALE`
//! for larger runs:
//!
//! ```text
//! DIVSCRAPE_BENCH_SCALE=medium cargo bench -p divscrape-bench --bench triage_benches
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_detect::baselines::{RateLimiter, SignatureOnly};
use divscrape_detect::triage::{TriageFilter, TriagePolicy};
use divscrape_detect::{Arcane, FastTriage, Sentinel, TrapDetector};
use divscrape_httplog::LogEntry;
use divscrape_pipeline::{Adjudication, Pipeline, PipelineBuilder};
use divscrape_traffic::generate;

fn lines() -> Vec<String> {
    let scale = std::env::var("DIVSCRAPE_BENCH_SCALE").unwrap_or_else(|_| "small".to_owned());
    let target = match scale.as_str() {
        "tiny" => 1_200,
        "small" => 12_000,
        "medium" => 120_000,
        other => panic!("unknown scale `{other}` (expected tiny|small|medium)"),
    };
    let scenario = divscrape_traffic::ScenarioConfig::benign_heavy(2018, target, 0.01);
    generate(&scenario)
        .unwrap()
        .entries()
        .iter()
        .map(|e| e.to_string())
        .collect()
}

fn build_pipeline(triage: bool) -> Pipeline {
    let mut builder = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(TrapDetector::default())
        .detector(RateLimiter::default())
        .detector(SignatureOnly::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(1);
    if triage {
        builder = builder.triage(TriagePolicy::fast());
    }
    builder.build().expect("bench pipeline")
}

fn bench_triage(c: &mut Criterion) {
    let lines = lines();
    let entries: Vec<LogEntry> = lines
        .iter()
        .map(|l| LogEntry::parse(l).expect("generated line parses"))
        .collect();

    let mut g = c.benchmark_group("triage");
    g.sample_size(10);
    g.throughput(Throughput::Elements(entries.len() as u64));

    g.bench_function("classify", |b| {
        b.iter(|| {
            let mut filter = FastTriage::stock();
            let mut escalations = 0u64;
            for e in &entries {
                if matches!(
                    filter.classify(e),
                    divscrape_detect::triage::TriageDecision::Escalate
                ) {
                    escalations += 1;
                }
            }
            escalations
        })
    });

    for (name, triage) in [("pipeline_off", false), ("pipeline_triaged", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                // Fresh pipeline per pass: re-feeding one pipeline would
                // replay the same time window and distort the detectors.
                let mut pipeline = build_pipeline(triage);
                for line in &lines {
                    pipeline.push_line(line).expect("generated line parses");
                }
                pipeline.drain().combined.count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_triage);
criterion_main!(benches);
