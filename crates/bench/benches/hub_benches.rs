//! Multi-tenant hub throughput: what does per-tenant isolation cost?
//!
//! One interleaved T-tenant stream is pushed two ways:
//!
//! 1. **`single_pipeline_interleaved`** — the pre-hub deployment: one
//!    shared pipeline swallows all T tenants' traffic mixed together
//!    (no isolation, shared detector state — cheaper, but wrong for a
//!    multi-tenant service).
//! 2. **`hub/T`** — a `PipelineHub` with T per-tenant pipelines of the
//!    same composition, routing each entry to its owner.
//!
//! A second group, `service_sharding`, prices the service plane's
//! per-tenant *driver* threads: the same line stream through a
//! 1-shard `ServicePlane` (one driver, the hub's execution model) vs a
//! 4-shard plane (client-hash sharding, one driver thread per shard).
//!
//! Scale defaults to `small` (12k requests per tenant); set
//! `DIVSCRAPE_BENCH_SCALE` for paper-scale runs:
//!
//! ```text
//! DIVSCRAPE_BENCH_SCALE=paper cargo bench -p divscrape-bench --bench hub_benches
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_bench::scenario_for;
use divscrape_detect::{Arcane, Sentinel, TenantId};
use divscrape_httplog::LogEntry;
use divscrape_pipeline::{Adjudication, PipelineBuilder, PipelineHub};
use divscrape_service::ServicePlane;

const TENANTS: usize = 4;

fn two_tool() -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
}

/// Per-tenant logs plus the round-robin-interleaved tagged stream.
fn tenant_traffic() -> (Vec<TenantId>, Vec<(usize, LogEntry)>) {
    let scale = std::env::var("DIVSCRAPE_BENCH_SCALE").unwrap_or_else(|_| "small".to_owned());
    let tenants: Vec<TenantId> = (0..TENANTS)
        .map(|i| TenantId::new(format!("tenant-{i}")))
        .collect();
    let logs: Vec<Vec<LogEntry>> = (0..TENANTS)
        .map(|i| {
            let scenario = scenario_for(&scale, 11 + i as u64).expect("DIVSCRAPE_BENCH_SCALE");
            divscrape_traffic::generate(&scenario)
                .unwrap()
                .entries()
                .to_vec()
        })
        .collect();
    let longest = logs.iter().map(Vec::len).max().unwrap();
    let mut interleaved = Vec::with_capacity(logs.iter().map(Vec::len).sum());
    for i in 0..longest {
        for (t, log) in logs.iter().enumerate() {
            if let Some(entry) = log.get(i) {
                interleaved.push((t, entry.clone()));
            }
        }
    }
    (tenants, interleaved)
}

fn bench_hub_routing(c: &mut Criterion) {
    let (tenants, interleaved) = tenant_traffic();

    let mut g = c.benchmark_group("hub_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(interleaved.len() as u64));

    // Baseline: every tenant's traffic through ONE shared pipeline.
    g.bench_function("single_pipeline_interleaved", |b| {
        b.iter(|| {
            let mut pipeline = two_tool().build().unwrap();
            for (_, entry) in &interleaved {
                pipeline.push(entry.clone());
            }
            pipeline.drain().combined.count()
        })
    });

    // The service: T isolated pipelines behind the routing hub.
    g.bench_function(format!("hub/{TENANTS}_tenants"), |b| {
        b.iter(|| {
            let mut builder = PipelineHub::builder();
            for tenant in &tenants {
                builder = builder.tenant(tenant.clone(), two_tool());
            }
            let mut hub = builder.build().unwrap();
            for (t, entry) in &interleaved {
                hub.push(&tenants[*t], entry.clone());
            }
            let report = hub.drain_all();
            report
                .tenants
                .iter()
                .map(|(_, r)| r.combined.count())
                .sum::<u64>()
        })
    });
    g.finish();
}

fn bench_service_sharding(c: &mut Criterion) {
    let (_, interleaved) = tenant_traffic();
    // The plane ingests rendered CLF lines (its shard router hashes the
    // client fields straight off the line), so render once up front.
    let lines: Vec<String> = interleaved.iter().map(|(_, e)| e.to_string()).collect();

    let mut g = c.benchmark_group("service_sharding");
    g.sample_size(10);
    g.throughput(Throughput::Elements(lines.len() as u64));

    for shards in [1usize, 4] {
        g.bench_function(format!("plane/{shards}_shard_drivers"), |b| {
            b.iter(|| {
                let tenant = TenantId::new("bench");
                let plane = ServicePlane::builder()
                    .queue_depth(4096)
                    .tenant(tenant.clone(), shards, |_, _| two_tool())
                    .build()
                    .unwrap();
                for line in &lines {
                    plane.ingest(&tenant, line.clone());
                }
                let reports = plane.drain_all();
                let alerts: u64 = reports
                    .iter()
                    .flat_map(|(_, rs)| rs.iter())
                    .map(|r| r.combined.count())
                    .sum();
                plane.shutdown();
                alerts
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hub_routing, bench_service_sharding);
criterion_main!(benches);
