//! Throughput of the access-log substrate: parse, format, stream.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use divscrape_httplog::{LogEntry, LogReader};
use divscrape_traffic::{generate, ScenarioConfig};
use std::hint::black_box;
use std::io::Cursor;

const SAMPLE: &str = r#"198.51.100.7 - - [11/Mar/2018:06:25:14 +0000] "GET /search?q=NCE-LHR&currency=EUR HTTP/1.1" 200 51234 "https://shop.example/" "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36""#;

fn bench_parse_line(c: &mut Criterion) {
    let mut g = c.benchmark_group("httplog");
    g.throughput(Throughput::Bytes(SAMPLE.len() as u64));
    g.bench_function("parse_combined_line", |b| {
        b.iter(|| LogEntry::parse(black_box(SAMPLE)).unwrap())
    });
    g.finish();
}

fn bench_format_line(c: &mut Criterion) {
    let entry = LogEntry::parse(SAMPLE).unwrap();
    c.bench_function("httplog/format_combined_line", |b| {
        b.iter(|| black_box(&entry).to_string())
    });
}

fn bench_stream_log(c: &mut Criterion) {
    // A realistic 12k-line log rendered to text, then streamed back.
    let log = generate(&ScenarioConfig::small(1)).unwrap();
    let mut text = Vec::new();
    log.write_log(&mut text).unwrap();
    let mut g = c.benchmark_group("httplog");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("stream_12k_lines", |b| {
        b.iter_batched(
            || Cursor::new(text.clone()),
            |cursor| {
                let n = LogReader::new(cursor).filter(Result::is_ok).count();
                assert_eq!(n, 12_000);
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parse_line,
    bench_format_line,
    bench_stream_log
);
criterion_main!(benches);
