//! Online-recalibration overhead: a recalibrating pipeline versus the
//! same composition with frozen weights.
//!
//! Recalibration adds work on the driver's finalization path only — one
//! EWMA observation per entry plus a periodic weight re-derivation — so
//! the interesting question is how much of the pipeline's throughput
//! that steals. Three variants run the identical detector composition
//! over the identical drifting log (`DriftScenario`, the population
//! shift that makes recalibration worth paying for):
//!
//! * `frozen` — no recalibrator at all (the PR-1 adjudication path).
//! * `recalibrating` — the peer-proxy recalibrator at a production-ish
//!   cadence (window 256, update every 4096 entries).
//! * `recalibrating-hot` — a deliberately absurd cadence (update every
//!   256 entries) to bound the cost of the re-derivation itself.
//!
//! Scale defaults to `small` (12k requests split over the two drift
//! phases) so `cargo bench` stays quick; set `DIVSCRAPE_BENCH_SCALE`
//! for paper-scale runs:
//!
//! ```text
//! DIVSCRAPE_BENCH_SCALE=paper cargo bench -p divscrape-bench --bench recalib_benches
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use divscrape_bench::scenario_for;
use divscrape_detect::baselines::RateLimiter;
use divscrape_detect::{Arcane, Sentinel};
use divscrape_pipeline::{Adjudication, Pipeline, PipelineBuilder, RecalibrationPolicy};
use divscrape_traffic::{DriftScenario, LabelledLog};

fn drift_log() -> LabelledLog {
    let scale = std::env::var("DIVSCRAPE_BENCH_SCALE").unwrap_or_else(|_| "small".to_owned());
    let scenario = scenario_for(&scale, 17).expect("DIVSCRAPE_BENCH_SCALE");
    DriftScenario::new(scenario.clone())
        .then(
            divscrape_traffic::PopulationMix::stealth_shift(),
            scenario.target_requests,
        )
        .generate()
        .unwrap()
}

fn composition(workers: usize) -> PipelineBuilder {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(RateLimiter::new(8))
        .adjudication(Adjudication::weighted(vec![1.0, 1.0, 1.0], 0.95))
        .workers(workers)
}

fn run_through(mut pipeline: Pipeline, log: &LabelledLog) -> u64 {
    pipeline.push_batch(log.entries());
    let _ = pipeline.drain();
    pipeline.stats().alerts
}

fn bench_recalibration_overhead(c: &mut Criterion) {
    let log = drift_log();
    for workers in [1usize, 4] {
        let mut group = c.benchmark_group(format!("recalibration/{workers}w"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(log.len() as u64));
        group.bench_function("frozen", |b| {
            b.iter_batched(
                || composition(workers).build().unwrap(),
                |pipeline| run_through(pipeline, &log),
                BatchSize::PerIteration,
            );
        });
        group.bench_function("recalibrating", |b| {
            b.iter_batched(
                || {
                    composition(workers)
                        .recalibration(RecalibrationPolicy::new().window(256).update_every(4_096))
                        .build()
                        .unwrap()
                },
                |pipeline| run_through(pipeline, &log),
                BatchSize::PerIteration,
            );
        });
        group.bench_function("recalibrating-hot", |b| {
            b.iter_batched(
                || {
                    composition(workers)
                        .recalibration(RecalibrationPolicy::new().window(256).update_every(256))
                        .build()
                        .unwrap()
                },
                |pipeline| run_through(pipeline, &log),
                BatchSize::PerIteration,
            );
        });
        group.finish();
    }
}

criterion_group!(benches, bench_recalibration_overhead);
criterion_main!(benches);
