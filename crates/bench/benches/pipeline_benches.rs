//! Pipeline driver throughput: the persistent worker pool versus the
//! scoped-spawn-per-flush driver it replaced.
//!
//! Both drivers do identical work per chunk — client-shard, run every
//! detector's batched path over each shard, scatter verdicts back,
//! adjudicate 1-of-2 — and both keep per-worker detector replicas alive
//! across flushes. The difference is the thread model: the scoped driver
//! pays a spawn/join per worker on *every* chunk flush, while the pool
//! reuses long-lived workers fed through bounded queues and overlaps the
//! driver's sharding of chunk *n+1* with the detectors on chunk *n*.
//!
//! Scale defaults to `small` (12k requests) so `cargo bench` stays
//! quick; set `DIVSCRAPE_BENCH_SCALE` for paper-scale runs:
//!
//! ```text
//! DIVSCRAPE_BENCH_SCALE=paper cargo bench -p divscrape-bench --bench pipeline_benches
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_bench::scenario_for;
use divscrape_detect::parallel::run_index_runs;
use divscrape_detect::{Arcane, Detector, Sentinel, Sessionizer, Verdict};
use divscrape_ensemble::{AlertVector, KOutOfN};
use divscrape_httplog::LogEntry;
use divscrape_pipeline::{Adjudication, PipelineBuilder};
use divscrape_traffic::LabelledLog;

const CHUNK: usize = 4_096;
const MEMBER_NAMES: [&str; 2] = ["sentinel", "arcane"];

fn log() -> LabelledLog {
    let scale = std::env::var("DIVSCRAPE_BENCH_SCALE").unwrap_or_else(|_| "small".to_owned());
    let scenario = scenario_for(&scale, 3).expect("DIVSCRAPE_BENCH_SCALE");
    divscrape_traffic::generate(&scenario).unwrap()
}

/// The pre-pool engine, reproduced faithfully for comparison: entries
/// are buffered and drained into owned chunks exactly as the pipeline
/// does, per-worker detector replicas persist across flushes, workers=1
/// runs inline on the driver — but every multi-worker chunk flush
/// client-shards the chunk and spawns a fresh scoped thread per
/// participating worker, which is the per-flush cost the pool removes.
struct ScopedSpawnDriver {
    crews: Vec<Vec<Box<dyn Detector + Send>>>,
    rule: KOutOfN,
    buffer: Vec<LogEntry>,
    alerts: usize,
}

impl ScopedSpawnDriver {
    fn new(workers: usize) -> Self {
        Self {
            crews: (0..workers)
                .map(|_| {
                    vec![
                        Box::new(Sentinel::stock()) as Box<dyn Detector + Send>,
                        Box::new(Arcane::stock()) as Box<dyn Detector + Send>,
                    ]
                })
                .collect(),
            rule: KOutOfN::new(1, 2).unwrap(),
            buffer: Vec::new(),
            alerts: 0,
        }
    }

    fn push_batch(&mut self, entries: &[LogEntry]) {
        self.buffer.extend_from_slice(entries);
        while self.buffer.len() >= CHUNK {
            let chunk: Vec<LogEntry> = self.buffer.drain(..CHUNK).collect();
            self.process_chunk(chunk);
        }
    }

    fn drain(&mut self) -> usize {
        if !self.buffer.is_empty() {
            let residue = std::mem::take(&mut self.buffer);
            self.process_chunk(residue);
        }
        self.alerts
    }

    fn process_chunk(&mut self, chunk: Vec<LogEntry>) {
        let workers = self.crews.len();
        let n_detectors = MEMBER_NAMES.len();

        let columns: Vec<Vec<Verdict>> = if workers == 1 {
            self.crews[0]
                .iter_mut()
                .map(|det| {
                    let mut col = Vec::with_capacity(chunk.len());
                    det.observe_batch(&chunk, &mut col);
                    col
                })
                .collect()
        } else {
            let mut shards: Vec<Vec<usize>> = vec![Vec::new(); workers];
            for (i, e) in chunk.iter().enumerate() {
                shards[Sessionizer::shard_of(&e.client_key(), workers)].push(i);
            }
            let chunk_ref = &chunk;
            let results: Vec<Vec<Vec<(usize, Verdict)>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .crews
                    .iter_mut()
                    .zip(&shards)
                    .filter(|(_, shard)| !shard.is_empty())
                    .map(|(crew, shard)| {
                        scope.spawn(move || {
                            crew.iter_mut()
                                .map(|det| run_index_runs(det, chunk_ref, shard))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scoped worker panicked"))
                    .collect()
            });
            let mut columns = vec![vec![Verdict::CLEAR; chunk.len()]; n_detectors];
            for per_detector in results {
                for (d, pairs) in per_detector.into_iter().enumerate() {
                    for (i, v) in pairs {
                        columns[d][i] = v;
                    }
                }
            }
            columns
        };

        let vectors: Vec<AlertVector> = columns
            .iter()
            .zip(MEMBER_NAMES)
            .map(|(col, name)| {
                let bools: Vec<bool> = col.iter().map(|v| v.alert).collect();
                AlertVector::from_bools(name, &bools)
            })
            .collect();
        let refs: Vec<&AlertVector> = vectors.iter().collect();
        self.alerts += self.rule.apply(&refs).count() as usize;
    }
}

fn bench_drivers(c: &mut Criterion) {
    let log = log();
    let entries = log.entries();

    // Sanity: both drivers agree before we time them.
    let expected = {
        let mut pipeline = PipelineBuilder::new()
            .detector(Sentinel::stock())
            .detector(Arcane::stock())
            .adjudication(Adjudication::k_of_n(1))
            .workers(2)
            .chunk_capacity(CHUNK)
            .build()
            .unwrap();
        pipeline.push_batch(entries);
        pipeline.drain().combined.count() as usize
    };
    let mut scoped = ScopedSpawnDriver::new(2);
    scoped.push_batch(entries);
    assert_eq!(scoped.drain(), expected, "drivers disagree on alert count");

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(entries.len() as u64));
    // Both engines run workers=1 inline on the driver (no threads), so
    // 1w is the parity baseline; the drivers differ — and the pool's
    // spawn-amortization and overlap pay off — for workers > 1.
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("persistent_pool_{workers}w"), |b| {
            b.iter(|| {
                let mut pipeline = PipelineBuilder::new()
                    .detector(Sentinel::stock())
                    .detector(Arcane::stock())
                    .adjudication(Adjudication::k_of_n(1))
                    .workers(workers)
                    .chunk_capacity(CHUNK)
                    .build()
                    .unwrap();
                for chunk in entries.chunks(997) {
                    pipeline.push_batch(chunk);
                }
                pipeline.drain().combined.count()
            })
        });
        g.bench_function(format!("scoped_spawn_{workers}w"), |b| {
            b.iter(|| {
                let mut driver = ScopedSpawnDriver::new(workers);
                for chunk in entries.chunks(997) {
                    driver.push_batch(chunk);
                }
                driver.drain()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_drivers);
criterion_main!(benches);
