//! The two benches the ROADMAP asked for on the ingestion side:
//!
//! 1. **`observe` vs `observe_batch`** per stock detector — how much the
//!    specialized batch hot paths (per-client-run amortization of
//!    hashing, whitelist checks, signature/reputation lookups) buy over
//!    the per-entry loop, detector by detector.
//! 2. **Replay-source ingestion throughput** — the full live-ingestion
//!    stack (replay source → line parse → driver → pipeline pool →
//!    adjudication) against bare `push_batch` of pre-parsed entries,
//!    pricing the CLF-line round-trip.
//!
//! Scale defaults to `small` (12k requests); set `DIVSCRAPE_BENCH_SCALE`
//! for paper-scale runs:
//!
//! ```text
//! DIVSCRAPE_BENCH_SCALE=paper cargo bench -p divscrape-bench --bench ingest_benches
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use divscrape_bench::scenario_for;
use divscrape_detect::baselines::{RateLimiter, SignatureOnly};
use divscrape_detect::{Arcane, Detector, Sentinel, Verdict};
use divscrape_ingest::{IngestDriver, Replay, ReplayPace};
use divscrape_pipeline::{Adjudication, PipelineBuilder};
use divscrape_traffic::LabelledLog;

fn log() -> LabelledLog {
    let scale = std::env::var("DIVSCRAPE_BENCH_SCALE").unwrap_or_else(|_| "small".to_owned());
    let scenario = scenario_for(&scale, 3).expect("DIVSCRAPE_BENCH_SCALE");
    divscrape_traffic::generate(&scenario).unwrap()
}

/// Benches one detector both ways over the same log: the per-entry
/// `observe` loop against the specialized `observe_batch` fast path.
fn bench_hot_paths<D: Detector + Clone>(
    c: &mut Criterion,
    name: &str,
    proto: &D,
    log: &LabelledLog,
) {
    let entries = log.entries();

    // The contract the speedup must not break: identical verdicts.
    let mut per_entry = proto.clone();
    let sequential: Vec<Verdict> = entries.iter().map(|e| per_entry.observe(e)).collect();
    let mut batched = proto.clone();
    let mut fast = Vec::new();
    batched.observe_batch(entries, &mut fast);
    assert_eq!(sequential, fast, "{name}: batch path diverged");

    let mut g = c.benchmark_group(format!("hot_path/{name}"));
    g.sample_size(10);
    g.throughput(Throughput::Elements(entries.len() as u64));
    g.bench_function("observe", |b| {
        b.iter(|| {
            let mut d = proto.clone();
            d.reset();
            let mut alerts = 0usize;
            for e in entries {
                alerts += usize::from(d.observe(e).alert);
            }
            alerts
        })
    });
    g.bench_function("observe_batch", |b| {
        b.iter(|| {
            let mut d = proto.clone();
            d.reset();
            let mut out = Vec::with_capacity(entries.len());
            d.observe_batch(entries, &mut out);
            out.iter().filter(|v| v.alert).count()
        })
    });
    g.finish();
}

fn bench_stock_detectors(c: &mut Criterion) {
    let log = log();
    bench_hot_paths(c, "sentinel", &Sentinel::stock(), &log);
    bench_hot_paths(c, "arcane", &Arcane::stock(), &log);
    bench_hot_paths(c, "rate_limiter", &RateLimiter::new(60), &log);
    bench_hot_paths(c, "signature_only", &SignatureOnly::stock(), &log);
}

/// The live-ingestion stack at full tilt: an unlimited-pace replay
/// source (rendered CLF lines, re-parsed per line) driven into the
/// two-tool pipeline, against `push_batch` of the pre-parsed entries —
/// the line-format tax on top of the engine.
fn bench_replay_ingestion(c: &mut Criterion) {
    let log = log();
    let entries = log.entries();
    let lines: Vec<String> = entries.iter().map(ToString::to_string).collect();

    let build = || {
        PipelineBuilder::new()
            .detector(Sentinel::stock())
            .detector(Arcane::stock())
            .adjudication(Adjudication::k_of_n(1))
            .workers(2)
            .build()
            .unwrap()
    };

    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(entries.len() as u64));
    g.bench_function("replay_source_driver", |b| {
        b.iter(|| {
            let mut driver = IngestDriver::new(build());
            let mut source = Replay::from_lines(lines.clone(), ReplayPace::Unlimited);
            let outcome = driver.run(&mut source).unwrap();
            assert_eq!(outcome.stats.parse_errors, 0);
            outcome.report.combined.count()
        })
    });
    g.bench_function("push_batch_baseline", |b| {
        b.iter(|| {
            let mut pipeline = build();
            pipeline.push_batch(entries);
            pipeline.drain().combined.count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stock_detectors, bench_replay_ingestion);
criterion_main!(benches);
