//! One benchmark per paper table: the cost of regenerating each of the
//! paper's four tables from raw verdicts, plus the end-to-end study.

use criterion::{criterion_group, criterion_main, Criterion};
use divscrape::{tables, DiversityStudy, StudyConfig};
use divscrape_ensemble::{Contingency, StatusBreakdown};
use divscrape_traffic::ScenarioConfig;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let report = DiversityStudy::new(StudyConfig::new(ScenarioConfig::small(5)))
        .run()
        .unwrap();

    let mut g = c.benchmark_group("tables");
    // Table 1: per-tool alert totals.
    g.bench_function("table1_totals", |b| {
        b.iter(|| {
            (
                black_box(&report.sentinel).count(),
                black_box(&report.arcane).count(),
            )
        })
    });
    // Table 2: contingency.
    g.bench_function("table2_contingency", |b| {
        b.iter(|| Contingency::of(black_box(&report.sentinel), black_box(&report.arcane)))
    });
    // Table 3: per-status breakdown, both tools.
    g.bench_function("table3_status_overall", |b| {
        b.iter(|| {
            (
                StatusBreakdown::of(&report.sentinel, report.log.entries()),
                StatusBreakdown::of(&report.arcane, report.log.entries()),
            )
        })
    });
    // Table 4: per-status breakdown of the exclusive sets.
    g.bench_function("table4_status_exclusive", |b| {
        b.iter(|| {
            let s_only = report.sentinel.minus(&report.arcane);
            let a_only = report.arcane.minus(&report.sentinel);
            (
                StatusBreakdown::of(&s_only, report.log.entries()),
                StatusBreakdown::of(&a_only, report.log.entries()),
            )
        })
    });
    // Rendering all four tables as text.
    g.bench_function("render_all_tables", |b| {
        b.iter(|| tables::full_report(black_box(&report)).len())
    });
    g.finish();

    let mut g = c.benchmark_group("study");
    g.sample_size(10);
    // End-to-end: generate + detect + analyze at small scale.
    g.bench_function("end_to_end_small_12k", |b| {
        b.iter(|| {
            DiversityStudy::new(StudyConfig::new(ScenarioConfig::small(6)))
                .run()
                .unwrap()
                .total_requests()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
