//! E7: labelled per-tool quality and ROC/AUC analysis, including the
//! related-work ML baselines trained on a held-out labelled run.

use std::process::ExitCode;

use divscrape_bench::parse_options;
use divscrape_detect::baselines::{
    Cart, CartParams, Logistic, LogisticParams, NaiveBayes, RateLimiter, SessionModelDetector,
    SignatureOnly, TrainingSet,
};
use divscrape_detect::{run, Arcane, Detector, Sentinel};
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{AlertVector, ConfusionMatrix, RocCurve};
use divscrape_traffic::generate;

fn evaluate(
    name: &str,
    detector: &mut dyn Detector,
    log: &divscrape_traffic::LabelledLog,
    table: &mut TextTable,
) {
    let verdicts = run(detector, log.entries());
    let alerts: Vec<bool> = verdicts.iter().map(|v| v.alert).collect();
    let scores: Vec<f32> = verdicts.iter().map(|v| v.score).collect();
    let vector = AlertVector::from_bools(name, &alerts);
    let cm = ConfusionMatrix::of(&vector, log.truth());
    let auc = RocCurve::from_scores(&scores, log.truth())
        .map(|r| format!("{:.4}", r.auc()))
        .unwrap_or_else(|_| "n/a".into());
    table.row_owned(vec![
        name.to_owned(),
        percent(cm.sensitivity()),
        percent(cm.specificity()),
        percent(cm.precision()),
        format!("{:.4}", cm.f1()),
        auc,
    ]);
}

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "E7 labelled quality + ROC — scale={} seed={} (baselines train on seed {})\n",
        opts.scale,
        opts.seed,
        opts.seed + 1
    );

    let log = match generate(&opts.scenario) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Train the learned baselines on a *different* seed at small scale:
    // the models must generalise across runs, not memorise one.
    let mut train_scenario = opts.scenario.clone();
    train_scenario.seed = opts.seed + 1;
    train_scenario.target_requests = train_scenario.target_requests.min(60_000);
    let train_log = generate(&train_scenario).expect("training scenario is valid");
    let training = TrainingSet::from_log(&train_log, 3);

    let bayes = NaiveBayes::train(&training).expect("two classes present");
    let logistic =
        Logistic::train(&training, LogisticParams::default()).expect("two classes present");
    let cart = Cart::train(&training, CartParams::default()).expect("nonempty training set");

    let mut t = TextTable::new("Per-detector labelled quality and AUC");
    t.columns(&[
        "Detector",
        "Sensitivity",
        "Specificity",
        "Precision",
        "F1",
        "AUC",
    ]);
    evaluate("sentinel", &mut Sentinel::stock(), &log, &mut t);
    evaluate("arcane", &mut Arcane::stock(), &log, &mut t);
    evaluate(
        "rate-limiter(60/min)",
        &mut RateLimiter::new(60),
        &log,
        &mut t,
    );
    evaluate("signature-only", &mut SignatureOnly::stock(), &log, &mut t);
    evaluate(
        "naive-bayes",
        &mut SessionModelDetector::new(bayes, 0.5, 3),
        &log,
        &mut t,
    );
    evaluate(
        "logistic",
        &mut SessionModelDetector::new(logistic, 0.5, 3),
        &log,
        &mut t,
    );
    evaluate(
        "cart",
        &mut SessionModelDetector::new(cart, 0.5, 3),
        &log,
        &mut t,
    );
    println!("{}", t.render());

    // Print the Arcane score ROC as a plottable series (threshold sweep).
    let verdicts = run(&mut Arcane::stock(), log.entries());
    let scores: Vec<f32> = verdicts.iter().map(|v| v.score).collect();
    match RocCurve::from_scores(&scores, log.truth()) {
        Ok(roc) => {
            println!("Arcane score ROC (AUC {:.4}):", roc.auc());
            println!("threshold  fpr      tpr");
            for p in roc.sampled(12) {
                println!("{:>9.2}  {:.5}  {:.5}", p.threshold, p.fpr, p.tpr);
            }
            let best = roc.best_youden();
            println!(
                "best Youden J at threshold {:.2}: tpr={:.4} fpr={:.4}",
                best.threshold, best.tpr, best.fpr
            );
        }
        Err(e) => println!("ROC unavailable: {e}"),
    }
    ExitCode::SUCCESS
}
