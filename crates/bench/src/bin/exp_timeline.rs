//! E9: the time dimension the paper's aggregate tables hide — daily alert
//! rates and daily disagreement over the 8-day window, showing whether the
//! measured diversity is a stable structural property of the tool pair.

use std::process::ExitCode;

use divscrape::{DiversityStudy, StudyConfig};
use divscrape_bench::parse_options;
use divscrape_ensemble::timeseries::DailySeries;

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "E9 daily alerting timeline — scale={} seed={}\n",
        opts.scale, opts.seed
    );
    let report = match DiversityStudy::new(StudyConfig::new(opts.scenario).with_workers(2)).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let series = DailySeries::of(
        report.log.entries(),
        &report.sentinel,
        &report.arcane,
        report.log.window_start(),
        report.log.window_days(),
    );
    println!("{}", series.render());
    println!(
        "Max day-to-day swing in disagreement rate: {:.2} percentage points",
        series.disagreement_swing() * 100.0
    );
    println!(
        "\nReading: every day shows the same structure — the commercial tool a few\npoints ahead, disagreement in the single digits — so the paper's one-week\nsnapshot is representative rather than an artefact of a noisy day."
    );
    ExitCode::SUCCESS
}
