//! E8: ablation — what each Sentinel signal family and each Arcane rule
//! contributes to alert volume and labelled quality.

use std::process::ExitCode;

use divscrape_bench::parse_options;
use divscrape_detect::{
    run_alerts, Arcane, ArcaneConfig, ReputationFeed, Sentinel, SentinelConfig, SignatureEngine,
};
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{AlertVector, ConfusionMatrix};
use divscrape_pipeline::{PipelineBuilder, PipelineDetector};
use divscrape_traffic::{generate, LabelledLog};

fn measure(alerts: &AlertVector, log: &LabelledLog) -> (f64, f64, f64) {
    let cm = ConfusionMatrix::of(alerts, log.truth());
    (alerts.rate(), cm.sensitivity(), cm.fpr())
}

/// Streams the log through one ablated detector on a two-worker pipeline;
/// every ablation row gets the sharded fast path with identical verdicts.
fn stream_alerts<D: PipelineDetector + 'static>(detector: D, log: &LabelledLog) -> AlertVector {
    let mut pipeline = PipelineBuilder::new()
        .detector(detector)
        .workers(2)
        .build()
        .expect("a single detector always composes");
    pipeline.push_batch(log.entries());
    let mut streamed = pipeline.drain();
    streamed.members.remove(0)
}

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!("E8 ablation — scale={} seed={}\n", opts.scale, opts.seed);
    let log = match generate(&opts.scenario) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Sentinel: drop one signal at a time.
    let mut t = TextTable::new("Sentinel signal ablation (drop one signal)");
    t.columns(&["Configuration", "Alert rate", "Sensitivity", "FPR"]);
    let stock = stream_alerts(Sentinel::stock(), &log);
    let (rate, sens, fpr) = measure(&stock, &log);
    t.row_owned(vec![
        "stock (all signals)".into(),
        percent(rate),
        percent(sens),
        percent(fpr),
    ]);
    for signal in SentinelConfig::SIGNALS {
        let cfg = SentinelConfig::default().without(signal);
        let alerts = stream_alerts(
            Sentinel::new(cfg, SignatureEngine::stock(), ReputationFeed::stock()),
            &log,
        );
        let (rate, sens, fpr) = measure(&alerts, &log);
        t.row_owned(vec![
            format!("without {signal}"),
            percent(rate),
            percent(sens),
            percent(fpr),
        ]);
    }
    println!("{}", t.render());

    // Arcane: drop one rule at a time.
    let mut t = TextTable::new("Arcane rule ablation (drop one rule)");
    t.columns(&["Configuration", "Alert rate", "Sensitivity", "FPR"]);
    let stock = stream_alerts(Arcane::stock(), &log);
    let (rate, sens, fpr) = measure(&stock, &log);
    t.row_owned(vec![
        "stock (all rules)".into(),
        percent(rate),
        percent(sens),
        percent(fpr),
    ]);
    for rule in ArcaneConfig::RULES {
        let alerts = stream_alerts(Arcane::new(ArcaneConfig::default().without(rule)), &log);
        let (rate, sens, fpr) = measure(&alerts, &log);
        t.row_owned(vec![
            format!("without {rule}"),
            percent(rate),
            percent(sens),
            percent(fpr),
        ]);
    }
    println!("{}", t.render());

    // Where do the first trips come from with everything enabled?
    let mut sentinel = Sentinel::stock();
    let _ = run_alerts(&mut sentinel, log.entries());
    println!(
        "Sentinel first-trip signal counts (clients): {:?}",
        sentinel.trip_counts()
    );
    let mut arcane = Arcane::stock();
    let _ = run_alerts(&mut arcane, log.entries());
    println!(
        "Arcane rule hit counts (alerting requests): {:?}",
        arcane.rule_hits()
    );
    ExitCode::SUCCESS
}
