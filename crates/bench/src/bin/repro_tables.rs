//! E1–E4: regenerates the paper's Tables 1–4 (paper vs. measured) and runs
//! the shape-reproduction checks.
//!
//! ```text
//! cargo run --release -p divscrape-bench --bin repro_tables            # paper scale
//! cargo run --release -p divscrape-bench --bin repro_tables -- --scale medium
//! ```

use std::process::ExitCode;
use std::time::Instant;

use divscrape::{calibration, tables, DiversityStudy, StudyConfig};
use divscrape_bench::parse_options;

fn main() -> ExitCode {
    let opts = match parse_options("paper") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "divscrape table reproduction — scale={} seed={} ({} requests)\n",
        opts.scale, opts.seed, opts.scenario.target_requests
    );

    let started = Instant::now();
    let study = DiversityStudy::new(StudyConfig::new(opts.scenario).with_workers(2));
    let report = match study.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "generated + analyzed {} requests in {:.2?}\n",
        report.total_requests(),
        started.elapsed()
    );

    println!("{}", tables::table1(&report));
    println!("{}", tables::table2(&report));
    println!("{}", tables::table3(&report));
    println!("{}", tables::table4(&report));
    println!("{}", tables::labelled_metrics(&report));
    println!("{}", tables::per_actor(&report));

    let findings = calibration::check_shape(&report);
    println!("{}", calibration::render_findings(&findings));
    if findings.iter().all(|f| f.passed) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
