//! E6: parallel vs. serial deployment of the two tools — detection quality
//! against per-stage analysis cost (the paper's Section V trade-off).

use std::process::ExitCode;

use divscrape_bench::parse_options;
use divscrape_detect::{Arcane, Sentinel};
use divscrape_ensemble::report::{percent, thousands, TextTable};
use divscrape_ensemble::{run_parallel, run_serial, ConfusionMatrix, SerialMode, TopologyOutcome};
use divscrape_traffic::generate;

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "E6 deployment topologies — scale={} seed={}\n",
        opts.scale, opts.seed
    );
    let log = match generate(&opts.scenario) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let runs: Vec<(&str, TopologyOutcome)> = vec![
        (
            "parallel 1oo2",
            run_parallel(
                &mut Sentinel::stock(),
                &mut Arcane::stock(),
                log.entries(),
                true,
            ),
        ),
        (
            "parallel 2oo2",
            run_parallel(
                &mut Sentinel::stock(),
                &mut Arcane::stock(),
                log.entries(),
                false,
            ),
        ),
        (
            "serial sentinel→arcane confirm",
            run_serial(
                &mut Sentinel::stock(),
                &mut Arcane::stock(),
                log.entries(),
                SerialMode::Confirm,
            ),
        ),
        (
            "serial sentinel→arcane escalate",
            run_serial(
                &mut Sentinel::stock(),
                &mut Arcane::stock(),
                log.entries(),
                SerialMode::Escalate,
            ),
        ),
        (
            "serial arcane→sentinel confirm",
            run_serial(
                &mut Arcane::stock(),
                &mut Sentinel::stock(),
                log.entries(),
                SerialMode::Confirm,
            ),
        ),
        (
            "serial arcane→sentinel escalate",
            run_serial(
                &mut Arcane::stock(),
                &mut Sentinel::stock(),
                log.entries(),
                SerialMode::Escalate,
            ),
        ),
    ];

    let mut t = TextTable::new("Topology trade-offs (cost = requests each stage analyzes)");
    t.columns(&[
        "Topology",
        "Stage1 cost",
        "Stage2 cost",
        "Sensitivity",
        "Specificity",
        "FPR",
    ]);
    for (name, outcome) in &runs {
        let cm = ConfusionMatrix::of(&outcome.alerts, log.truth());
        t.row_owned(vec![
            (*name).to_owned(),
            thousands(outcome.first_processed),
            thousands(outcome.second_processed),
            percent(cm.sensitivity()),
            percent(cm.specificity()),
            percent(cm.fpr()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the escalate pipelines keep nearly all of parallel 1oo2's\nsensitivity while the second tool analyzes only the first tool's residue;\nconfirm pipelines approximate 2oo2 at a fraction of the second tool's load\n(but on bot-dominated traffic 'residue' is the cheaper stream to forward)."
    );
    ExitCode::SUCCESS
}
