//! E5: the paper's Section-V adjudication analysis on labelled data —
//! 1-out-of-2, 2-out-of-2 and weighted voting, with the full
//! sensitivity/specificity trade-off.

use std::process::ExitCode;

use divscrape::{DiversityStudy, StudyConfig};
use divscrape_bench::parse_options;
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{ConfusionMatrix, KOutOfN, WeightedVote};

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "E5 adjudication schemes — scale={} seed={}\n",
        opts.scale, opts.seed
    );

    let report = match DiversityStudy::new(StudyConfig::new(opts.scenario).with_workers(2)).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let truth = report.log.truth();
    let tools = [&report.sentinel, &report.arcane];

    let mut t = TextTable::new("Adjudication schemes over (sentinel, arcane)");
    t.columns(&[
        "Scheme",
        "Alerts",
        "Sensitivity",
        "Specificity",
        "FPR",
        "FNR",
        "Precision",
        "MCC",
    ]);
    let mut add = |name: &str, cm: &ConfusionMatrix, alerts: u64| {
        t.row_owned(vec![
            name.to_owned(),
            alerts.to_string(),
            percent(cm.sensitivity()),
            percent(cm.specificity()),
            percent(cm.fpr()),
            percent(cm.fnr()),
            percent(cm.precision()),
            format!("{:.4}", cm.mcc()),
        ]);
    };

    add(
        "sentinel alone",
        &report.labelled.sentinel,
        report.sentinel.count(),
    );
    add(
        "arcane alone",
        &report.labelled.arcane,
        report.arcane.count(),
    );

    for k in 1..=2u32 {
        let rule = KOutOfN::new(k, 2).expect("valid k");
        let combined = rule.apply(&tools);
        let cm = ConfusionMatrix::of(&combined, truth);
        add(&format!("{} ", rule.label()), &cm, combined.count());
    }

    // Weighted votes: trust the commercial tool 2:1, and the reverse.
    for (label, weights, threshold) in [
        ("weighted 2:1 sentinel", vec![2.0, 1.0], 2.0),
        ("weighted 1:2 arcane", vec![1.0, 2.0], 2.0),
    ] {
        let rule = WeightedVote::new(weights, threshold).expect("valid weights");
        let combined = rule.apply(&tools);
        let cm = ConfusionMatrix::of(&combined, truth);
        add(label, &cm, combined.count());
    }
    println!("{}", t.render());

    let o = &report.labelled.oracle;
    println!(
        "Joint correctness: both-correct={} only-sentinel={} only-arcane={} both-wrong={} (double fault {})",
        o.both_correct,
        o.only_first_correct,
        o.only_second_correct,
        o.both_wrong,
        percent(o.double_fault()),
    );
    println!(
        "\nReading: 1oo2 buys sensitivity (misses only the double faults), 2oo2 buys\nspecificity (false alarms need both tools fooled) — the trade-off the paper's\nSection V frames for labelled data."
    );
    ExitCode::SUCCESS
}
