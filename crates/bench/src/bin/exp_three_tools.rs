//! E11: a third diverse detector — the honeytrap — joins the pair. The
//! paper's closing question is "how diversity could enhance the detection
//! rate"; this experiment measures what a maximally different third tool
//! buys across every adjudication scheme.

use std::process::ExitCode;

use divscrape_bench::parse_options;
use divscrape_detect::{Arcane, Sentinel, TrapDetector};
use divscrape_ensemble::report::{percent, thousands, TextTable};
use divscrape_ensemble::{AgreementDiversity, ConfusionMatrix, KOutOfN, MultiContingency};
use divscrape_pipeline::{Adjudication, PipelineBuilder};
use divscrape_traffic::{generate, SiteModel};

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "E11 three diverse tools — scale={} seed={}\n",
        opts.scale, opts.seed
    );
    let site = SiteModel::new(opts.scenario.site_offers);
    let log = match generate(&opts.scenario) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // One streaming pipeline runs all three tools over the log; its report
    // hands back the per-member alert vectors the analyses consume.
    let mut pipeline = PipelineBuilder::new()
        .detector(Sentinel::stock())
        .detector(Arcane::stock())
        .detector(TrapDetector::for_site(&site))
        .adjudication(Adjudication::k_of_n(1))
        .workers(2)
        .build()
        .expect("three tools with 1oo3 compose");
    pipeline.push_batch(log.entries());
    let streamed = pipeline.drain();
    let [sentinel, arcane, trap]: [_; 3] =
        streamed.members.try_into().expect("three member vectors");
    let tools = [&sentinel, &arcane, &trap];

    // The full 8-cell agreement breakdown.
    let multi = MultiContingency::of(&tools);
    let mut t = TextTable::new("Three-tool agreement breakdown (all 8 alert patterns)");
    t.columns(&["Alerted by", "Count", "Share"]);
    let mut patterns: Vec<usize> = (0..8).collect();
    patterns.sort_by_key(|p| std::cmp::Reverse(multi.cell(*p)));
    for p in patterns {
        t.row_owned(vec![
            multi.pattern_label(p),
            thousands(multi.cell(p)),
            percent(multi.cell(p) as f64 / multi.total() as f64),
        ]);
    }
    println!("{}", t.render());

    // Pairwise diversity: the trap is far more "different" than the pair.
    let mut t = TextTable::new("Pairwise diversity");
    t.columns(&["Pair", "Yule Q", "Disagreement", "Kappa"]);
    for (name, a, b) in [
        ("sentinel vs arcane", &sentinel, &arcane),
        ("sentinel vs honeytrap", &sentinel, &trap),
        ("arcane vs honeytrap", &arcane, &trap),
    ] {
        let d = AgreementDiversity::of(a, b);
        t.row_owned(vec![
            name.to_owned(),
            format!("{:.4}", d.yule_q),
            percent(d.disagreement),
            format!("{:.4}", d.kappa),
        ]);
    }
    println!("{}", t.render());

    // Quality of every adjudication level.
    let mut t = TextTable::new("Adjudication over three tools (labelled)");
    t.columns(&["Scheme", "Sensitivity", "Specificity", "Precision"]);
    for (label, cm) in [
        (
            "sentinel alone",
            ConfusionMatrix::of(&sentinel, log.truth()),
        ),
        ("arcane alone", ConfusionMatrix::of(&arcane, log.truth())),
        ("honeytrap alone", ConfusionMatrix::of(&trap, log.truth())),
        (
            "1oo3",
            ConfusionMatrix::of(&KOutOfN::any(3).apply(&tools), log.truth()),
        ),
        (
            "2oo3 majority",
            ConfusionMatrix::of(&KOutOfN::new(2, 3).unwrap().apply(&tools), log.truth()),
        ),
        (
            "3oo3",
            ConfusionMatrix::of(&KOutOfN::all(3).apply(&tools), log.truth()),
        ),
    ] {
        t.row_owned(vec![
            label.to_owned(),
            percent(cm.sensitivity()),
            percent(cm.specificity()),
            percent(cm.precision()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the honeytrap alone has modest coverage but a ~zero false-positive\nrate, so it barely moves 1oo3 yet makes the 2oo3 majority nearly as sensitive\nas 1oo2 while keeping 2oo2-grade specificity — the concrete sense in which a\nthird *diverse* opinion \"enhances the detection rate\"."
    );
    ExitCode::SUCCESS
}
