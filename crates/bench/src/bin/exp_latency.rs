//! E10: detection latency — how many requests each attack population gets
//! through before each tool's first alert. This is the mechanism behind the
//! paper's single-tool exclusive alerts: identity-based signals fire
//! instantly, behavioural evidence takes a dozen requests.

use std::process::ExitCode;

use divscrape::{DiversityStudy, StudyConfig};
use divscrape_bench::parse_options;
use divscrape_ensemble::report::{percent, TextTable};
use divscrape_ensemble::{latency_by_actor, rollup_sessions};

fn main() -> ExitCode {
    let opts = match parse_options("medium") {
        Ok(o) => o,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "E10 detection latency — scale={} seed={}\n",
        opts.scale, opts.seed
    );
    let report = match DiversityStudy::new(StudyConfig::new(opts.scenario).with_workers(2)).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let sentinel = latency_by_actor(&rollup_sessions(&report.log, &report.sentinel));
    let arcane = latency_by_actor(&rollup_sessions(&report.log, &report.arcane));

    let mut t = TextTable::new("Per-session detection latency (requests before first alert)");
    t.columns(&[
        "Actor",
        "Sessions",
        "sentinel detect%",
        "sentinel med",
        "sentinel p90",
        "arcane detect%",
        "arcane med",
        "arcane p90",
    ]);
    for (actor, s) in &sentinel {
        let a = &arcane[actor];
        t.row_owned(vec![
            actor.name().to_owned(),
            s.sessions.to_string(),
            percent(s.detection_rate()),
            s.median_latency.to_string(),
            s.p90_latency.to_string(),
            percent(a.detection_rate()),
            a.median_latency.to_string(),
            a.p90_latency.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: the commercial tool flags signature/reputation-visible campaigns\non their very first request; the behavioural tool needs its evidence window\n(~12 bare page views). Those windows are precisely the requests that show up\nas 'Distil only' in the paper's Table 2."
    );
    ExitCode::SUCCESS
}
