//! Shared plumbing for the `divscrape` benchmark harness and the
//! table-reproduction binaries.
//!
//! Binaries (run with `cargo run --release -p divscrape-bench --bin <name>`):
//!
//! | Binary | Experiment | Regenerates |
//! |---|---|---|
//! | `repro_tables` | E1–E4 | Paper Tables 1, 2, 3, 4 + shape checks |
//! | `exp_adjudication` | E5 | Labelled 1oo2 / 2oo2 / weighted analysis |
//! | `exp_topology` | E6 | Parallel vs serial deployment trade-offs |
//! | `exp_roc` | E7 | ROC/AUC per detector and baseline |
//! | `exp_ablation` | E8 | Per-signal / per-rule contribution |
//!
//! All binaries accept `--scale tiny|small|medium|paper` (default differs
//! per binary) and `--seed <u64>` (default 2018).

use divscrape_traffic::ScenarioConfig;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// The scenario to run.
    pub scenario: ScenarioConfig,
    /// Human-readable scale name.
    pub scale: String,
    /// The seed in use.
    pub seed: u64,
}

/// Parses `--scale` / `--seed` from `std::env::args`.
///
/// # Errors
///
/// Returns a usage string on unknown flags or malformed values.
pub fn parse_options(default_scale: &str) -> Result<ExpOptions, String> {
    let mut scale = default_scale.to_owned();
    let mut seed = 2018u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args.next().ok_or("--scale needs a value")?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: [--scale tiny|small|medium|paper] [--seed N]   (default scale: {default_scale}, seed: 2018)"
                ));
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let scenario = scenario_for(&scale, seed)?;
    Ok(ExpOptions {
        scenario,
        scale,
        seed,
    })
}

/// Maps a scale name to its scenario preset.
///
/// # Errors
///
/// Returns an error message on an unknown scale name.
pub fn scenario_for(scale: &str, seed: u64) -> Result<ScenarioConfig, String> {
    match scale {
        "tiny" => Ok(ScenarioConfig::tiny(seed)),
        "small" => Ok(ScenarioConfig::small(seed)),
        "medium" => Ok(ScenarioConfig::medium(seed)),
        "paper" => Ok(ScenarioConfig::paper_scale(seed)),
        other => Err(format!(
            "unknown scale `{other}` (expected tiny|small|medium|paper)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_names_resolve() {
        assert_eq!(scenario_for("tiny", 1).unwrap().target_requests, 1_200);
        assert_eq!(scenario_for("small", 1).unwrap().target_requests, 12_000);
        assert_eq!(scenario_for("medium", 1).unwrap().target_requests, 120_000);
        assert_eq!(scenario_for("paper", 1).unwrap().target_requests, 1_469_744);
        assert!(scenario_for("galactic", 1).is_err());
    }
}
