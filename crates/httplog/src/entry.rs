//! One Combined Log Format record.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::{BuildLogEntryError, ParseLogError, ParseLogErrorKind};
use crate::{ClfTimestamp, HttpStatus, RequestLine, UserAgent};

/// A single Apache **Combined Log Format** record:
///
/// ```text
/// host ident authuser [timestamp] "request" status bytes "referer" "user-agent"
/// ```
///
/// This is exactly the information the paper's detectors observed — both
/// Distil-style and in-house tools in the study consume application-layer
/// HTTP access logs, nothing deeper.
///
/// Construction goes through [`LogEntry::builder`] (programmatic) or
/// [`LogEntry::parse`] (from a log line); `Display` renders the canonical
/// line, and `parse ∘ to_string` is the identity for every entry this
/// workspace produces.
///
/// ```
/// use divscrape_httplog::{ClfTimestamp, HttpMethod, LogEntry};
/// use std::net::Ipv4Addr;
///
/// let entry = LogEntry::builder()
///     .addr(Ipv4Addr::new(198, 51, 100, 7))
///     .timestamp(ClfTimestamp::PAPER_WINDOW_START)
///     .request("GET /search?q=NCE-LHR HTTP/1.1".parse()?)
///     .status(divscrape_httplog::HttpStatus::OK)
///     .bytes(Some(5123))
///     .user_agent("curl/7.58.0")
///     .build()?;
/// assert_eq!(entry.request().method(), HttpMethod::Get);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    addr: Ipv4Addr,
    ident: Option<String>,
    user: Option<String>,
    timestamp: ClfTimestamp,
    request: RequestLine,
    status: HttpStatus,
    bytes: Option<u64>,
    referrer: Option<String>,
    user_agent: UserAgent,
}

impl LogEntry {
    /// Starts building an entry. See [`LogEntryBuilder`].
    pub fn builder() -> LogEntryBuilder {
        LogEntryBuilder::default()
    }

    /// The client address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// RFC 1413 identity (`-` in practice).
    pub fn ident(&self) -> Option<&str> {
        self.ident.as_deref()
    }

    /// Authenticated user, if any.
    pub fn user(&self) -> Option<&str> {
        self.user.as_deref()
    }

    /// When the request completed.
    pub fn timestamp(&self) -> ClfTimestamp {
        self.timestamp
    }

    /// The request line.
    pub fn request(&self) -> &RequestLine {
        &self.request
    }

    /// The response status.
    pub fn status(&self) -> HttpStatus {
        self.status
    }

    /// Response body size in bytes; `None` renders as `-` (no body).
    pub fn bytes(&self) -> Option<u64> {
        self.bytes
    }

    /// The `Referer` header, if sent.
    pub fn referrer(&self) -> Option<&str> {
        self.referrer.as_deref()
    }

    /// The `User-Agent` header (possibly [empty](UserAgent::is_empty)).
    pub fn user_agent(&self) -> &UserAgent {
        &self.user_agent
    }

    /// Key identifying the *client* this entry belongs to: the address plus
    /// the user-agent fingerprint. Sessionizers and reputation caches key on
    /// this, mirroring how real tools separate distinct clients behind
    /// shared NAT addresses.
    pub fn client_key(&self) -> (Ipv4Addr, u64) {
        (self.addr, self.user_agent.fingerprint())
    }

    /// Parses a Combined Log Format line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLogError`] with the failing field kind and byte offset.
    pub fn parse(line: &str) -> Result<Self, ParseLogError> {
        parse_line(line)
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} [{}] \"{}\" {} ",
            self.addr,
            self.ident.as_deref().unwrap_or("-"),
            self.user.as_deref().unwrap_or("-"),
            self.timestamp,
            self.request,
            self.status,
        )?;
        match self.bytes {
            Some(n) => write!(f, "{n}")?,
            None => f.write_str("-")?,
        }
        write!(
            f,
            " \"{}\" \"{}\"",
            self.referrer.as_deref().unwrap_or("-"),
            self.user_agent
        )
    }
}

impl FromStr for LogEntry {
    type Err = ParseLogError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LogEntry::parse(s)
    }
}

/// Builder for [`LogEntry`].
///
/// Mandatory fields: `addr`, `timestamp`, `request`, `status`. Everything
/// else defaults to the CLF "absent" marker.
#[derive(Debug, Clone, Default)]
pub struct LogEntryBuilder {
    addr: Option<Ipv4Addr>,
    ident: Option<String>,
    user: Option<String>,
    timestamp: Option<ClfTimestamp>,
    request: Option<RequestLine>,
    status: Option<HttpStatus>,
    bytes: Option<u64>,
    referrer: Option<String>,
    user_agent: Option<UserAgent>,
}

impl LogEntryBuilder {
    /// Sets the client address (mandatory).
    pub fn addr(mut self, addr: Ipv4Addr) -> Self {
        self.addr = Some(addr);
        self
    }

    /// Sets the RFC 1413 identity (defaults to absent).
    pub fn ident(mut self, ident: impl Into<String>) -> Self {
        self.ident = Some(ident.into());
        self
    }

    /// Sets the authenticated user (defaults to absent).
    pub fn user(mut self, user: impl Into<String>) -> Self {
        self.user = Some(user.into());
        self
    }

    /// Sets the timestamp (mandatory).
    pub fn timestamp(mut self, t: ClfTimestamp) -> Self {
        self.timestamp = Some(t);
        self
    }

    /// Sets the request line (mandatory).
    pub fn request(mut self, r: RequestLine) -> Self {
        self.request = Some(r);
        self
    }

    /// Sets the response status (mandatory).
    pub fn status(mut self, s: HttpStatus) -> Self {
        self.status = Some(s);
        self
    }

    /// Sets the response size (`None` renders as `-`).
    pub fn bytes(mut self, bytes: Option<u64>) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets the referrer (defaults to absent).
    pub fn referrer(mut self, referrer: impl Into<String>) -> Self {
        self.referrer = Some(referrer.into());
        self
    }

    /// Sets the user agent (defaults to absent).
    pub fn user_agent(mut self, ua: impl Into<UserAgent>) -> Self {
        self.user_agent = Some(ua.into());
        self
    }

    /// Builds the entry.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLogEntryError`] naming the first missing mandatory
    /// field.
    pub fn build(self) -> Result<LogEntry, BuildLogEntryError> {
        Ok(LogEntry {
            addr: self.addr.ok_or_else(|| BuildLogEntryError::new("addr"))?,
            ident: self.ident,
            user: self.user,
            timestamp: self
                .timestamp
                .ok_or_else(|| BuildLogEntryError::new("timestamp"))?,
            request: self
                .request
                .ok_or_else(|| BuildLogEntryError::new("request"))?,
            status: self
                .status
                .ok_or_else(|| BuildLogEntryError::new("status"))?,
            bytes: self.bytes,
            referrer: self.referrer,
            user_agent: self.user_agent.unwrap_or_else(UserAgent::empty),
        })
    }
}

struct Cursor<'a> {
    line: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(line: &'a str) -> Self {
        Self { line, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.line[self.pos..]
    }

    fn err(&self, kind: ParseLogErrorKind) -> ParseLogError {
        ParseLogError::new(kind, self.pos)
    }

    /// Consumes up to (not including) the next space; advances past it.
    fn take_token(&mut self) -> Result<&'a str, ParseLogError> {
        let rest = self.rest();
        if rest.is_empty() {
            return Err(self.err(ParseLogErrorKind::UnexpectedEnd));
        }
        match rest.find(' ') {
            Some(i) => {
                let tok = &rest[..i];
                self.pos += i + 1;
                Ok(tok)
            }
            None => {
                let tok = rest;
                self.pos = self.line.len();
                Ok(tok)
            }
        }
    }

    /// Expects `open` at the cursor, consumes through the matching `close`,
    /// returning the content between. No escape handling (used for `[..]`).
    fn take_bracketed(&mut self) -> Result<&'a str, ParseLogError> {
        let rest = self.rest();
        if !rest.starts_with('[') {
            return Err(self.err(ParseLogErrorKind::MissingDelimiter("timestamp")));
        }
        match rest.find(']') {
            Some(i) => {
                let inner = &rest[1..i];
                self.pos += i + 1;
                Ok(inner)
            }
            None => Err(self.err(ParseLogErrorKind::MissingDelimiter("timestamp"))),
        }
    }

    /// Expects `"` at the cursor; consumes through the closing quote,
    /// honouring `\"` escapes (Apache escapes quotes inside logged headers).
    /// Returns the raw content with escapes left intact — the workspace's
    /// own generator never emits them, and detectors treat the field as an
    /// opaque token.
    fn take_quoted(&mut self) -> Result<&'a str, ParseLogError> {
        let rest = self.rest();
        if !rest.starts_with('"') {
            return Err(self.err(ParseLogErrorKind::MissingDelimiter("quoted field")));
        }
        // Fast path — no escape before the closing quote (every line the
        // workspace generator or a stock Apache emits): two vectorized
        // scans instead of the byte-at-a-time escape walk below.
        let body = &rest[1..];
        if let Some(close) = body.find('"') {
            if !body[..close].contains('\\') {
                self.pos += close + 2;
                return Ok(&body[..close]);
            }
        }
        let bytes = rest.as_bytes();
        let mut i = 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    let inner = &rest[1..i];
                    self.pos += i + 1;
                    return Ok(inner);
                }
                _ => i += 1,
            }
        }
        Err(self.err(ParseLogErrorKind::UnterminatedQuote))
    }

    /// Consumes a single expected space.
    fn expect_space(&mut self, before: &'static str) -> Result<(), ParseLogError> {
        if self.rest().starts_with(' ') {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(ParseLogErrorKind::MissingDelimiter(before)))
        }
    }
}

fn dash_to_none(tok: &str) -> Option<&str> {
    (tok != "-").then_some(tok)
}

/// The fields of one Combined Log Format line, borrowed from the input —
/// the shared parse core behind both [`LogEntry::parse`] (which
/// materialises owned `String`s) and the zero-copy
/// [`EntryRef`](crate::EntryRef) / [`EntryBlock`](crate::EntryBlock)
/// spine (which keeps the borrows). One implementation means the two
/// paths accept and reject exactly the same inputs with exactly the same
/// [`ParseLogError`]s, by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawParts<'s> {
    pub(crate) addr: Ipv4Addr,
    pub(crate) ident: Option<&'s str>,
    pub(crate) user: Option<&'s str>,
    pub(crate) timestamp: ClfTimestamp,
    pub(crate) method: crate::HttpMethod,
    pub(crate) target: &'s str,
    pub(crate) version: crate::HttpVersion,
    pub(crate) status: HttpStatus,
    pub(crate) bytes: Option<u64>,
    pub(crate) referrer: Option<&'s str>,
    /// Raw user-agent field; `"-"` (CLF absent) is **not** yet
    /// normalised, and a plain Common Log Format line yields `""`.
    pub(crate) ua: &'s str,
}

/// Parses one CLF line into borrowed [`RawParts`]. The caller is
/// expected to have stripped the line terminator (`parse_parts` of a
/// string with trailing `\r`/`\n` fails on the final field).
pub(crate) fn parse_parts(line: &str) -> Result<RawParts<'_>, ParseLogError> {
    let mut cur = Cursor::new(line);

    let addr_tok = cur.take_token()?;
    let addr = crate::ip::parse_ipv4(addr_tok)
        .ok_or_else(|| ParseLogError::new(ParseLogErrorKind::InvalidAddr, 0))?;

    let ident = dash_to_none(cur.take_token()?);
    let user = dash_to_none(cur.take_token()?);

    let ts_raw = cur.take_bracketed()?;
    let timestamp: ClfTimestamp = ts_raw
        .parse()
        .map_err(|_| cur.err(ParseLogErrorKind::InvalidTimestamp(ts_raw.to_owned())))?;
    cur.expect_space("request")?;

    let req_raw = cur.take_quoted()?;
    let (method, target, version) = parse_request_parts(req_raw)
        .ok_or_else(|| cur.err(ParseLogErrorKind::InvalidRequestLine(req_raw.to_owned())))?;
    cur.expect_space("status")?;

    let status_tok = cur.take_token()?;
    let status = status_tok
        .parse::<u16>()
        .ok()
        .and_then(HttpStatus::new)
        .ok_or_else(|| cur.err(ParseLogErrorKind::InvalidStatus(status_tok.to_owned())))?;

    let size_tok = cur.take_token()?;
    let bytes = if size_tok == "-" {
        None
    } else {
        Some(
            size_tok
                .parse::<u64>()
                .map_err(|_| cur.err(ParseLogErrorKind::InvalidSize(size_tok.to_owned())))?,
        )
    };

    // Plain Common Log Format ends here; Combined adds the two quoted
    // fields. Both occur in the wild (and the format is per-vhost
    // configuration), so accept either.
    if cur.rest().is_empty() {
        return Ok(RawParts {
            addr,
            ident,
            user,
            timestamp,
            method,
            target,
            version,
            status,
            bytes,
            referrer: None,
            ua: "",
        });
    }

    let referrer_raw = cur.take_quoted()?;
    let referrer = dash_to_none(referrer_raw);
    cur.expect_space("user agent")?;

    let ua = cur.take_quoted()?;

    if !cur.rest().is_empty() {
        return Err(cur.err(ParseLogErrorKind::MissingDelimiter("end of line")));
    }

    Ok(RawParts {
        addr,
        ident,
        user,
        timestamp,
        method,
        target,
        version,
        status,
        bytes,
        referrer,
        ua,
    })
}

/// Splits a quoted request field into (method, target, version) without
/// allocating — the same validation `RequestLine::from_str` applies
/// (known method, non-empty target, known version, no trailing parts).
fn parse_request_parts(raw: &str) -> Option<(crate::HttpMethod, &str, crate::HttpVersion)> {
    let mut parts = raw.split(' ');
    let method: crate::HttpMethod = parts.next()?.parse().ok()?;
    let target = parts.next()?;
    if target.is_empty() {
        return None;
    }
    let version: crate::HttpVersion = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((method, target, version))
}

fn parse_line(line: &str) -> Result<LogEntry, ParseLogError> {
    let parts = parse_parts(line.trim_end_matches(['\r', '\n']))?;
    Ok(LogEntry {
        addr: parts.addr,
        ident: parts.ident.map(str::to_owned),
        user: parts.user.map(str::to_owned),
        timestamp: parts.timestamp,
        request: RequestLine::new(
            parts.method,
            crate::RequestPath::parse(parts.target),
            parts.version,
        ),
        status: parts.status,
        bytes: parts.bytes,
        referrer: parts.referrer.map(str::to_owned),
        user_agent: UserAgent::new(parts.ua),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpMethod;
    use proptest::prelude::*;

    const SAMPLE: &str = r#"198.51.100.7 - - [11/Mar/2018:06:25:14 +0000] "GET /search?q=NCE-LHR HTTP/1.1" 200 5123 "https://shop.example/" "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36""#;

    #[test]
    fn parses_a_full_combined_line() {
        let e = LogEntry::parse(SAMPLE).unwrap();
        assert_eq!(e.addr(), Ipv4Addr::new(198, 51, 100, 7));
        assert_eq!(e.ident(), None);
        assert_eq!(e.user(), None);
        assert_eq!(e.timestamp().hour(), 6);
        assert_eq!(e.request().method(), HttpMethod::Get);
        assert_eq!(e.status(), HttpStatus::OK);
        assert_eq!(e.bytes(), Some(5123));
        assert_eq!(e.referrer(), Some("https://shop.example/"));
        assert!(e.user_agent().as_str().starts_with("Mozilla/5.0"));
    }

    #[test]
    fn display_round_trips() {
        let e = LogEntry::parse(SAMPLE).unwrap();
        assert_eq!(e.to_string(), SAMPLE);
    }

    #[test]
    fn handles_absent_fields() {
        let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "HEAD / HTTP/1.0" 204 - "-" "-""#;
        let e = LogEntry::parse(line).unwrap();
        assert_eq!(e.bytes(), None);
        assert_eq!(e.referrer(), None);
        assert!(e.user_agent().is_empty());
        assert_eq!(e.to_string(), line);
    }

    #[test]
    fn handles_ident_and_user() {
        let line = r#"10.0.0.1 ident alice [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 1 "-" "curl/7.58.0""#;
        let e = LogEntry::parse(line).unwrap();
        assert_eq!(e.ident(), Some("ident"));
        assert_eq!(e.user(), Some("alice"));
        assert_eq!(e.to_string(), line);
    }

    #[test]
    fn accepts_plain_common_log_format() {
        // No referrer / user-agent fields at all (plain CLF).
        let line =
            r#"10.0.0.1 - frank [11/Mar/2018:10:00:00 +0000] "GET /offers/3 HTTP/1.0" 200 2326"#;
        let e = LogEntry::parse(line).unwrap();
        assert_eq!(e.user(), Some("frank"));
        assert_eq!(e.bytes(), Some(2326));
        assert_eq!(e.referrer(), None);
        assert!(e.user_agent().is_empty());
        // Display normalises to Combined with `-` placeholders; the result
        // re-parses to the same entry.
        let rendered = e.to_string();
        assert!(rendered.ends_with(r#"2326 "-" "-""#), "{rendered}");
        assert_eq!(LogEntry::parse(&rendered).unwrap(), e);
    }

    #[test]
    fn common_format_with_dash_size() {
        let line = r#"10.0.0.1 - - [11/Mar/2018:10:00:00 +0000] "HEAD / HTTP/1.0" 304 -"#;
        let e = LogEntry::parse(line).unwrap();
        assert_eq!(e.bytes(), None);
        assert_eq!(e.status(), HttpStatus::NOT_MODIFIED);
    }

    #[test]
    fn tolerates_trailing_newline() {
        let line = format!("{SAMPLE}\n");
        assert!(LogEntry::parse(&line).is_ok());
        let line = format!("{SAMPLE}\r\n");
        assert!(LogEntry::parse(&line).is_ok());
    }

    #[test]
    fn escaped_quote_in_user_agent() {
        let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 1 "-" "weird \"agent\"""#;
        let e = LogEntry::parse(line).unwrap();
        assert_eq!(e.user_agent().as_str(), r#"weird \"agent\""#);
    }

    #[test]
    fn error_offsets_point_at_the_failing_field() {
        let line = r#"not-an-ip - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 1 "-" "-""#;
        let err = LogEntry::parse(line).unwrap_err();
        assert_eq!(*err.kind(), ParseLogErrorKind::InvalidAddr);

        let line = r#"10.0.0.1 - - [bogus] "GET / HTTP/1.1" 200 1 "-" "-""#;
        let err = LogEntry::parse(line).unwrap_err();
        assert!(matches!(err.kind(), ParseLogErrorKind::InvalidTimestamp(_)));

        let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "FETCH / HTTP/1.1" 200 1 "-" "-""#;
        let err = LogEntry::parse(line).unwrap_err();
        assert!(matches!(
            err.kind(),
            ParseLogErrorKind::InvalidRequestLine(_)
        ));

        let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 999 1 "-" "-""#;
        let err = LogEntry::parse(line).unwrap_err();
        assert!(matches!(err.kind(), ParseLogErrorKind::InvalidStatus(_)));

        let line = r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 -7 "-" "-""#;
        let err = LogEntry::parse(line).unwrap_err();
        assert!(matches!(err.kind(), ParseLogErrorKind::InvalidSize(_)));
    }

    #[test]
    fn rejects_truncated_lines() {
        let full = SAMPLE;
        // Chopping the line anywhere before the final quote must fail.
        for cut in [10, 20, 40, 60, full.len() - 5] {
            let partial = &full[..cut];
            assert!(
                LogEntry::parse(partial).is_err(),
                "accepted truncation at {cut}: `{partial}`"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let line = format!("{SAMPLE} junk");
        assert!(LogEntry::parse(&line).is_err());
    }

    #[test]
    fn builder_requires_mandatory_fields() {
        let err = LogEntry::builder().build().unwrap_err();
        assert_eq!(err.missing_field(), "addr");
        let err = LogEntry::builder()
            .addr(Ipv4Addr::LOCALHOST)
            .build()
            .unwrap_err();
        assert_eq!(err.missing_field(), "timestamp");
    }

    #[test]
    fn builder_defaults_render_as_dashes() {
        let e = LogEntry::builder()
            .addr(Ipv4Addr::new(10, 0, 0, 1))
            .timestamp(ClfTimestamp::PAPER_WINDOW_START)
            .request("GET / HTTP/1.1".parse().unwrap())
            .status(HttpStatus::OK)
            .build()
            .unwrap();
        let line = e.to_string();
        assert!(line.ends_with(r#"200 - "-" "-""#), "line: {line}");
        let re = LogEntry::parse(&line).unwrap();
        assert_eq!(re, e);
    }

    #[test]
    fn client_key_distinguishes_agents_behind_one_address() {
        let base = LogEntry::builder()
            .addr(Ipv4Addr::new(10, 0, 0, 1))
            .timestamp(ClfTimestamp::PAPER_WINDOW_START)
            .request("GET / HTTP/1.1".parse().unwrap())
            .status(HttpStatus::OK);
        let a = base.clone().user_agent("curl/7.58.0").build().unwrap();
        let b = base.clone().user_agent("Wget/1.19.4").build().unwrap();
        assert_ne!(a.client_key(), b.client_key());
        assert_eq!(a.client_key().0, b.client_key().0);
    }

    proptest! {
        #[test]
        fn round_trip_for_generated_entries(
            a in 1u8..=254, b in 0u8..=255, c in 0u8..=255, d in 1u8..=254,
            secs in 0i64..(8 * crate::SECONDS_PER_DAY),
            status_idx in 0usize..8,
            bytes in proptest::option::of(0u64..10_000_000),
            depth in 0usize..4,
            q in proptest::option::of(0u32..1000),
        ) {
            let mut path = String::from("/");
            for i in 0..depth {
                path.push_str(&format!("seg{i}/"));
            }
            if let Some(q) = q {
                path.push_str(&format!("?page={q}"));
            }
            let entry = LogEntry::builder()
                .addr(Ipv4Addr::new(a, b, c, d))
                .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
                .request(format!("GET {path} HTTP/1.1").parse().unwrap())
                .status(HttpStatus::PAPER_STATUSES[status_idx])
                .bytes(bytes)
                .referrer("https://shop.example/")
                .user_agent("Mozilla/5.0 (X11; Linux x86_64)")
                .build()
                .unwrap();
            let line = entry.to_string();
            let reparsed = LogEntry::parse(&line).unwrap();
            prop_assert_eq!(reparsed, entry);
        }
    }
}
