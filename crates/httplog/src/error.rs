//! Error types for log parsing and entry construction.

use std::error::Error;
use std::fmt;

/// The reason a log line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseLogErrorKind {
    /// The line ended before all Combined Log Format fields were present.
    UnexpectedEnd,
    /// The client address field is not a valid IPv4 address.
    InvalidAddr,
    /// The `[..]` timestamp field is malformed.
    InvalidTimestamp(String),
    /// The quoted request line is malformed.
    InvalidRequestLine(String),
    /// The status field is not a valid HTTP status code.
    InvalidStatus(String),
    /// The size field is neither `-` nor a non-negative integer.
    InvalidSize(String),
    /// A quoted field (request, referrer, user agent) is not terminated.
    UnterminatedQuote,
    /// A field delimiter was missing where one was required.
    MissingDelimiter(&'static str),
}

impl fmt::Display for ParseLogErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEnd => write!(f, "line ended before all fields were present"),
            Self::InvalidAddr => write!(f, "client address is not a valid IPv4 address"),
            Self::InvalidTimestamp(t) => write!(f, "invalid timestamp field `{t}`"),
            Self::InvalidRequestLine(r) => write!(f, "invalid request line `{r}`"),
            Self::InvalidStatus(s) => write!(f, "invalid status code `{s}`"),
            Self::InvalidSize(s) => write!(f, "invalid response size `{s}`"),
            Self::UnterminatedQuote => write!(f, "unterminated quoted field"),
            Self::MissingDelimiter(what) => write!(f, "missing delimiter before {what}"),
        }
    }
}

/// Error returned when a Combined Log Format line cannot be parsed.
///
/// Carries the failing [`kind`](Self::kind) and the byte
/// [`offset`](Self::offset) within the line at which parsing failed, which
/// makes malformed production logs practical to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogError {
    kind: ParseLogErrorKind,
    offset: usize,
}

impl ParseLogError {
    pub(crate) fn new(kind: ParseLogErrorKind, offset: usize) -> Self {
        Self { kind, offset }
    }

    /// The specific malformation encountered.
    pub fn kind(&self) -> &ParseLogErrorKind {
        &self.kind
    }

    /// Byte offset within the input line at which parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.kind, self.offset)
    }
}

impl Error for ParseLogError {}

/// Error returned by [`LogEntryBuilder::build`](crate::LogEntryBuilder::build)
/// when a mandatory field is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildLogEntryError {
    missing: &'static str,
}

impl BuildLogEntryError {
    pub(crate) fn new(missing: &'static str) -> Self {
        Self { missing }
    }

    /// Name of the first missing mandatory field.
    pub fn missing_field(&self) -> &'static str {
        self.missing
    }
}

impl fmt::Display for BuildLogEntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log entry is missing mandatory field `{}`", self.missing)
    }
}

impl Error for BuildLogEntryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_reports_kind_and_offset() {
        let err = ParseLogError::new(ParseLogErrorKind::InvalidAddr, 3);
        assert_eq!(*err.kind(), ParseLogErrorKind::InvalidAddr);
        assert_eq!(err.offset(), 3);
        let msg = err.to_string();
        assert!(msg.contains("IPv4"), "unexpected message: {msg}");
        assert!(msg.contains("byte 3"), "unexpected message: {msg}");
    }

    #[test]
    fn build_error_names_missing_field() {
        let err = BuildLogEntryError::new("timestamp");
        assert_eq!(err.missing_field(), "timestamp");
        assert!(err.to_string().contains("timestamp"));
    }

    #[test]
    fn error_kinds_display_distinctly() {
        let kinds = [
            ParseLogErrorKind::UnexpectedEnd,
            ParseLogErrorKind::InvalidAddr,
            ParseLogErrorKind::InvalidTimestamp("x".into()),
            ParseLogErrorKind::InvalidRequestLine("y".into()),
            ParseLogErrorKind::InvalidStatus("z".into()),
            ParseLogErrorKind::InvalidSize("w".into()),
            ParseLogErrorKind::UnterminatedQuote,
            ParseLogErrorKind::MissingDelimiter("status"),
        ];
        let rendered: Vec<String> = kinds.iter().map(ToString::to_string).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b, "two error kinds render identically");
            }
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseLogError>();
        assert_send_sync::<BuildLogEntryError>();
    }
}
