//! Request-target paths.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Coarse classification of what a request target is for.
///
/// Detectors care about the *mix* of resource classes in a session far more
/// than about individual URLs: humans interleave page views with asset loads,
/// scrapers fetch page after page with no assets, and scanners hit probe
/// paths that legitimate navigation never touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceClass {
    /// An HTML page (`/`, `/search`, `/offers/..`, `/booking/..`).
    Page,
    /// A static asset (css/js/images/fonts).
    Asset,
    /// A JSON/XML API endpoint (`/api/..`).
    Api,
    /// `robots.txt` — fetched by well-behaved crawlers, ignored by most bots.
    RobotsTxt,
    /// Site map (`/sitemap.xml`).
    Sitemap,
    /// Favicon.
    Favicon,
    /// A health/monitoring endpoint (`/health`, `/ping`, `/status`).
    Health,
    /// Anything that looks like vulnerability probing (`/wp-admin`,
    /// `/.env`, `/phpmyadmin`, traversal sequences, ...).
    Probe,
    /// None of the above.
    Other,
}

impl ResourceClass {
    /// Classifies a path component (everything before `?`) **without
    /// allocating** — byte-for-byte the same answer as
    /// [`RequestPath::resource_class`] on a target with the same path
    /// component. This is the hot-path form used by the borrowed-entry
    /// spine ([`EntryRef`](crate::EntryRef)); the equivalence is pinned
    /// by property tests in [`view`](crate::view).
    pub fn classify(path: &str) -> ResourceClass {
        use crate::ascii::{ends_with_ignore_case, eq_ignore_case, starts_with_ignore_case};
        if contains_probe_marker(path) {
            return ResourceClass::Probe;
        }
        if eq_ignore_case(path, "/robots.txt") {
            return ResourceClass::RobotsTxt;
        }
        if eq_ignore_case(path, "/sitemap.xml")
            || starts_with_ignore_case(path, "/sitemap") && ends_with_ignore_case(path, ".xml")
        {
            return ResourceClass::Sitemap;
        }
        if eq_ignore_case(path, "/favicon.ico") {
            return ResourceClass::Favicon;
        }
        if eq_ignore_case(path, "/health")
            || eq_ignore_case(path, "/ping")
            || eq_ignore_case(path, "/status")
        {
            return ResourceClass::Health;
        }
        if has_asset_suffix(path) {
            return ResourceClass::Asset;
        }
        if starts_with_ignore_case(path, "/api/") || eq_ignore_case(path, "/api") {
            return ResourceClass::Api;
        }
        if eq_ignore_case(path, "/")
            || starts_with_ignore_case(path, "/search")
            || starts_with_ignore_case(path, "/offers")
            || starts_with_ignore_case(path, "/booking")
            || starts_with_ignore_case(path, "/deals")
            || starts_with_ignore_case(path, "/destinations")
            || ends_with_ignore_case(path, ".html")
        {
            return ResourceClass::Page;
        }
        ResourceClass::Other
    }

    /// Whether requests of this class are normally produced by a browser
    /// rendering a page (pages and the subresources they pull in).
    pub fn is_browser_initiated(self) -> bool {
        matches!(
            self,
            ResourceClass::Page
                | ResourceClass::Asset
                | ResourceClass::Favicon
                | ResourceClass::Api
        )
    }
}

const ASSET_SUFFIXES: [&str; 12] = [
    ".css", ".js", ".png", ".jpg", ".jpeg", ".gif", ".svg", ".woff", ".woff2", ".ico", ".ttf",
    ".map",
];

const PROBE_MARKERS: [&str; 12] = [
    "/wp-admin",
    "/wp-login",
    "/.env",
    "/phpmyadmin",
    "/.git",
    "/etc/passwd",
    "..%2f",
    "/cgi-bin",
    "/admin.php",
    "/config.php",
    "/vendor/phpunit",
    "/shell",
];

/// Single pass over `path` testing every probe marker at once — the
/// same answer as running `contains_ignore_case(path, m)` for each `m`
/// in [`PROBE_MARKERS`] (pinned by [`tests::probe_scan_matches_marker_loop`]).
/// Every marker starts with `/` or `.` and those anchor bytes have no
/// case, so each candidate window begins at an anchor byte; the scan
/// dispatches on the lowercased byte after the anchor instead of
/// re-walking the haystack once per marker.
fn contains_probe_marker(path: &str) -> bool {
    let b = path.as_bytes();
    let tail = |i: usize, needle: &str| {
        let n = needle.as_bytes();
        b.len() - i >= n.len() && b[i..i + n.len()].eq_ignore_ascii_case(n)
    };
    for i in 0..b.len() {
        match b[i] {
            b'/' => {
                let Some(next) = b.get(i + 1) else { break };
                let hit = match next.to_ascii_lowercase() {
                    b'w' => tail(i, "/wp-admin") || tail(i, "/wp-login"),
                    b'.' => tail(i, "/.env") || tail(i, "/.git"),
                    b'p' => tail(i, "/phpmyadmin"),
                    b'e' => tail(i, "/etc/passwd"),
                    b'c' => tail(i, "/cgi-bin") || tail(i, "/config.php"),
                    b'a' => tail(i, "/admin.php"),
                    b'v' => tail(i, "/vendor/phpunit"),
                    b's' => tail(i, "/shell"),
                    _ => false,
                };
                if hit {
                    return true;
                }
            }
            b'.' if tail(i, "..%2f") => return true,
            _ => {}
        }
    }
    false
}

/// `ends_with_ignore_case(path, s)` for any `s` in [`ASSET_SUFFIXES`],
/// dispatching on the lowercased final byte instead of testing all
/// twelve suffixes (pinned by [`tests::asset_suffix_scan_matches_suffix_loop`]).
fn has_asset_suffix(path: &str) -> bool {
    use crate::ascii::ends_with_ignore_case;
    let Some(last) = path.as_bytes().last() else {
        return false;
    };
    let ends = |s: &str| ends_with_ignore_case(path, s);
    match last.to_ascii_lowercase() {
        b's' => ends(".css") || ends(".js"),
        b'g' => ends(".png") || ends(".jpg") || ends(".jpeg") || ends(".svg"),
        b'f' => ends(".gif") || ends(".woff") || ends(".ttf"),
        b'2' => ends(".woff2"),
        b'o' => ends(".ico"),
        b'p' => ends(".map"),
        _ => false,
    }
}

/// A parsed request target: path plus optional query string.
///
/// ```
/// use divscrape_httplog::{RequestPath, ResourceClass};
///
/// let p = RequestPath::parse("/search?q=NCE-LHR&page=2");
/// assert_eq!(p.path(), "/search");
/// assert_eq!(p.query(), Some("q=NCE-LHR&page=2"));
/// assert_eq!(p.query_param("page"), Some("2"));
/// assert_eq!(p.resource_class(), ResourceClass::Page);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestPath {
    raw: String,
    query_start: Option<usize>,
}

impl RequestPath {
    /// Parses a request target. Never fails: malformed targets are preserved
    /// verbatim (real access logs contain plenty), classified as
    /// [`ResourceClass::Other`] or [`ResourceClass::Probe`] as appropriate.
    pub fn parse(raw: &str) -> Self {
        let query_start = raw.find('?');
        Self {
            raw: raw.to_owned(),
            query_start,
        }
    }

    /// The full raw target, exactly as logged.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The path component (everything before `?`).
    pub fn path(&self) -> &str {
        match self.query_start {
            Some(i) => &self.raw[..i],
            None => &self.raw,
        }
    }

    /// The query string (everything after `?`), if present.
    pub fn query(&self) -> Option<&str> {
        self.query_start.map(|i| &self.raw[i + 1..])
    }

    /// Looks up a query parameter by exact key. Returns the first match.
    /// A key present without `=` yields `Some("")`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?.split('&').find_map(|pair| {
            let (k, v) = match pair.split_once('=') {
                Some((k, v)) => (k, v),
                None => (pair, ""),
            };
            (k == key).then_some(v)
        })
    }

    /// Number of query parameters (0 when there is no query string).
    pub fn query_param_count(&self) -> usize {
        self.query().map_or(0, |q| {
            if q.is_empty() {
                0
            } else {
                q.split('&').count()
            }
        })
    }

    /// Path segments, excluding empty ones: `/a/b/` → `["a", "b"]`.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.path().split('/').filter(|s| !s.is_empty())
    }

    /// Path depth (number of non-empty segments).
    pub fn depth(&self) -> usize {
        self.segments().count()
    }

    /// Classifies the target. See [`ResourceClass`].
    pub fn resource_class(&self) -> ResourceClass {
        let path = self.path();
        let lower = path.to_ascii_lowercase();

        for marker in PROBE_MARKERS {
            if lower.contains(marker) {
                return ResourceClass::Probe;
            }
        }
        if lower == "/robots.txt" {
            return ResourceClass::RobotsTxt;
        }
        if lower == "/sitemap.xml" || lower.starts_with("/sitemap") && lower.ends_with(".xml") {
            return ResourceClass::Sitemap;
        }
        if lower == "/favicon.ico" {
            return ResourceClass::Favicon;
        }
        if lower == "/health" || lower == "/ping" || lower == "/status" {
            return ResourceClass::Health;
        }
        if ASSET_SUFFIXES.iter().any(|s| lower.ends_with(s)) {
            return ResourceClass::Asset;
        }
        if lower.starts_with("/api/") || lower == "/api" {
            return ResourceClass::Api;
        }
        if lower == "/"
            || lower.starts_with("/search")
            || lower.starts_with("/offers")
            || lower.starts_with("/booking")
            || lower.starts_with("/deals")
            || lower.starts_with("/destinations")
            || lower.ends_with(".html")
        {
            return ResourceClass::Page;
        }
        ResourceClass::Other
    }
}

impl fmt::Display for RequestPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl From<&str> for RequestPath {
    fn from(raw: &str) -> Self {
        RequestPath::parse(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_path_and_query() {
        let p = RequestPath::parse("/offers/123?currency=EUR&lang=en");
        assert_eq!(p.path(), "/offers/123");
        assert_eq!(p.query(), Some("currency=EUR&lang=en"));
        assert_eq!(p.query_param("currency"), Some("EUR"));
        assert_eq!(p.query_param("lang"), Some("en"));
        assert_eq!(p.query_param("missing"), None);
        assert_eq!(p.query_param_count(), 2);
    }

    #[test]
    fn handles_no_query() {
        let p = RequestPath::parse("/");
        assert_eq!(p.path(), "/");
        assert_eq!(p.query(), None);
        assert_eq!(p.query_param_count(), 0);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn handles_empty_query_and_flag_params() {
        let p = RequestPath::parse("/search?");
        assert_eq!(p.query(), Some(""));
        assert_eq!(p.query_param_count(), 0);
        let q = RequestPath::parse("/search?debug&x=1");
        assert_eq!(q.query_param("debug"), Some(""));
        assert_eq!(q.query_param("x"), Some("1"));
    }

    #[test]
    fn segments_skip_empties() {
        let p = RequestPath::parse("//offers//123/");
        let segs: Vec<_> = p.segments().collect();
        assert_eq!(segs, vec!["offers", "123"]);
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn classification_covers_the_site_model() {
        let cases = [
            ("/", ResourceClass::Page),
            ("/search?q=x", ResourceClass::Page),
            ("/offers/42", ResourceClass::Page),
            ("/booking/checkout", ResourceClass::Page),
            ("/static/app.js", ResourceClass::Asset),
            ("/img/logo.png?v=3", ResourceClass::Asset),
            ("/api/v1/fares", ResourceClass::Api),
            ("/robots.txt", ResourceClass::RobotsTxt),
            ("/sitemap.xml", ResourceClass::Sitemap),
            ("/sitemap-offers.xml", ResourceClass::Sitemap),
            ("/favicon.ico", ResourceClass::Favicon),
            ("/health", ResourceClass::Health),
            ("/wp-admin/setup.php", ResourceClass::Probe),
            ("/.env", ResourceClass::Probe),
            ("/a/..%2f..%2fetc/passwd", ResourceClass::Probe),
            ("/something-else", ResourceClass::Other),
        ];
        for (raw, expected) in cases {
            assert_eq!(
                RequestPath::parse(raw).resource_class(),
                expected,
                "misclassified {raw}"
            );
        }
    }

    #[test]
    fn probe_detection_beats_asset_suffix() {
        // `.env` probes should never be classified as assets even with
        // suffix-looking names.
        let p = RequestPath::parse("/.git/config.js");
        assert_eq!(p.resource_class(), ResourceClass::Probe);
    }

    #[test]
    fn display_round_trips_raw() {
        let raw = "/offers/99?x=1&y=2";
        assert_eq!(RequestPath::parse(raw).to_string(), raw);
        assert_eq!(RequestPath::from(raw).as_str(), raw);
    }

    /// Exhaustive-ish corpus for the scan-vs-loop equivalence tests:
    /// every marker/suffix verbatim, uppercased, embedded mid-path,
    /// truncated, and near-miss variants.
    fn scan_corpus() -> Vec<String> {
        let mut corpus: Vec<String> = [
            "",
            "/",
            "/offers/42",
            "/search?q=x",
            "/static/app.js",
            "/A/B/C",
            "/.",
            "/..",
            "/wp",
            "/wp-",
            "/wp-admi",
            "/shel",
            "/shellx",
            "/x/shell",
            "/conf.php",
            "/a/..%2",
            "..%2f",
            "..%2F",
            "/a/..%2f/etc/passwd",
            "/.envy",
            "/.gitignore",
            "/file.jpg",
            "/file.JPEG?x=1",
            "/file.jpgx",
            "/woff2",
            ".css",
            "/a.tar.css",
            "/a.css.bak",
            "/x.ph",
            "/etc/passw",
            "/vendor/phpuni",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        for marker in PROBE_MARKERS {
            corpus.push(marker.to_owned());
            corpus.push(marker.to_ascii_uppercase());
            corpus.push(format!("/pre{marker}/post"));
            corpus.push(marker[..marker.len() - 1].to_owned());
        }
        for suffix in ASSET_SUFFIXES {
            corpus.push(format!("/static/app{suffix}"));
            corpus.push(format!("/static/app{}", suffix.to_ascii_uppercase()));
            corpus.push(format!("/static/app{suffix}.bak"));
            corpus.push(suffix.to_owned());
        }
        corpus
    }

    #[test]
    fn probe_scan_matches_marker_loop() {
        use crate::ascii::contains_ignore_case;
        for path in scan_corpus() {
            let reference = PROBE_MARKERS.iter().any(|m| contains_ignore_case(&path, m));
            assert_eq!(
                contains_probe_marker(&path),
                reference,
                "probe scan diverged on {path:?}"
            );
        }
    }

    #[test]
    fn asset_suffix_scan_matches_suffix_loop() {
        use crate::ascii::ends_with_ignore_case;
        for path in scan_corpus() {
            let reference = ASSET_SUFFIXES
                .iter()
                .any(|s| ends_with_ignore_case(&path, s));
            assert_eq!(
                has_asset_suffix(&path),
                reference,
                "asset suffix scan diverged on {path:?}"
            );
        }
    }

    #[test]
    fn browser_initiated_predicate() {
        assert!(ResourceClass::Page.is_browser_initiated());
        assert!(ResourceClass::Asset.is_browser_initiated());
        assert!(!ResourceClass::Probe.is_browser_initiated());
        assert!(!ResourceClass::RobotsTxt.is_browser_initiated());
    }
}
