//! CLF timestamps (`11/Mar/2018:06:25:14 +0000`) with hand-rolled
//! proleptic-Gregorian civil-time arithmetic.
//!
//! No external time crate is used. The civil⇄epoch conversions follow the
//! well-known `days_from_civil` / `civil_from_days` algorithms (Howard
//! Hinnant), which are exact over the full proleptic Gregorian calendar.

use std::error::Error;
use std::fmt;
use std::ops::{Add, Sub};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Number of seconds in a civil day.
pub const SECONDS_PER_DAY: i64 = 86_400;

const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

const WEEKDAY_ABBREV: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// A point in time as recorded by an Apache access log, stored as seconds
/// since the Unix epoch (UTC).
///
/// Format and parse use the Common/Combined Log Format timestamp layout
/// `dd/Mon/yyyy:HH:MM:SS +0000`. Parsing accepts any numeric zone offset and
/// normalises to UTC; formatting always emits `+0000`, mirroring a server
/// configured for UTC logging (as the paper's 8-day window timestamps are
/// treated throughout the reproduction).
///
/// ```
/// use divscrape_httplog::ClfTimestamp;
///
/// let t: ClfTimestamp = "11/Mar/2018:06:25:14 +0000".parse()?;
/// assert_eq!(t.year(), 2018);
/// assert_eq!(t.hour(), 6);
/// assert_eq!(t.to_string(), "11/Mar/2018:06:25:14 +0000");
/// # Ok::<(), divscrape_httplog::ParseTimestampError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClfTimestamp {
    epoch_seconds: i64,
}

/// Days from civil date to the epoch. Exact for the proleptic Gregorian
/// calendar; `m` is 1-based.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since the epoch. Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn is_leap_year(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl ClfTimestamp {
    /// Midnight, 2018-03-11 UTC — the first instant of the paper's 8-day
    /// observation window (March 11th to March 18th 2018).
    pub const PAPER_WINDOW_START: ClfTimestamp = ClfTimestamp {
        epoch_seconds: 1_520_726_400,
    };

    /// Creates a timestamp from raw epoch seconds (UTC).
    pub fn from_epoch_seconds(epoch_seconds: i64) -> Self {
        Self { epoch_seconds }
    }

    /// Creates a timestamp from a civil date and time-of-day (UTC).
    ///
    /// Returns `None` when any component is out of range (month not in
    /// `1..=12`, day not valid for the month/year, `hour >= 24`,
    /// `minute >= 60`, or `second >= 60`; leap seconds are not representable
    /// in CLF logs).
    pub fn from_ymd_hms(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Option<Self> {
        if !(1..=12).contains(&month)
            || day == 0
            || day > days_in_month(year, month)
            || hour >= 24
            || minute >= 60
            || second >= 60
        {
            return None;
        }
        let days = days_from_civil(year, month, day);
        let secs = days * SECONDS_PER_DAY
            + i64::from(hour) * 3600
            + i64::from(minute) * 60
            + i64::from(second);
        Some(Self {
            epoch_seconds: secs,
        })
    }

    /// Seconds since the Unix epoch (UTC).
    pub fn epoch_seconds(self) -> i64 {
        self.epoch_seconds
    }

    fn civil(self) -> (i64, u32, u32) {
        civil_from_days(self.epoch_seconds.div_euclid(SECONDS_PER_DAY))
    }

    fn second_of_day(self) -> i64 {
        self.epoch_seconds.rem_euclid(SECONDS_PER_DAY)
    }

    /// Calendar year.
    pub fn year(self) -> i64 {
        self.civil().0
    }

    /// Calendar month, `1..=12`.
    pub fn month(self) -> u32 {
        self.civil().1
    }

    /// Day of month, `1..=31`.
    pub fn day(self) -> u32 {
        self.civil().2
    }

    /// Hour of day, `0..=23`.
    pub fn hour(self) -> u32 {
        (self.second_of_day() / 3600) as u32
    }

    /// Minute of hour, `0..=59`.
    pub fn minute(self) -> u32 {
        ((self.second_of_day() / 60) % 60) as u32
    }

    /// Second of minute, `0..=59`.
    pub fn second(self) -> u32 {
        (self.second_of_day() % 60) as u32
    }

    /// Day of week, `0 = Monday .. 6 = Sunday` (ISO).
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (ISO index 3).
        (self.epoch_seconds.div_euclid(SECONDS_PER_DAY) + 3).rem_euclid(7) as u32
    }

    /// Three-letter English weekday abbreviation (`"Mon"` .. `"Sun"`).
    pub fn weekday_abbrev(self) -> &'static str {
        WEEKDAY_ABBREV[self.weekday() as usize]
    }

    /// Fraction of the day elapsed, in `[0, 1)`. Used by the diurnal traffic
    /// model.
    pub fn day_fraction(self) -> f64 {
        self.second_of_day() as f64 / SECONDS_PER_DAY as f64
    }

    /// A new timestamp `delta` seconds later (or earlier when negative).
    #[must_use]
    pub fn plus_seconds(self, delta: i64) -> Self {
        Self {
            epoch_seconds: self.epoch_seconds + delta,
        }
    }

    /// Whole days (UTC-midnight-aligned) since the other timestamp.
    pub fn days_since(self, earlier: ClfTimestamp) -> i64 {
        self.epoch_seconds.div_euclid(SECONDS_PER_DAY)
            - earlier.epoch_seconds.div_euclid(SECONDS_PER_DAY)
    }
}

impl Add<i64> for ClfTimestamp {
    type Output = ClfTimestamp;

    fn add(self, rhs: i64) -> ClfTimestamp {
        self.plus_seconds(rhs)
    }
}

impl Sub<ClfTimestamp> for ClfTimestamp {
    type Output = i64;

    /// Difference in seconds (`self - rhs`).
    fn sub(self, rhs: ClfTimestamp) -> i64 {
        self.epoch_seconds - rhs.epoch_seconds
    }
}

impl fmt::Display for ClfTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.civil();
        write!(
            f,
            "{:02}/{}/{:04}:{:02}:{:02}:{:02} +0000",
            d,
            MONTH_ABBREV[(m - 1) as usize],
            y,
            self.hour(),
            self.minute(),
            self.second()
        )
    }
}

/// Error returned when a CLF timestamp field cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimestampError {
    input: String,
    reason: &'static str,
}

impl ParseTimestampError {
    fn new(input: &str, reason: &'static str) -> Self {
        Self {
            input: input.to_owned(),
            reason,
        }
    }

    /// Human-readable reason for the failure.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ParseTimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CLF timestamp `{}`: {}", self.input, self.reason)
    }
}

impl Error for ParseTimestampError {}

fn month_from_abbrev(abbrev: &str) -> Option<u32> {
    MONTH_ABBREV
        .iter()
        .position(|m| *m == abbrev)
        .map(|i| i as u32 + 1)
}

/// The fixed-width shape Apache always writes (`dd/Mon/yyyy:HH:MM:SS
/// ±zzzz`, exactly 26 bytes), decoded straight from the bytes — the
/// parse-to-verdict hot path runs this once per log line, so it must
/// not pay the general tokenizer's splitting and re-validation.
/// Returns `None` for anything off-shape; the caller falls back to the
/// flexible parser, which accepts the same values, so the two paths
/// decide identically.
fn parse_fixed_width(s: &str) -> Option<ClfTimestamp> {
    let b = s.as_bytes();
    if b.len() != 26
        || b[2] != b'/'
        || b[6] != b'/'
        || b[11] != b':'
        || b[14] != b':'
        || b[17] != b':'
        || b[20] != b' '
    {
        return None;
    }
    // Two decimal digits starting at `i`, already bounds-checked above.
    let two = |i: usize| -> Option<u32> {
        let (hi, lo) = (b[i].wrapping_sub(b'0'), b[i + 1].wrapping_sub(b'0'));
        (hi <= 9 && lo <= 9).then_some(u32::from(hi) * 10 + u32::from(lo))
    };
    let day = two(0)?;
    let month = month_from_abbrev(&s[3..6])?;
    let year = i64::from(two(7)? * 100 + two(9)?);
    let (hour, minute, second) = (two(12)?, two(15)?, two(18)?);
    let sign = match b[21] {
        b'+' => 1i64,
        b'-' => -1i64,
        _ => return None,
    };
    let (zh, zm) = (i64::from(two(22)?), i64::from(two(24)?));
    if zh > 14 || zm > 59 {
        return None;
    }
    let local = ClfTimestamp::from_ymd_hms(year, month, day, hour, minute, second)?;
    Some(local.plus_seconds(-sign * (zh * 3600 + zm * 60)))
}

impl FromStr for ClfTimestamp {
    type Err = ParseTimestampError;

    /// Parses `dd/Mon/yyyy:HH:MM:SS ±zzzz`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(ts) = parse_fixed_width(s) {
            return Ok(ts);
        }
        let err = |reason| ParseTimestampError::new(s, reason);

        let (datetime, zone) = s.split_once(' ').ok_or_else(|| err("missing zone"))?;
        let mut parts = datetime.splitn(3, '/');
        let day: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err("bad day"))?;
        let month = parts
            .next()
            .and_then(month_from_abbrev)
            .ok_or_else(|| err("bad month"))?;
        let rest = parts.next().ok_or_else(|| err("missing year"))?;
        let mut ymd = rest.splitn(4, ':');
        let year: i64 = ymd
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err("bad year"))?;
        let hour: u32 = ymd
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err("bad hour"))?;
        let minute: u32 = ymd
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err("bad minute"))?;
        let second: u32 = ymd
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err("bad second"))?;

        if zone.len() != 5 {
            return Err(err("bad zone length"));
        }
        let sign = match zone.as_bytes()[0] {
            b'+' => 1i64,
            b'-' => -1i64,
            _ => return Err(err("bad zone sign")),
        };
        let zh: i64 = zone[1..3].parse().map_err(|_| err("bad zone hours"))?;
        let zm: i64 = zone[3..5].parse().map_err(|_| err("bad zone minutes"))?;
        if zh > 14 || zm > 59 {
            return Err(err("zone offset out of range"));
        }
        let offset = sign * (zh * 3600 + zm * 60);

        let local = ClfTimestamp::from_ymd_hms(year, month, day, hour, minute, second)
            .ok_or_else(|| err("component out of range"))?;
        // The rendered local time is `utc + offset`, so utc = local - offset.
        Ok(local.plus_seconds(-offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_anchor_is_correct() {
        let t = ClfTimestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0).unwrap();
        assert_eq!(t.epoch_seconds(), 0);
        assert_eq!(t.weekday(), 3); // Thursday
        assert_eq!(t.weekday_abbrev(), "Thu");
    }

    #[test]
    fn paper_window_start_matches_known_epoch() {
        let t = ClfTimestamp::from_ymd_hms(2018, 3, 11, 0, 0, 0).unwrap();
        assert_eq!(t, ClfTimestamp::PAPER_WINDOW_START);
        assert_eq!(t.epoch_seconds(), 1_520_726_400);
        assert_eq!(t.weekday_abbrev(), "Sun"); // 2018-03-11 was a Sunday.
    }

    #[test]
    fn formats_in_clf_layout() {
        let t = ClfTimestamp::from_ymd_hms(2018, 3, 11, 6, 25, 14).unwrap();
        assert_eq!(t.to_string(), "11/Mar/2018:06:25:14 +0000");
    }

    #[test]
    fn parses_and_normalises_offsets() {
        let utc: ClfTimestamp = "11/Mar/2018:06:25:14 +0000".parse().unwrap();
        let cet: ClfTimestamp = "11/Mar/2018:07:25:14 +0100".parse().unwrap();
        let nyc: ClfTimestamp = "11/Mar/2018:01:25:14 -0500".parse().unwrap();
        assert_eq!(utc, cet);
        assert_eq!(utc, nyc);
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "11/Mar/2018:06:25:14",       // no zone
            "32/Mar/2018:06:25:14 +0000", // bad day
            "11/Mrz/2018:06:25:14 +0000", // bad month
            "11/Mar/2018:24:25:14 +0000", // bad hour
            "11/Mar/2018:06:60:14 +0000", // bad minute
            "11/Mar/2018:06:25:60 +0000", // bad second
            "11/Mar/2018:06:25:14 0000",  // no sign
            "11/Mar/2018:06:25:14 +00",   // short zone
            "11/Mar/2018:06:25:14 +9900", // zone hours out of range
            "29/Feb/2018:00:00:00 +0000", // not a leap year
        ] {
            assert!(bad.parse::<ClfTimestamp>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(ClfTimestamp::from_ymd_hms(2016, 2, 29, 0, 0, 0).is_some());
        assert!(ClfTimestamp::from_ymd_hms(2018, 2, 29, 0, 0, 0).is_none());
        assert!(ClfTimestamp::from_ymd_hms(2000, 2, 29, 0, 0, 0).is_some());
        assert!(ClfTimestamp::from_ymd_hms(1900, 2, 29, 0, 0, 0).is_none());
    }

    #[test]
    fn arithmetic_and_accessors_agree() {
        let start = ClfTimestamp::PAPER_WINDOW_START;
        let end = start.plus_seconds(8 * SECONDS_PER_DAY - 1);
        assert_eq!(end.day(), 18);
        assert_eq!(end.month(), 3);
        assert_eq!(end.hour(), 23);
        assert_eq!(end.minute(), 59);
        assert_eq!(end.second(), 59);
        assert_eq!(end - start, 8 * SECONDS_PER_DAY - 1);
        assert_eq!(end.days_since(start), 7);
        assert_eq!((start + 90).second(), 30);
    }

    #[test]
    fn day_fraction_spans_unit_interval() {
        let start = ClfTimestamp::PAPER_WINDOW_START;
        assert_eq!(start.day_fraction(), 0.0);
        let noon = start.plus_seconds(12 * 3600);
        assert!((noon.day_fraction() - 0.5).abs() < 1e-12);
        let last = start.plus_seconds(SECONDS_PER_DAY - 1);
        assert!(last.day_fraction() < 1.0);
    }

    #[test]
    fn negative_epoch_times_work() {
        let t = ClfTimestamp::from_ymd_hms(1969, 12, 31, 23, 59, 59).unwrap();
        assert_eq!(t.epoch_seconds(), -1);
        assert_eq!(t.hour(), 23);
        assert_eq!(t.year(), 1969);
    }

    proptest! {
        #[test]
        fn display_parse_round_trip(secs in -4_000_000_000i64..8_000_000_000i64) {
            let t = ClfTimestamp::from_epoch_seconds(secs);
            let rendered = t.to_string();
            let parsed: ClfTimestamp = rendered.parse().unwrap();
            prop_assert_eq!(parsed, t);
        }

        #[test]
        fn civil_round_trip(
            year in 1900i64..2200,
            month in 1u32..=12,
            day in 1u32..=28,
            hour in 0u32..24,
            minute in 0u32..60,
            second in 0u32..60,
        ) {
            let t = ClfTimestamp::from_ymd_hms(year, month, day, hour, minute, second).unwrap();
            prop_assert_eq!(t.year(), year);
            prop_assert_eq!(t.month(), month);
            prop_assert_eq!(t.day(), day);
            prop_assert_eq!(t.hour(), hour);
            prop_assert_eq!(t.minute(), minute);
            prop_assert_eq!(t.second(), second);
        }

        #[test]
        fn ordering_matches_epoch(a in proptest::num::i64::ANY, b in proptest::num::i64::ANY) {
            let (a, b) = (a % 1_000_000_000, b % 1_000_000_000);
            let ta = ClfTimestamp::from_epoch_seconds(a);
            let tb = ClfTimestamp::from_epoch_seconds(b);
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }
    }
}
