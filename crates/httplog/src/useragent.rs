//! User-agent strings and their coarse classification.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Coarse family of a user-agent string.
///
/// This mirrors what signature-based detectors actually key on: not the exact
/// browser build, but whether the string claims to be a mainstream browser, a
/// self-identified crawler, an HTTP library, or something empty/garbled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AgentFamily {
    /// A mainstream browser (Chrome/Firefox/Safari/Edge/MSIE lineage).
    Browser,
    /// A self-identified well-known crawler (Googlebot, Bingbot, ...).
    KnownCrawler,
    /// A generic HTTP tool or library (curl, wget, python-requests, Go, Java...).
    HttpTool,
    /// A self-identified monitoring agent (Pingdom, UptimeRobot, ...).
    Monitor,
    /// Empty user-agent field (`-` in the log).
    Empty,
    /// Anything else.
    Unknown,
}

const CRAWLER_MARKERS: [&str; 8] = [
    "googlebot",
    "bingbot",
    "yandexbot",
    "duckduckbot",
    "baiduspider",
    "slurp",
    "applebot",
    "facebookexternalhit",
];

const TOOL_MARKERS: [&str; 12] = [
    "curl/",
    "wget/",
    "python-requests",
    "python-urllib",
    "scrapy",
    "go-http-client",
    "java/",
    "okhttp",
    "libwww-perl",
    "httpclient",
    "aiohttp",
    "node-fetch",
];

const MONITOR_MARKERS: [&str; 4] = ["pingdom", "uptimerobot", "statuscake", "site24x7"];

impl AgentFamily {
    /// Classifies a raw user-agent string **without allocating** —
    /// byte-for-byte the same answer as
    /// [`UserAgent::family`] on the same (already `-`-normalised)
    /// string. This is the hot-path form used by the borrowed-entry
    /// spine ([`EntryRef`](crate::EntryRef)); the equivalence is pinned
    /// by property tests in [`view`](crate::view).
    pub fn classify(raw: &str) -> AgentFamily {
        use crate::ascii::{contains_ignore_case, starts_with_ignore_case};
        if raw.is_empty() {
            return AgentFamily::Empty;
        }
        if CRAWLER_MARKERS.iter().any(|m| contains_ignore_case(raw, m)) {
            return AgentFamily::KnownCrawler;
        }
        if MONITOR_MARKERS.iter().any(|m| contains_ignore_case(raw, m)) {
            return AgentFamily::Monitor;
        }
        if TOOL_MARKERS.iter().any(|m| contains_ignore_case(raw, m)) {
            return AgentFamily::HttpTool;
        }
        if starts_with_ignore_case(raw, "mozilla/") {
            return AgentFamily::Browser;
        }
        AgentFamily::Unknown
    }
}

/// A user-agent string as logged, with lazy classification.
///
/// ```
/// use divscrape_httplog::{AgentFamily, UserAgent};
///
/// let ua = UserAgent::new("Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36");
/// assert_eq!(ua.family(), AgentFamily::Browser);
/// assert!(!ua.is_empty());
///
/// let bot = UserAgent::new("Mozilla/5.0 (compatible; Googlebot/2.1)");
/// assert_eq!(bot.family(), AgentFamily::KnownCrawler);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserAgent {
    raw: String,
}

impl UserAgent {
    /// Wraps a raw user-agent string. `"-"` (the CLF empty marker) is
    /// normalised to the empty string so that all absent agents compare
    /// equal.
    pub fn new(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        Self {
            raw: if raw == "-" { String::new() } else { raw },
        }
    }

    /// The absent user agent.
    pub fn empty() -> Self {
        Self { raw: String::new() }
    }

    /// The raw string (empty for an absent agent).
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Whether the user-agent field was absent.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Classifies the agent string. See [`AgentFamily`].
    pub fn family(&self) -> AgentFamily {
        if self.is_empty() {
            return AgentFamily::Empty;
        }
        let lower = self.raw.to_ascii_lowercase();
        if CRAWLER_MARKERS.iter().any(|m| lower.contains(m)) {
            return AgentFamily::KnownCrawler;
        }
        if MONITOR_MARKERS.iter().any(|m| lower.contains(m)) {
            return AgentFamily::Monitor;
        }
        if TOOL_MARKERS.iter().any(|m| lower.contains(m)) {
            return AgentFamily::HttpTool;
        }
        if lower.starts_with("mozilla/") {
            return AgentFamily::Browser;
        }
        AgentFamily::Unknown
    }

    /// A stable 64-bit hash of the raw string (FNV-1a). Used to key session
    /// state on (address, agent) pairs without storing the string twice.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.raw.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

impl fmt::Display for UserAgent {
    /// Renders in log form: `-` when absent, the raw string otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("-")
        } else {
            f.write_str(&self.raw)
        }
    }
}

impl From<&str> for UserAgent {
    fn from(raw: &str) -> Self {
        UserAgent::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_browsers() {
        for ua in [
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0 Safari/537.36",
            "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13) AppleWebKit/604.5.6 Version/11.0 Safari/604.5.6",
            "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
        ] {
            assert_eq!(UserAgent::new(ua).family(), AgentFamily::Browser, "{ua}");
        }
    }

    #[test]
    fn classifies_crawlers_even_with_mozilla_prefix() {
        let ua = UserAgent::new(
            "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
        );
        assert_eq!(ua.family(), AgentFamily::KnownCrawler);
    }

    #[test]
    fn classifies_tools() {
        for ua in [
            "curl/7.58.0",
            "Wget/1.19.4 (linux-gnu)",
            "python-requests/2.18.4",
            "Go-http-client/1.1",
            "Java/1.8.0_151",
            "Scrapy/1.5.0 (+https://scrapy.org)",
        ] {
            assert_eq!(UserAgent::new(ua).family(), AgentFamily::HttpTool, "{ua}");
        }
    }

    #[test]
    fn classifies_monitors() {
        let ua = UserAgent::new("Pingdom.com_bot_version_1.4_(http://www.pingdom.com/)");
        assert_eq!(ua.family(), AgentFamily::Monitor);
    }

    #[test]
    fn empty_forms() {
        assert_eq!(UserAgent::new("").family(), AgentFamily::Empty);
        assert_eq!(UserAgent::new("-").family(), AgentFamily::Empty);
        assert_eq!(UserAgent::empty().family(), AgentFamily::Empty);
        assert_eq!(UserAgent::empty().to_string(), "-");
        assert!(UserAgent::new("-").is_empty());
    }

    #[test]
    fn unknown_is_the_fallback() {
        assert_eq!(
            UserAgent::new("TotallyCustomAgent/0.1").family(),
            AgentFamily::Unknown
        );
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = UserAgent::new("curl/7.58.0");
        let b = UserAgent::new("curl/7.58.0");
        let c = UserAgent::new("curl/7.58.1");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn display_round_trips_nonempty() {
        let raw = "Mozilla/5.0 (X11; Linux x86_64)";
        assert_eq!(UserAgent::new(raw).to_string(), raw);
    }
}
