//! HTTP response status codes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An HTTP response status code (`100..=599`).
///
/// A thin validated newtype over `u16`. Constants are provided for the eight
/// statuses that appear in the paper's Tables 3 and 4; any other valid code
/// can still be represented.
///
/// ```
/// use divscrape_httplog::{HttpStatus, StatusClass};
///
/// let s = HttpStatus::OK;
/// assert_eq!(s.as_u16(), 200);
/// assert_eq!(s.class(), StatusClass::Success);
/// assert_eq!(s.reason(), "OK");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct HttpStatus(u16);

/// The response-class (first digit) of an HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StatusClass {
    /// `1xx` — informational.
    Informational,
    /// `2xx` — success.
    Success,
    /// `3xx` — redirection.
    Redirection,
    /// `4xx` — client error.
    ClientError,
    /// `5xx` — server error.
    ServerError,
}

impl HttpStatus {
    /// `200 OK`.
    pub const OK: HttpStatus = HttpStatus(200);
    /// `204 No Content`.
    pub const NO_CONTENT: HttpStatus = HttpStatus(204);
    /// `302 Found`.
    pub const FOUND: HttpStatus = HttpStatus(302);
    /// `304 Not Modified`.
    pub const NOT_MODIFIED: HttpStatus = HttpStatus(304);
    /// `400 Bad Request`.
    pub const BAD_REQUEST: HttpStatus = HttpStatus(400);
    /// `403 Forbidden`.
    pub const FORBIDDEN: HttpStatus = HttpStatus(403);
    /// `404 Not Found`.
    pub const NOT_FOUND: HttpStatus = HttpStatus(404);
    /// `500 Internal Server Error`.
    pub const INTERNAL_SERVER_ERROR: HttpStatus = HttpStatus(500);

    /// The eight statuses reported in the paper's Tables 3 and 4, in the
    /// canonical order used throughout the reproduction (numeric ascending).
    pub const PAPER_STATUSES: [HttpStatus; 8] = [
        HttpStatus::OK,
        HttpStatus::NO_CONTENT,
        HttpStatus::FOUND,
        HttpStatus::NOT_MODIFIED,
        HttpStatus::BAD_REQUEST,
        HttpStatus::FORBIDDEN,
        HttpStatus::NOT_FOUND,
        HttpStatus::INTERNAL_SERVER_ERROR,
    ];

    /// Creates a status from a raw code.
    ///
    /// Returns `None` when `code` is outside `100..=599`.
    pub fn new(code: u16) -> Option<Self> {
        (100..=599).contains(&code).then_some(HttpStatus(code))
    }

    /// The numeric code.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// The response class (first digit).
    pub fn class(self) -> StatusClass {
        match self.0 / 100 {
            1 => StatusClass::Informational,
            2 => StatusClass::Success,
            3 => StatusClass::Redirection,
            4 => StatusClass::ClientError,
            _ => StatusClass::ServerError,
        }
    }

    /// `true` for `4xx` and `5xx` responses.
    ///
    /// Several detectors use a session's error ratio as a probing signal, so
    /// this predicate is on the hot path.
    pub fn is_error(self) -> bool {
        self.0 >= 400
    }

    /// `true` for `2xx` responses.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// `true` for `3xx` responses.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// The canonical reason phrase for well-known codes, or `"Unknown"`.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            206 => "Partial Content",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            304 => "Not Modified",
            307 => "Temporary Redirect",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            410 => "Gone",
            418 => "I'm a teapot",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Renders the label the paper uses in its tables, e.g.
    /// `"200 (OK)"` or `"500 (Internal Server Error)"`.
    pub fn paper_label(self) -> String {
        format!("{} ({})", self.0, self.reason())
    }
}

impl fmt::Display for HttpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u16> for HttpStatus {
    type Error = InvalidStatusCode;

    fn try_from(code: u16) -> Result<Self, Self::Error> {
        HttpStatus::new(code).ok_or(InvalidStatusCode(code))
    }
}

impl From<HttpStatus> for u16 {
    fn from(s: HttpStatus) -> u16 {
        s.0
    }
}

/// Error returned when converting an out-of-range integer to [`HttpStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStatusCode(pub u16);

impl fmt::Display for InvalidStatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "status code {} is outside 100..=599", self.0)
    }
}

impl std::error::Error for InvalidStatusCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_range() {
        assert!(HttpStatus::new(99).is_none());
        assert!(HttpStatus::new(600).is_none());
        assert!(HttpStatus::new(100).is_some());
        assert!(HttpStatus::new(599).is_some());
        assert_eq!(HttpStatus::try_from(604), Err(InvalidStatusCode(604)));
        assert_eq!(HttpStatus::try_from(204).unwrap(), HttpStatus::NO_CONTENT);
    }

    #[test]
    fn classes_follow_first_digit() {
        assert_eq!(
            HttpStatus::new(101).unwrap().class(),
            StatusClass::Informational
        );
        assert_eq!(HttpStatus::OK.class(), StatusClass::Success);
        assert_eq!(HttpStatus::FOUND.class(), StatusClass::Redirection);
        assert_eq!(HttpStatus::NOT_FOUND.class(), StatusClass::ClientError);
        assert_eq!(
            HttpStatus::INTERNAL_SERVER_ERROR.class(),
            StatusClass::ServerError
        );
    }

    #[test]
    fn error_predicate_covers_4xx_and_5xx() {
        assert!(HttpStatus::BAD_REQUEST.is_error());
        assert!(HttpStatus::INTERNAL_SERVER_ERROR.is_error());
        assert!(!HttpStatus::OK.is_error());
        assert!(!HttpStatus::NOT_MODIFIED.is_error());
        assert!(HttpStatus::NOT_MODIFIED.is_redirect());
        assert!(HttpStatus::NO_CONTENT.is_success());
    }

    #[test]
    fn paper_labels_match_the_tables() {
        assert_eq!(HttpStatus::OK.paper_label(), "200 (OK)");
        assert_eq!(HttpStatus::NO_CONTENT.paper_label(), "204 (No Content)");
        assert_eq!(HttpStatus::FOUND.paper_label(), "302 (Found)");
        assert_eq!(HttpStatus::NOT_MODIFIED.paper_label(), "304 (Not Modified)");
        assert_eq!(HttpStatus::BAD_REQUEST.paper_label(), "400 (Bad Request)");
        assert_eq!(HttpStatus::FORBIDDEN.paper_label(), "403 (Forbidden)");
        assert_eq!(HttpStatus::NOT_FOUND.paper_label(), "404 (Not Found)");
        assert_eq!(
            HttpStatus::INTERNAL_SERVER_ERROR.paper_label(),
            "500 (Internal Server Error)"
        );
    }

    #[test]
    fn paper_statuses_are_sorted_and_unique() {
        let codes: Vec<u16> = HttpStatus::PAPER_STATUSES
            .iter()
            .map(|s| s.as_u16())
            .collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted);
        assert_eq!(codes.len(), 8);
    }

    #[test]
    fn unknown_reason_is_nonempty() {
        assert_eq!(HttpStatus::new(599).unwrap().reason(), "Unknown");
    }
}
