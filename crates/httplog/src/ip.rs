//! IPv4 subnet utilities.
//!
//! The traffic generator allocates botnet nodes across subnets and the
//! detectors' reputation feeds are expressed as CIDR blocks, so both sides of
//! the reproduction share this small substrate.

use std::error::Error;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IPv4 CIDR block such as `203.0.113.0/24`.
///
/// The network address is stored normalised (host bits cleared), so two
/// blocks constructed from any address inside the same network compare equal.
///
/// ```
/// use divscrape_httplog::Cidr;
/// use std::net::Ipv4Addr;
///
/// let block: Cidr = "203.0.113.0/24".parse()?;
/// assert!(block.contains(Ipv4Addr::new(203, 0, 113, 77)));
/// assert!(!block.contains(Ipv4Addr::new(203, 0, 114, 1)));
/// assert_eq!(block.host_count(), 256);
/// # Ok::<(), divscrape_httplog::ip::ParseCidrError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cidr {
    network: u32,
    prefix: u8,
}

impl Cidr {
    /// Creates a block from any address within it and a prefix length.
    ///
    /// Returns `None` when `prefix > 32`.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Option<Self> {
        if prefix > 32 {
            return None;
        }
        let raw = u32::from(addr);
        Some(Self {
            network: raw & Self::mask(prefix),
            prefix,
        })
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix))
        }
    }

    /// The (normalised) network address.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// The prefix length.
    pub fn prefix(self) -> u8 {
        self.prefix
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask(self.prefix) == self.network
    }

    /// Number of addresses in the block (including network/broadcast).
    pub fn host_count(self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// The `index`-th address of the block (0 = the network address).
    ///
    /// Returns `None` when `index >= host_count()`.
    pub fn nth_host(self, index: u64) -> Option<Ipv4Addr> {
        (index < self.host_count()).then(|| Ipv4Addr::from(self.network + index as u32))
    }

    /// Whether this block fully contains `other`.
    pub fn contains_block(self, other: Cidr) -> bool {
        self.prefix <= other.prefix && self.contains(other.network())
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix)
    }
}

/// Error returned when a CIDR string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCidrError {
    input: String,
}

impl fmt::Display for ParseCidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR block `{}`", self.input)
    }
}

impl Error for ParseCidrError {}

impl FromStr for Cidr {
    type Err = ParseCidrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCidrError {
            input: s.to_owned(),
        };
        let (addr, prefix) = s.split_once('/').ok_or_else(err)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| err())?;
        let prefix: u8 = prefix.parse().map_err(|_| err())?;
        Cidr::new(addr, prefix).ok_or_else(err)
    }
}

/// Parses a dotted-quad IPv4 address, accepting exactly the strings
/// `str::parse::<Ipv4Addr>` accepts (four decimal octets 0–255, no
/// leading zeros, nothing else) — pinned against the standard parser
/// by [`tests::fast_ipv4_parse_matches_std`]. Hand-rolled because the
/// log-line hot path pays this per entry and the standard parser's
/// generality costs measurably there.
pub(crate) fn parse_ipv4(s: &str) -> Option<Ipv4Addr> {
    let b = s.as_bytes();
    let mut octets = [0u8; 4];
    let mut i = 0;
    for octet in &mut octets {
        if i > 0 {
            if b.get(i) != Some(&b'.') {
                return None;
            }
            i += 1;
        }
        let start = i;
        let mut value = 0u32;
        while let Some(d) = b.get(i).filter(|d| d.is_ascii_digit()) {
            value = value * 10 + u32::from(d - b'0');
            i += 1;
            if i - start > 3 {
                return None;
            }
        }
        if i == start || (i - start > 1 && b[start] == b'0') || value > 255 {
            return None;
        }
        *octet = value as u8;
    }
    (i == b.len()).then(|| Ipv4Addr::from(octets))
}

/// A deterministic, well-distributed 64-bit hash of an IPv4 address.
///
/// Used wherever the workspace needs a stable pseudo-random stream keyed by
/// client address (shard selection, per-client jitter) without pulling in a
/// hashing crate. This is the 64-bit finaliser from SplitMix64.
pub fn addr_hash(addr: Ipv4Addr, salt: u64) -> u64 {
    let mut z = u64::from(u32::from(addr)) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn normalises_host_bits() {
        let a = Cidr::new(ip(203, 0, 113, 77), 24).unwrap();
        let b = Cidr::new(ip(203, 0, 113, 0), 24).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.network(), ip(203, 0, 113, 0));
    }

    #[test]
    fn containment_across_prefixes() {
        let slash16 = Cidr::new(ip(10, 20, 0, 0), 16).unwrap();
        let slash24 = Cidr::new(ip(10, 20, 30, 0), 24).unwrap();
        assert!(slash16.contains_block(slash24));
        assert!(!slash24.contains_block(slash16));
        assert!(slash16.contains(ip(10, 20, 255, 255)));
        assert!(!slash16.contains(ip(10, 21, 0, 0)));
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let all = Cidr::new(ip(1, 2, 3, 4), 0).unwrap();
        assert!(all.contains(ip(255, 255, 255, 255)));
        assert!(all.contains(ip(0, 0, 0, 0)));
        assert_eq!(all.host_count(), 1 << 32);
    }

    #[test]
    fn host_enumeration() {
        let block = Cidr::new(ip(192, 0, 2, 0), 30).unwrap();
        assert_eq!(block.host_count(), 4);
        assert_eq!(block.nth_host(0), Some(ip(192, 0, 2, 0)));
        assert_eq!(block.nth_host(3), Some(ip(192, 0, 2, 3)));
        assert_eq!(block.nth_host(4), None);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let block: Cidr = "198.51.100.0/22".parse().unwrap();
        assert_eq!(block.prefix(), 22);
        assert_eq!(block.to_string(), "198.51.100.0/22");
        // Non-normalised input displays normalised.
        let odd: Cidr = "198.51.100.99/24".parse().unwrap();
        assert_eq!(odd.to_string(), "198.51.100.0/24");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1.2.3.4",
            "1.2.3.4/33",
            "1.2.3/24",
            "a.b.c.d/8",
            "1.2.3.4/-1",
        ] {
            assert!(bad.parse::<Cidr>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn prefix_32_is_single_host() {
        let host = Cidr::new(ip(8, 8, 8, 8), 32).unwrap();
        assert_eq!(host.host_count(), 1);
        assert!(host.contains(ip(8, 8, 8, 8)));
        assert!(!host.contains(ip(8, 8, 8, 9)));
    }

    #[test]
    fn fast_ipv4_parse_matches_std() {
        let mut corpus: Vec<String> = [
            "",
            ".",
            "...",
            "1.2.3.4",
            "0.0.0.0",
            "255.255.255.255",
            "256.1.1.1",
            "1.256.1.1",
            "1.1.1.256",
            "999.1.1.1",
            "1.2.3",
            "1.2.3.4.5",
            "1.2.3.4.",
            ".1.2.3.4",
            "01.2.3.4",
            "1.02.3.4",
            "1.2.3.04",
            "00.0.0.0",
            "0.0.0.00",
            "1.2.3.4 ",
            " 1.2.3.4",
            "1 .2.3.4",
            "a.b.c.d",
            "1.2.3.x",
            "1,2,3,4",
            "1..3.4",
            "1.2.3.+4",
            "1.2.3.-4",
            "1.2.3.4\n",
            "0x1.2.3.4",
            "1.2.3.4/8",
            "1234",
            "192.168.000.001",
            "１.2.3.4",
        ]
        .into_iter()
        .map(str::to_owned)
        .collect();
        // Dense sweep of single-octet edge values in every position.
        for v in [0u32, 1, 9, 10, 99, 100, 199, 249, 250, 255, 256, 999] {
            for pos in 0..4 {
                let mut parts = ["1", "22", "3", "44"].map(str::to_owned);
                parts[pos] = v.to_string();
                corpus.push(parts.join("."));
            }
        }
        for s in corpus {
            assert_eq!(
                parse_ipv4(&s),
                s.parse::<Ipv4Addr>().ok(),
                "fast parser diverged on {s:?}"
            );
        }
    }

    #[test]
    fn addr_hash_is_deterministic_and_salt_sensitive() {
        let a = addr_hash(ip(10, 0, 0, 1), 7);
        let b = addr_hash(ip(10, 0, 0, 1), 7);
        let c = addr_hash(ip(10, 0, 0, 1), 8);
        let d = addr_hash(ip(10, 0, 0, 2), 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn addr_hash_spreads_sequential_addresses() {
        // Sequential addresses should land in different low-bit buckets often
        // enough to shard evenly: check at least 6 of 8 buckets hit over /29.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..64u8 {
            buckets.insert(addr_hash(ip(10, 0, 0, i), 0) % 8);
        }
        assert!(buckets.len() >= 6, "only {} buckets hit", buckets.len());
    }
}
