//! HTTP request methods.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An HTTP request method as it appears in an access-log request line.
///
/// The set covers every method the traffic generator emits and the handful of
/// exotic ones that scanners probe with; unknown tokens are a parse error
/// (a real Apache log line with an unknown token is recorded verbatim by the
/// server, but none of the systems modelled here ever emit one).
///
/// ```
/// use divscrape_httplog::HttpMethod;
///
/// let m: HttpMethod = "GET".parse()?;
/// assert_eq!(m, HttpMethod::Get);
/// assert!(m.is_safe());
/// # Ok::<(), divscrape_httplog::ParseMethodError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum HttpMethod {
    /// `GET` — retrieve a resource.
    Get,
    /// `HEAD` — retrieve headers only. Over-represented in crawler traffic.
    Head,
    /// `POST` — submit a form or API call.
    Post,
    /// `PUT` — upload a resource (rare in browse traffic; a scanner signal).
    Put,
    /// `DELETE` — remove a resource (a scanner signal).
    Delete,
    /// `OPTIONS` — capability probe; CORS preflight or scanner probe.
    Options,
    /// `PATCH` — partial update.
    Patch,
    /// `TRACE` — diagnostic loop-back; essentially always a probe.
    Trace,
    /// `CONNECT` — tunnel request; essentially always a probe.
    Connect,
}

impl HttpMethod {
    /// All methods, in declaration order.
    pub const ALL: [HttpMethod; 9] = [
        HttpMethod::Get,
        HttpMethod::Head,
        HttpMethod::Post,
        HttpMethod::Put,
        HttpMethod::Delete,
        HttpMethod::Options,
        HttpMethod::Patch,
        HttpMethod::Trace,
        HttpMethod::Connect,
    ];

    /// The canonical upper-case token for the method.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Head => "HEAD",
            HttpMethod::Post => "POST",
            HttpMethod::Put => "PUT",
            HttpMethod::Delete => "DELETE",
            HttpMethod::Options => "OPTIONS",
            HttpMethod::Patch => "PATCH",
            HttpMethod::Trace => "TRACE",
            HttpMethod::Connect => "CONNECT",
        }
    }

    /// Whether the method is *safe* in the RFC 7231 sense (read-only).
    pub fn is_safe(self) -> bool {
        matches!(
            self,
            HttpMethod::Get | HttpMethod::Head | HttpMethod::Options | HttpMethod::Trace
        )
    }

    /// Whether the method is idempotent per RFC 7231.
    pub fn is_idempotent(self) -> bool {
        self.is_safe() || matches!(self, HttpMethod::Put | HttpMethod::Delete)
    }

    /// Whether the method is one that ordinary browser navigation produces
    /// (`GET`/`POST`, plus `HEAD` from some prefetchers). Scanners and
    /// exfiltration tooling use the rest far more often, which is why several
    /// detectors treat non-browsing methods as a suspicion signal.
    pub fn is_browsing(self) -> bool {
        matches!(self, HttpMethod::Get | HttpMethod::Post | HttpMethod::Head)
    }
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when a method token is not a recognised HTTP method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError {
    token: String,
}

impl ParseMethodError {
    /// The offending token.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognised HTTP method `{}`", self.token)
    }
}

impl Error for ParseMethodError {}

impl FromStr for HttpMethod {
    type Err = ParseMethodError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "GET" => Ok(HttpMethod::Get),
            "HEAD" => Ok(HttpMethod::Head),
            "POST" => Ok(HttpMethod::Post),
            "PUT" => Ok(HttpMethod::Put),
            "DELETE" => Ok(HttpMethod::Delete),
            "OPTIONS" => Ok(HttpMethod::Options),
            "PATCH" => Ok(HttpMethod::Patch),
            "TRACE" => Ok(HttpMethod::Trace),
            "CONNECT" => Ok(HttpMethod::Connect),
            other => Err(ParseMethodError {
                token: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_methods() {
        for m in HttpMethod::ALL {
            let parsed: HttpMethod = m.as_str().parse().unwrap();
            assert_eq!(parsed, m);
            assert_eq!(m.to_string(), m.as_str());
        }
    }

    #[test]
    fn rejects_lowercase_and_garbage() {
        assert!("get".parse::<HttpMethod>().is_err());
        assert!("".parse::<HttpMethod>().is_err());
        assert!("FETCH".parse::<HttpMethod>().is_err());
        let err = "SPY".parse::<HttpMethod>().unwrap_err();
        assert_eq!(err.token(), "SPY");
    }

    #[test]
    fn safety_classification_matches_rfc7231() {
        assert!(HttpMethod::Get.is_safe());
        assert!(HttpMethod::Head.is_safe());
        assert!(HttpMethod::Options.is_safe());
        assert!(HttpMethod::Trace.is_safe());
        assert!(!HttpMethod::Post.is_safe());
        assert!(!HttpMethod::Put.is_safe());
        assert!(!HttpMethod::Delete.is_safe());
    }

    #[test]
    fn idempotency_includes_put_and_delete() {
        assert!(HttpMethod::Put.is_idempotent());
        assert!(HttpMethod::Delete.is_idempotent());
        assert!(!HttpMethod::Post.is_idempotent());
        assert!(!HttpMethod::Patch.is_idempotent());
    }

    #[test]
    fn browsing_methods_are_narrow() {
        let browsing: Vec<_> = HttpMethod::ALL
            .into_iter()
            .filter(|m| m.is_browsing())
            .collect();
        assert_eq!(
            browsing,
            vec![HttpMethod::Get, HttpMethod::Head, HttpMethod::Post]
        );
    }
}
