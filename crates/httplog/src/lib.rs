//! Apache HTTP access-log substrate for the `divscrape` reproduction.
//!
//! The paper ("Using Diverse Detectors for Detecting Malicious Web Scraping
//! Activity", DSN 2018) analyses detectors that consume Apache **Combined Log
//! Format** access logs. This crate provides everything the rest of the
//! workspace needs to model such logs faithfully:
//!
//! * [`HttpMethod`] and [`HttpStatus`] — request methods and response
//!   statuses, covering the status set that appears in the paper's Tables 3
//!   and 4 (`200`, `204`, `302`, `304`, `400`, `403`, `404`, `500`).
//! * [`ClfTimestamp`] — the `[11/Mar/2018:06:25:14 +0000]` timestamp format,
//!   with hand-rolled proleptic-Gregorian civil-time arithmetic (no external
//!   time crate is used).
//! * [`RequestPath`] and [`RequestLine`] — a structured model of the request
//!   target, with query handling and a coarse [`ResourceClass`].
//! * [`UserAgent`] — user-agent strings with a coarse [`AgentFamily`]
//!   classification (browsers, well-known crawlers, HTTP tooling).
//! * [`LogEntry`] — one Combined Log Format record, with a builder,
//!   [`parse`](LogEntry::parse) and `Display` round-tripping.
//! * [`LogReader`] / [`LogWriter`] — streaming line-oriented I/O.
//! * [`LineFramer`] — incremental line framing for live byte streams
//!   (file tails, sockets): chunk-boundary reassembly, bounded line
//!   length, terminator/encoding normalization.
//! * [`Cidr`] and [`ip`] helpers — IPv4 subnet utilities used by the traffic
//!   generator (botnet address allocation) and detectors (reputation feeds).
//!
//! # Example
//!
//! ```
//! use divscrape_httplog::LogEntry;
//!
//! let line = r#"198.51.100.7 - - [11/Mar/2018:06:25:14 +0000] "GET /search?q=NCE-LHR HTTP/1.1" 200 5123 "https://shop.example/" "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36""#;
//! let entry = LogEntry::parse(line)?;
//! assert_eq!(entry.status().as_u16(), 200);
//! assert_eq!(entry.request().path().path(), "/search");
//! assert_eq!(entry.to_string(), line);
//! # Ok::<(), divscrape_httplog::ParseLogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod entry;
mod error;
mod framing;
mod io;
pub mod ip;
mod method;
mod path;
mod request;
mod status;
mod timestamp;
mod useragent;
pub mod view;

pub use entry::{LogEntry, LogEntryBuilder};
pub use error::{BuildLogEntryError, ParseLogError, ParseLogErrorKind};
pub use framing::{FramedLine, FramedLineRef, LineFramer, DEFAULT_MAX_LINE};
pub use io::{LogReader, LogWriter};
pub use ip::Cidr;
pub use method::{HttpMethod, ParseMethodError};
pub use path::{RequestPath, ResourceClass};
pub use request::{HttpVersion, RequestLine};
pub use status::{HttpStatus, StatusClass};
pub use timestamp::{ClfTimestamp, ParseTimestampError, SECONDS_PER_DAY};
pub use useragent::{AgentFamily, UserAgent};
pub use view::{fnv1a, EntryBlock, EntryRef, EntryView, UaInterner};
