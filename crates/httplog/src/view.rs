//! The zero-copy entry spine: borrowed log-entry views, the per-chunk
//! text arena, and the user-agent interner.
//!
//! [`LogEntry`] owns heap `String`s for every text field, which is the
//! right shape for serialization and long-lived storage but wasteful on
//! the parse → detect hot path, where an entry is inspected once and
//! dropped. This module provides the borrowed alternative:
//!
//! * [`EntryRef`] is a `Copy` view of one parsed line, borrowing its
//!   text from wherever the line lives. Classification
//!   (resource class, agent family, fingerprint) is computed **once at
//!   parse time** with the allocation-free classifiers
//!   ([`AgentFamily::classify`], [`ResourceClass::classify`]) instead of
//!   per detector per entry.
//! * [`EntryView`] abstracts over owned and borrowed entries, so a
//!   detector's core logic is written once and runs on both. The
//!   [`LogEntry`] implementation delegates to the existing (allocating)
//!   accessors — the owned path's cost and verdicts are untouched.
//! * [`EntryBlock`] is the per-chunk arena: parsed lines are appended to
//!   one contiguous text buffer with compact per-entry metadata, so a
//!   whole chunk of entries is freed (and the buffers reused) in O(1)
//!   when the chunk finalizes.
//! * [`UaInterner`] caches `(fingerprint, family)` per distinct
//!   user-agent string, so repeated agents — the overwhelmingly common
//!   case — cost one hash lookup instead of a classify pass.
//!
//! Both parse paths share one core (`parse_parts` in the entry module),
//! so [`EntryRef::parse`] and [`LogEntry::parse`] accept and reject
//! exactly the same lines with exactly the same errors, by construction;
//! the property tests at the bottom of this module pin that and the
//! classifier equivalences on hostile inputs.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::entry::{parse_parts, RawParts};
use crate::error::ParseLogError;
use crate::{AgentFamily, ClfTimestamp, HttpMethod, HttpStatus, LogEntry, ResourceClass};

/// FNV-1a over raw bytes — the same stable 64-bit hash as
/// [`UserAgent::fingerprint`](crate::UserAgent::fingerprint), usable
/// without materialising a [`UserAgent`](crate::UserAgent).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Everything a detector reads from a log entry, abstracted over owned
/// ([`LogEntry`]) and borrowed ([`EntryRef`]) representations.
///
/// The detectors' batch cores are generic over this trait, which is what
/// makes the zero-copy path verdict-identical to the owned path: both
/// run the *same* code, they only differ in where the bytes live and
/// whether classification was precomputed.
pub trait EntryView {
    /// The client address.
    fn addr(&self) -> Ipv4Addr;
    /// When the request completed, as Unix epoch seconds.
    fn epoch_seconds(&self) -> i64;
    /// The request method.
    fn method(&self) -> HttpMethod;
    /// The full request target, query string included.
    fn target(&self) -> &str;
    /// The path component of the target (everything before `?`).
    fn path(&self) -> &str;
    /// The response status.
    fn status(&self) -> HttpStatus;
    /// Whether a `Referer` header was sent.
    fn has_referrer(&self) -> bool;
    /// The user-agent string (empty when absent; `-` is normalised away).
    fn ua_str(&self) -> &str;
    /// The user agent's coarse family.
    fn agent_family(&self) -> AgentFamily;
    /// The user agent's stable 64-bit fingerprint.
    fn ua_fingerprint(&self) -> u64;
    /// The target's resource class.
    fn resource_class(&self) -> ResourceClass;

    /// Key identifying the client: address plus user-agent fingerprint
    /// (see [`LogEntry::client_key`]).
    fn client_key(&self) -> (Ipv4Addr, u64) {
        (self.addr(), self.ua_fingerprint())
    }
}

impl EntryView for LogEntry {
    fn addr(&self) -> Ipv4Addr {
        LogEntry::addr(self)
    }

    fn epoch_seconds(&self) -> i64 {
        self.timestamp().epoch_seconds()
    }

    fn method(&self) -> HttpMethod {
        self.request().method()
    }

    fn target(&self) -> &str {
        self.request().path().as_str()
    }

    fn path(&self) -> &str {
        self.request().path().path()
    }

    fn status(&self) -> HttpStatus {
        LogEntry::status(self)
    }

    fn has_referrer(&self) -> bool {
        self.referrer().is_some()
    }

    fn ua_str(&self) -> &str {
        self.user_agent().as_str()
    }

    fn agent_family(&self) -> AgentFamily {
        self.user_agent().family()
    }

    fn ua_fingerprint(&self) -> u64 {
        self.user_agent().fingerprint()
    }

    fn resource_class(&self) -> ResourceClass {
        self.request().path().resource_class()
    }

    fn client_key(&self) -> (Ipv4Addr, u64) {
        LogEntry::client_key(self)
    }
}

/// A borrowed, `Copy` view of one parsed Combined Log Format line — the
/// zero-copy counterpart of [`LogEntry`].
///
/// Text fields borrow from the parsed line (or from an [`EntryBlock`]'s
/// arena); classification is precomputed at parse time. Fields detectors
/// never read (ident, user, referrer text, response size) are not
/// carried — [`to_entry`](Self::to_entry) reparses the retained full
/// line when an owned entry is needed, so nothing is lost.
///
/// ```
/// use divscrape_httplog::{EntryRef, EntryView, ResourceClass};
///
/// let line = r#"10.0.0.9 - - [11/Mar/2018:00:00:05 +0000] "GET /offers?p=2 HTTP/1.1" 200 77 "-" "curl/7.58.0""#;
/// let view = EntryRef::parse(line)?;
/// assert_eq!(view.path(), "/offers");
/// assert_eq!(view.resource_class(), ResourceClass::Page);
/// assert_eq!(view.to_entry(), divscrape_httplog::LogEntry::parse(line)?);
/// # Ok::<(), divscrape_httplog::ParseLogError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryRef<'s> {
    line: &'s str,
    addr: Ipv4Addr,
    timestamp: ClfTimestamp,
    method: HttpMethod,
    target: &'s str,
    /// Bytes of `target` before `?` (the whole target when no query).
    path_len: u32,
    status: HttpStatus,
    has_referrer: bool,
    ua: &'s str,
    ua_fp: u64,
    family: AgentFamily,
    resource: ResourceClass,
}

impl<'s> EntryRef<'s> {
    /// Parses a Combined Log Format line in place — no allocation, same
    /// accept/reject behaviour and [`ParseLogError`]s as
    /// [`LogEntry::parse`] (both delegate to one shared core).
    pub fn parse(line: &'s str) -> Result<Self, ParseLogError> {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        let parts = parse_parts(trimmed)?;
        let ua = normalize_ua(parts.ua);
        Ok(Self::from_parts(
            trimmed,
            &parts,
            ua,
            fnv1a(ua.as_bytes()),
            AgentFamily::classify(ua),
        ))
    }

    /// Assembles the view from parsed parts plus precomputed (possibly
    /// interned) agent identity.
    fn from_parts(
        line: &'s str,
        parts: &RawParts<'s>,
        ua: &'s str,
        ua_fp: u64,
        family: AgentFamily,
    ) -> Self {
        let path_len = parts.target.find('?').unwrap_or(parts.target.len());
        EntryRef {
            line,
            addr: parts.addr,
            timestamp: parts.timestamp,
            method: parts.method,
            target: parts.target,
            path_len: path_len as u32,
            status: parts.status,
            has_referrer: parts.referrer.is_some(),
            ua,
            ua_fp,
            family,
            resource: ResourceClass::classify(&parts.target[..path_len]),
        }
    }

    /// The full original line (terminator stripped).
    pub fn line(&self) -> &'s str {
        self.line
    }

    /// When the request completed.
    pub fn timestamp(&self) -> ClfTimestamp {
        self.timestamp
    }

    /// Materialises the owned [`LogEntry`] by reparsing the retained
    /// line — bit-identical to [`LogEntry::parse`] of the original
    /// input, including the fields the view itself does not carry.
    pub fn to_entry(&self) -> LogEntry {
        LogEntry::parse(self.line).expect("EntryRef always wraps a line that parsed")
    }
}

impl EntryView for EntryRef<'_> {
    fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    fn epoch_seconds(&self) -> i64 {
        self.timestamp.epoch_seconds()
    }

    fn method(&self) -> HttpMethod {
        self.method
    }

    fn target(&self) -> &str {
        self.target
    }

    fn path(&self) -> &str {
        &self.target[..self.path_len as usize]
    }

    fn status(&self) -> HttpStatus {
        self.status
    }

    fn has_referrer(&self) -> bool {
        self.has_referrer
    }

    fn ua_str(&self) -> &str {
        self.ua
    }

    fn agent_family(&self) -> AgentFamily {
        self.family
    }

    fn ua_fingerprint(&self) -> u64 {
        self.ua_fp
    }

    fn resource_class(&self) -> ResourceClass {
        self.resource
    }
}

/// The CLF absent marker normalised away, mirroring [`UserAgent::new`].
fn normalize_ua(raw: &str) -> &str {
    if raw == "-" {
        ""
    } else {
        raw
    }
}

/// Default capacity bound of a [`UaInterner`] (distinct agents).
const DEFAULT_INTERNER_CAP: usize = 4096;

/// Caches `(fingerprint, family)` per distinct user-agent string.
///
/// Real traffic repeats a small set of agent strings millions of times;
/// interning turns the per-entry classify-and-hash into one map lookup
/// (allocation-free: the probe borrows the candidate string). Growth is
/// bounded by **generation swap**: when the current generation reaches
/// its capacity bound it is demoted to the previous generation (whose
/// contents are dropped) instead of being cleared outright, and a miss
/// in the current generation promotes a previous-generation hit back.
/// A hostile feed of unique agents therefore costs re-classification,
/// never unbounded memory — at most `2 × cap` agents are ever cached —
/// while the popular agents of real traffic survive the swap. Cached
/// identities are content-derived (FNV-1a over the agent bytes), so an
/// interned fingerprint never changes across swaps.
#[derive(Debug, Clone)]
pub struct UaInterner {
    map: HashMap<String, (u64, AgentFamily)>,
    prev: HashMap<String, (u64, AgentFamily)>,
    cap: usize,
}

impl Default for UaInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl UaInterner {
    /// An interner with the default capacity bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_INTERNER_CAP)
    }

    /// An interner holding at most `cap` distinct agents (≥ 1) per
    /// generation before swapping generations.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: HashMap::new(),
            prev: HashMap::new(),
            cap: cap.max(1),
        }
    }

    /// The agent's `(fingerprint, family)`, computed on first sight and
    /// cached. `ua` must already be `-`-normalised (empty when absent).
    pub fn resolve(&mut self, ua: &str) -> (u64, AgentFamily) {
        if let Some(&cached) = self.map.get(ua) {
            return cached;
        }
        // Promote a previous-generation hit instead of re-classifying:
        // popular agents survive the swap, churny one-offs age out.
        let identity = match self.prev.remove_entry(ua) {
            Some((owned, identity)) => {
                if self.map.len() >= self.cap {
                    self.prev.clear();
                    std::mem::swap(&mut self.map, &mut self.prev);
                }
                self.map.insert(owned, identity);
                return identity;
            }
            None => (fnv1a(ua.as_bytes()), AgentFamily::classify(ua)),
        };
        if self.map.len() >= self.cap {
            self.prev.clear();
            std::mem::swap(&mut self.map, &mut self.prev);
        }
        self.map.insert(ua.to_owned(), identity);
        identity
    }

    /// Distinct agents currently cached across both generations.
    pub fn len(&self) -> usize {
        self.map.len() + self.prev.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty() && self.prev.is_empty()
    }
}

/// Per-entry metadata inside an [`EntryBlock`]: `Copy` scalars plus byte
/// ranges into the block's text arena.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    line: (u32, u32),
    addr: Ipv4Addr,
    timestamp: ClfTimestamp,
    method: HttpMethod,
    target: (u32, u32),
    path_len: u32,
    status: HttpStatus,
    has_referrer: bool,
    ua: (u32, u32),
    ua_fp: u64,
    family: AgentFamily,
    resource: ResourceClass,
}

/// A chunk-sized arena of parsed entries: one contiguous text buffer
/// plus compact per-entry metadata.
///
/// Lines are parsed **before** being appended (a malformed line leaves
/// the block untouched), so every stored entry is valid by construction
/// and [`view`](Self::view) is infallible. Finalizing a chunk frees all
/// of its entries at once — [`clear`](Self::clear) keeps the buffers'
/// capacity, so a recycled block's steady state performs **zero heap
/// allocations per entry** (pinned by the repository's counting-allocator
/// test).
///
/// ```
/// use divscrape_httplog::{EntryBlock, EntryView};
///
/// let mut block = EntryBlock::new();
/// block.push_line(r#"10.0.0.9 - - [11/Mar/2018:00:00:05 +0000] "GET /offers HTTP/1.1" 200 77 "-" "curl/7.58.0""#)?;
/// assert_eq!(block.len(), 1);
/// assert_eq!(block.view(0).path(), "/offers");
/// # Ok::<(), divscrape_httplog::ParseLogError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct EntryBlock {
    text: String,
    metas: Vec<EntryMeta>,
    interner: UaInterner,
}

impl EntryBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses one CLF line and appends it to the arena. On error nothing
    /// is stored and the error is exactly what [`LogEntry::parse`] would
    /// report for the same line.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLogError`] with the failing field kind and byte
    /// offset.
    pub fn push_line(&mut self, line: &str) -> Result<(), ParseLogError> {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        let parts = parse_parts(trimmed)?;
        let ua = normalize_ua(parts.ua);
        let (ua_fp, family) = self.interner.resolve(ua);
        let base = self.text.len();
        let range = |s: &str| -> (u32, u32) {
            if s.is_empty() {
                return (0, 0);
            }
            let start = base + (s.as_ptr() as usize - trimmed.as_ptr() as usize);
            (start as u32, (start + s.len()) as u32)
        };
        let path_len = parts.target.find('?').unwrap_or(parts.target.len());
        self.metas.push(EntryMeta {
            line: (base as u32, (base + trimmed.len()) as u32),
            addr: parts.addr,
            timestamp: parts.timestamp,
            method: parts.method,
            target: range(parts.target),
            path_len: path_len as u32,
            status: parts.status,
            has_referrer: parts.referrer.is_some(),
            ua: range(ua),
            ua_fp,
            family,
            resource: ResourceClass::classify(&parts.target[..path_len]),
        });
        self.text.push_str(trimmed);
        Ok(())
    }

    /// The `i`-th entry as a borrowed view.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn view(&self, i: usize) -> EntryRef<'_> {
        let m = &self.metas[i];
        let slice = |r: (u32, u32)| &self.text[r.0 as usize..r.1 as usize];
        EntryRef {
            line: slice(m.line),
            addr: m.addr,
            timestamp: m.timestamp,
            method: m.method,
            target: slice(m.target),
            path_len: m.path_len,
            status: m.status,
            has_referrer: m.has_referrer,
            ua: slice(m.ua),
            ua_fp: m.ua_fp,
            family: m.family,
            resource: m.resource,
        }
    }

    /// The `i`-th entry's full original line (terminator stripped) —
    /// what [`LogEntry::parse`] reconstructs the owned entry from.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn line(&self, i: usize) -> &str {
        let (start, end) = self.metas[i].line;
        &self.text[start as usize..end as usize]
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the block holds no entries.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Bytes of line text stored.
    pub fn text_bytes(&self) -> usize {
        self.text.len()
    }

    /// Drops every entry at once, keeping the text and metadata buffers'
    /// capacity **and** the warm interner — the recycling step that makes
    /// a steady-state chunk allocation-free.
    pub fn clear(&mut self) {
        self.text.clear();
        self.metas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FramedLine, FramedLineRef, LineFramer, RequestPath, UserAgent};
    use proptest::prelude::*;

    const SAMPLE: &str = r#"198.51.100.7 - - [11/Mar/2018:06:25:14 +0000] "GET /search?q=NCE-LHR HTTP/1.1" 200 5123 "https://shop.example/" "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36""#;

    /// A pool of line fragments property tests mutate and splice —
    /// valid lines, truncations, and hostile garbage.
    fn fragment_pool() -> Vec<String> {
        vec![
            SAMPLE.to_owned(),
            r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "HEAD / HTTP/1.0" 204 - "-" "-""#.to_owned(),
            r#"10.0.0.1 ident alice [11/Mar/2018:00:00:00 +0000] "GET /api/v1 HTTP/1.1" 200 1 "-" "curl/7.58.0""#
                .to_owned(),
            r#"10.0.0.1 - frank [11/Mar/2018:10:00:00 +0000] "GET /offers/3 HTTP/1.0" 200 2326"#
                .to_owned(),
            r#"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] "GET / HTTP/1.1" 200 1 "-" "weird \"agent\"""#
                .to_owned(),
            "not a log line at all".to_owned(),
            String::new(),
            "\u{0}\u{0}\u{0}".to_owned(),
        ]
    }

    /// Byte-for-byte agreement of the borrowed and owned parsers on one
    /// input: same accept/reject, same error kind and offset, and on
    /// success every shared field matches.
    fn assert_parsers_agree(line: &str) {
        let owned = LogEntry::parse(line);
        let borrowed = EntryRef::parse(line);
        match (owned, borrowed) {
            (Ok(o), Ok(b)) => {
                assert_eq!(b.to_entry(), o, "to_entry mismatch on {line:?}");
                assert_eq!(EntryView::addr(&b), EntryView::addr(&o));
                assert_eq!(b.epoch_seconds(), EntryView::epoch_seconds(&o));
                assert_eq!(EntryView::method(&b), EntryView::method(&o));
                assert_eq!(b.target(), EntryView::target(&o));
                assert_eq!(EntryView::path(&b), EntryView::path(&o));
                assert_eq!(EntryView::status(&b), EntryView::status(&o));
                assert_eq!(b.has_referrer(), o.has_referrer());
                assert_eq!(b.ua_str(), EntryView::ua_str(&o));
                assert_eq!(b.agent_family(), o.agent_family());
                assert_eq!(b.ua_fingerprint(), o.ua_fingerprint());
                assert_eq!(EntryView::resource_class(&b), EntryView::resource_class(&o));
                assert_eq!(EntryView::client_key(&b), EntryView::client_key(&o));
            }
            (Err(oe), Err(be)) => {
                assert_eq!(oe, be, "error mismatch on {line:?}");
            }
            (o, b) => panic!("accept/reject mismatch on {line:?}: owned {o:?} vs borrowed {b:?}"),
        }
    }

    #[test]
    fn borrowed_parse_agrees_on_fixtures() {
        for line in fragment_pool() {
            assert_parsers_agree(&line);
        }
    }

    #[test]
    fn block_views_match_standalone_parse() {
        let mut block = EntryBlock::new();
        let lines: Vec<String> = fragment_pool()
            .into_iter()
            .filter(|l| LogEntry::parse(l).is_ok())
            .collect();
        for line in &lines {
            block.push_line(line).unwrap();
        }
        assert_eq!(block.len(), lines.len());
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(block.line(i), line.trim_end_matches(['\r', '\n']));
            let from_block = block.view(i);
            let standalone = EntryRef::parse(line).unwrap();
            assert_eq!(from_block, standalone, "view {i} diverged");
            assert_eq!(from_block.to_entry(), LogEntry::parse(line).unwrap());
        }
    }

    #[test]
    fn block_rejects_malformed_lines_without_storing() {
        let mut block = EntryBlock::new();
        block.push_line(SAMPLE).unwrap();
        let before = (block.len(), block.text_bytes());
        assert!(block.push_line("garbage").is_err());
        assert_eq!((block.len(), block.text_bytes()), before);
        // The good entry is still intact after the rejected push.
        assert_eq!(block.view(0).to_entry(), LogEntry::parse(SAMPLE).unwrap());
    }

    #[test]
    fn block_clear_keeps_capacity_and_interner() {
        let mut block = EntryBlock::new();
        block.push_line(SAMPLE).unwrap();
        let interned = block.interner.len();
        assert!(interned > 0);
        block.clear();
        assert!(block.is_empty());
        assert_eq!(block.interner.len(), interned, "interner was cleared");
        block.push_line(SAMPLE).unwrap();
        assert_eq!(block.view(0).to_entry(), LogEntry::parse(SAMPLE).unwrap());
    }

    #[test]
    fn interner_clears_at_capacity_and_stays_correct() {
        let mut interner = UaInterner::with_capacity(4);
        for i in 0..40 {
            let ua = format!("agent/{i}");
            let (fp, family) = interner.resolve(&ua);
            assert_eq!(fp, fnv1a(ua.as_bytes()));
            assert_eq!(family, AgentFamily::classify(&ua));
            // Two generations of at most `cap` agents each.
            assert!(interner.len() <= 8, "interner grew past both generations");
        }
        // Cached answers equal fresh answers.
        assert_eq!(
            interner.resolve("agent/39"),
            (fnv1a(b"agent/39"), AgentFamily::classify("agent/39"))
        );
    }

    #[test]
    fn interner_ids_are_stable_across_generation_swaps() {
        // Adversarial churn: a popular agent interleaved with unique
        // one-offs that force generation swaps. The popular agent's
        // interned id must never change — within a chunk or across the
        // whole churn — because ids are content-derived.
        let mut interner = UaInterner::with_capacity(4);
        let popular = "Mozilla/5.0 (Windows NT 10.0) Chrome/64.0";
        let (first_fp, first_family) = interner.resolve(popular);
        for i in 0..200 {
            let churn = format!("hostile-bot/{i}");
            interner.resolve(&churn);
            assert_eq!(
                interner.resolve(popular),
                (first_fp, first_family),
                "interned id drifted after {i} churn agents"
            );
            assert!(interner.len() <= 8);
        }
        // A block fed the same churn keeps every stored entry's
        // fingerprint equal to the standalone parse.
        let mut block = EntryBlock::new();
        let mut lines = Vec::new();
        for i in 0..200 {
            let ua = if i % 3 == 0 {
                popular.to_owned()
            } else {
                format!("hostile-bot/{i}")
            };
            lines.push(format!(
                "10.0.0.9 - - [11/Mar/2018:00:00:05 +0000] \"GET /offers HTTP/1.1\" 200 77 \"-\" \"{ua}\""
            ));
        }
        for line in &lines {
            block.push_line(line).unwrap();
        }
        for (i, line) in lines.iter().enumerate() {
            let standalone = EntryRef::parse(line).unwrap();
            assert_eq!(
                block.view(i).ua_fingerprint(),
                standalone.ua_fingerprint(),
                "fingerprint {i} diverged under interner churn"
            );
        }
    }

    proptest! {
        // Borrowed parse == owned parse on arbitrary hostile bytes
        // (lossily decoded, as a framer would deliver them).
        #[test]
        fn parsers_agree_on_hostile_bytes(
            bytes in proptest::collection::vec(0u8..=255, 0..200),
        ) {
            let line = String::from_utf8_lossy(&bytes);
            assert_parsers_agree(&line);
        }

        // Borrowed parse == owned parse on mutated valid lines:
        // truncations, byte flips and splices of real CLF fragments.
        #[test]
        fn parsers_agree_on_mutated_lines(
            which in 0usize..8,
            cut in 0usize..200,
            flip_at in 0usize..200,
            flip_to in 0u8..=255,
            splice in 0usize..8,
        ) {
            let pool = fragment_pool();
            let mut line = pool[which % pool.len()].clone();
            line.push_str(&pool[splice % pool.len()]);
            let cut = cut.min(line.len());
            if !line.is_char_boundary(cut) {
                // reject cuts landing mid-character so truncate is valid
                return Err(proptest::TestCaseError::Reject);
            }
            line.truncate(cut);
            let mut bytes = line.into_bytes();
            if !bytes.is_empty() {
                let at = flip_at % bytes.len();
                bytes[at] = flip_to;
            }
            let line = String::from_utf8_lossy(&bytes).into_owned();
            assert_parsers_agree(&line);
        }

        // The allocation-free classifiers equal their allocating forms
        // on arbitrary (lossily decoded) strings.
        #[test]
        fn classifiers_match_allocating_forms(
            bytes in proptest::collection::vec(0u8..=255, 0..64),
        ) {
            let s = String::from_utf8_lossy(&bytes).into_owned();
            assert_eq!(
                AgentFamily::classify(&s),
                UserAgent::new(s.clone()).family(),
                "family mismatch on {s:?}"
            );
            let target = format!("/{s}");
            let p = RequestPath::parse(&target);
            assert_eq!(
                ResourceClass::classify(p.path()),
                p.resource_class(),
                "resource mismatch on {target:?}"
            );
            assert_eq!(fnv1a(s.as_bytes()), UserAgent::new(s).fingerprint());
        }

        // The framer never panics on hostile bytes, the borrowed and
        // owned line streams are identical, chunking is invisible, and
        // framed lines respect the cap.
        #[test]
        fn framer_is_hostile_input_safe(
            bytes in proptest::collection::vec(0u8..=255, 0..400),
            chunk in 1usize..17,
            max_line in 1usize..64,
        ) {
            // Owned stream, fed whole.
            let mut whole = LineFramer::with_max_line(max_line);
            whole.push(&bytes);
            let mut from_whole = Vec::new();
            while let Some(line) = whole.next_line() {
                from_whole.push(line);
            }
            if let Some(line) = whole.finish() {
                from_whole.push(line);
            }

            // Borrowed stream, fed in chunks (boundaries land anywhere,
            // including mid-escape and mid-UTF-8-sequence).
            let mut chunked = LineFramer::with_max_line(max_line);
            let mut from_chunks = Vec::new();
            for piece in bytes.chunks(chunk) {
                chunked.push(piece);
                while let Some(line) = chunked.next_line_ref() {
                    from_chunks.push(line.to_owned_line());
                }
            }
            if let Some(line) = chunked.finish() {
                from_chunks.push(line);
            }

            assert_eq!(from_whole, from_chunks);
            for framed in &from_whole {
                if let FramedLine::Complete(line) = framed {
                    assert!(!line.is_empty());
                    // Raw byte length is capped by the framer; lossy
                    // decoding maps each raw byte to at most one char.
                    assert!(
                        line.chars().count() <= max_line,
                        "line exceeds cap: {line:?}"
                    );
                    // Every framed line parses the same way on both paths.
                    assert_parsers_agree(line);
                }
            }
        }

        // `next_line_ref` and `next_line` yield identical sequences.
        #[test]
        fn borrowed_and_owned_framing_agree(
            bytes in proptest::collection::vec(0u8..=255, 0..300),
            max_line in 4usize..80,
        ) {
            let mut owned = LineFramer::with_max_line(max_line);
            let mut borrowed = LineFramer::with_max_line(max_line);
            owned.push(&bytes);
            borrowed.push(&bytes);
            loop {
                let o = owned.next_line();
                let b = borrowed.next_line_ref().map(|l| l.to_owned_line());
                assert_eq!(o, b);
                if o.is_none() {
                    break;
                }
            }
            assert_eq!(owned.finish(), borrowed.finish());
            assert_eq!(owned.lines_framed(), borrowed.lines_framed());
            assert_eq!(owned.lines_oversized(), borrowed.lines_oversized());
        }
    }

    #[test]
    fn framed_ref_survives_truncated_final_record() {
        let mut framer = LineFramer::new();
        framer.push(SAMPLE.as_bytes()); // no terminator
        assert!(framer.next_line_ref().is_none());
        match framer.finish() {
            Some(FramedLine::Complete(line)) => assert_parsers_agree(&line),
            other => panic!("expected the partial line, got {other:?}"),
        }
    }

    #[test]
    fn framed_ref_handles_invalid_utf8_and_nuls() {
        let mut framer = LineFramer::new();
        framer.push(b"ok \xff\xfe\x00 bytes\nplain\n");
        match framer.next_line_ref() {
            Some(FramedLineRef::Complete(line)) => {
                assert!(line.contains('\u{FFFD}'));
                assert!(line.contains('\u{0}'));
            }
            other => panic!("expected lossy line, got {other:?}"),
        }
        assert_eq!(
            framer.next_line_ref(),
            Some(FramedLineRef::Complete("plain"))
        );
    }
}
