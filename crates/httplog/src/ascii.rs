//! Allocation-free ASCII case-insensitive string predicates.
//!
//! The allocating classifiers ([`UserAgent::family`](crate::UserAgent::family),
//! [`RequestPath::resource_class`](crate::RequestPath::resource_class))
//! lowercase the whole haystack with `to_ascii_lowercase()` and then run
//! case-sensitive matches against lowercase ASCII markers. These helpers
//! compute the identical answers by comparing byte windows with
//! [`eq_ignore_ascii_case`](slice::eq_ignore_ascii_case) instead:
//! `to_ascii_lowercase` maps only ASCII uppercase bytes (non-ASCII bytes
//! are untouched), so for a pure-lowercase-ASCII needle the two forms
//! agree on every input. The equality is pinned by property tests in
//! [`view`](crate::view).

/// `haystack.to_ascii_lowercase() == needle` for lowercase-ASCII needles.
pub(crate) fn eq_ignore_case(haystack: &str, needle: &str) -> bool {
    haystack.len() == needle.len() && haystack.as_bytes().eq_ignore_ascii_case(needle.as_bytes())
}

/// `haystack.to_ascii_lowercase().starts_with(needle)` for
/// lowercase-ASCII needles.
pub(crate) fn starts_with_ignore_case(haystack: &str, needle: &str) -> bool {
    haystack.len() >= needle.len()
        && haystack.as_bytes()[..needle.len()].eq_ignore_ascii_case(needle.as_bytes())
}

/// `haystack.to_ascii_lowercase().ends_with(needle)` for lowercase-ASCII
/// needles.
pub(crate) fn ends_with_ignore_case(haystack: &str, needle: &str) -> bool {
    haystack.len() >= needle.len()
        && haystack.as_bytes()[haystack.len() - needle.len()..]
            .eq_ignore_ascii_case(needle.as_bytes())
}

/// `haystack.to_ascii_lowercase().contains(needle)` for lowercase-ASCII
/// needles.
pub(crate) fn contains_ignore_case(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return true;
    }
    if haystack.len() < needle.len() {
        return false;
    }
    haystack
        .as_bytes()
        .windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_match_their_allocating_forms() {
        let cases = [
            "",
            "CURL/7.58.0",
            "Mozilla/5.0 (compatible; Googlebot/2.1)",
            "/Search?Q=x",
            "/OFFERS/42",
            "caf\u{e9}/UTF8\u{2603}",
            "/sitemap-OFFERS.XML",
        ];
        let needles = ["curl/", "googlebot", "/search", ".xml", "mozilla/", ""];
        for hay in cases {
            let lower = hay.to_ascii_lowercase();
            for needle in needles {
                assert_eq!(
                    contains_ignore_case(hay, needle),
                    lower.contains(needle),
                    "contains {hay:?} {needle:?}"
                );
                assert_eq!(
                    starts_with_ignore_case(hay, needle),
                    lower.starts_with(needle),
                    "starts {hay:?} {needle:?}"
                );
                assert_eq!(
                    ends_with_ignore_case(hay, needle),
                    lower.ends_with(needle),
                    "ends {hay:?} {needle:?}"
                );
                assert_eq!(
                    eq_ignore_case(hay, needle),
                    lower == needle,
                    "eq {hay:?} {needle:?}"
                );
            }
        }
    }
}
