//! Incremental line framing for byte streams.
//!
//! Live log sources — a file being appended to, a TCP connection carrying
//! log lines — deliver *bytes*, not lines: a read can end in the middle
//! of a line, a line can span many reads, and a hostile or broken sender
//! can ship a "line" that never ends. [`LineFramer`] turns that byte
//! stream back into the complete, bounded lines [`LogEntry`] parsing
//! expects:
//!
//! * **Chunk boundaries disappear.** Bytes are buffered until a `\n`
//!   arrives; feeding a log one byte at a time yields exactly the same
//!   lines as feeding it whole.
//! * **Lines are bounded.** A line longer than the configured cap is
//!   discarded as it streams in — the framer never buffers more than the
//!   cap — and surfaces as one [`FramedLine::Oversized`] event so callers
//!   can count it, instead of silently vanishing or exhausting memory.
//! * **Terminators and encoding are normalized.** A line ends at
//!   `\n` or `\r\n` — one trailing `\r` is stripped, like
//!   [`BufRead::lines`](std::io::BufRead::lines) — blank lines are
//!   skipped (matching
//!   [`LogReader`](crate::LogReader)), and invalid UTF-8 is replaced
//!   lossily so one mangled byte cannot wedge a feed.
//!
//! [`LogEntry`]: crate::LogEntry

/// Default maximum line length in bytes (64 KiB) — far above any real
/// Combined Log Format line, low enough that a newline-free sender
/// cannot grow the buffer without bound.
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// One framed unit from a [`LineFramer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramedLine {
    /// A complete line (terminator stripped, never empty).
    Complete(String),
    /// A line longer than the framer's cap was discarded; `dropped_bytes`
    /// is its length excluding the `\r?\n` terminator.
    Oversized {
        /// Bytes of line content discarded.
        dropped_bytes: usize,
    },
}

/// One framed unit borrowed from the framer's buffer — the zero-copy
/// form of [`FramedLine`], returned by
/// [`LineFramer::next_line_ref`]. The borrow is valid until the next
/// call on the framer; consumers copy-free parse it in place
/// (e.g. [`EntryBlock::push_line`](crate::EntryBlock::push_line)).
#[derive(Debug, PartialEq, Eq)]
pub enum FramedLineRef<'a> {
    /// A complete line (terminator stripped, never empty). Invalid UTF-8
    /// is replaced lossily, exactly like [`FramedLine::Complete`].
    Complete(&'a str),
    /// A line longer than the framer's cap was discarded; `dropped_bytes`
    /// is its length excluding the `\r?\n` terminator.
    Oversized {
        /// Bytes of line content discarded.
        dropped_bytes: usize,
    },
}

impl FramedLineRef<'_> {
    /// The owned form — what [`LineFramer::next_line`] would have
    /// returned for the same bytes.
    pub fn to_owned_line(&self) -> FramedLine {
        match self {
            FramedLineRef::Complete(s) => FramedLine::Complete((*s).to_owned()),
            FramedLineRef::Oversized { dropped_bytes } => FramedLine::Oversized {
                dropped_bytes: *dropped_bytes,
            },
        }
    }
}

/// Reassembles complete lines from arbitrarily chunked bytes.
///
/// Push bytes with [`push`](Self::push) as they arrive, then pop framed
/// lines with [`next_line`](Self::next_line) until it returns `None`; at
/// end-of-stream, [`finish`](Self::finish) flushes a trailing
/// unterminated line.
///
/// ```
/// use divscrape_httplog::{FramedLine, LineFramer};
///
/// let mut framer = LineFramer::new();
/// // A chunk boundary in the middle of a line is invisible:
/// framer.push(b"10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] \"GET / ");
/// assert!(framer.next_line().is_none());
/// framer.push(b"HTTP/1.1\" 200 12 \"-\" \"curl/7.58.0\"\r\nnext");
/// match framer.next_line() {
///     Some(FramedLine::Complete(line)) => assert!(line.ends_with("\"curl/7.58.0\"")),
///     other => panic!("expected a complete line, got {other:?}"),
/// }
/// // "next" has no terminator yet; finish() flushes it at end-of-stream.
/// assert!(framer.next_line().is_none());
/// assert_eq!(framer.finish(), Some(FramedLine::Complete("next".into())));
/// ```
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// First unconsumed byte: `buf[..start]` was already handed out as
    /// lines and is reclaimed (one memmove) on the next `push`.
    start: usize,
    /// Bytes in `start..scan` are known to contain no `\n`.
    scan: usize,
    max_line: usize,
    /// Discarding an over-long line until its terminator arrives.
    discarding: bool,
    /// Bytes discarded so far from the current over-long line.
    dropped: usize,
    lines: u64,
    oversized: u64,
    /// Scratch for the rare invalid-UTF-8 line: `next_line_ref` rewrites
    /// it lossily here instead of allocating, so the hot path (valid
    /// UTF-8) borrows straight from `buf`.
    lossy: String,
}

impl Default for LineFramer {
    fn default() -> Self {
        Self::new()
    }
}

impl LineFramer {
    /// A framer with the [default line cap](DEFAULT_MAX_LINE).
    pub fn new() -> Self {
        Self::with_max_line(DEFAULT_MAX_LINE)
    }

    /// A framer capping lines at `max_line` content bytes (terminator
    /// excluded). Values below 1 are treated as 1.
    pub fn with_max_line(max_line: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            scan: 0,
            max_line: max_line.max(1),
            discarding: false,
            dropped: 0,
            lines: 0,
            oversized: 0,
            lossy: String::new(),
        }
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact once per push: everything before `start` was already
        // consumed by `next_line`. One memmove of the (usually tiny)
        // unconsumed tail, instead of shifting the whole buffer per
        // extracted line.
        if self.start > 0 {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.scan -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next framed line, or `None` when no complete line is
    /// buffered yet. Blank lines are skipped; a buffered line exceeding
    /// the cap is discarded and reported as [`FramedLine::Oversized`].
    ///
    /// This is the owned convenience form of
    /// [`next_line_ref`](Self::next_line_ref) (one `String` per line);
    /// the two yield identical sequences on identical input.
    pub fn next_line(&mut self) -> Option<FramedLine> {
        Some(self.next_line_ref()?.to_owned_line())
    }

    /// Pops the next framed line **without copying**: the returned
    /// `&str` borrows the framer's internal buffer and stays valid until
    /// the next call. Semantics are exactly [`next_line`](Self::next_line)'s
    /// — blank lines skipped, over-long lines discarded and reported,
    /// invalid UTF-8 replaced lossily (the one case that writes to an
    /// internal scratch `String` instead of borrowing the buffer).
    pub fn next_line_ref(&mut self) -> Option<FramedLineRef<'_>> {
        loop {
            let Some(rel) = self.buf[self.scan..].iter().position(|&b| b == b'\n') else {
                self.scan = self.buf.len();
                // No terminator in sight: once the pending *content*
                // exceeds the cap, stop buffering and discard until the
                // terminator shows up. A trailing `\r` is retained and
                // not yet counted — it may turn out to be half of a
                // `\r\n` terminator, which is never content — so the
                // dropped-byte count is identical however the stream is
                // chunked (at most one byte is held back).
                let tail_cr = usize::from(self.buf.last() == Some(&b'\r'));
                let content = self.pending_bytes() - tail_cr;
                if self.discarding || content > self.max_line {
                    self.dropped += content;
                    self.reset_buffer();
                    if tail_cr == 1 {
                        self.buf.push(b'\r');
                        self.scan = 1;
                    }
                    self.discarding = true;
                }
                return None;
            };
            let newline = self.scan + rel;
            if self.discarding {
                let mut end = newline;
                if end > self.start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                let dropped_bytes = self.dropped + (end - self.start);
                self.consume_through(newline);
                self.discarding = false;
                self.dropped = 0;
                self.oversized += 1;
                return Some(FramedLineRef::Oversized { dropped_bytes });
            }
            let mut end = newline;
            if end > self.start && self.buf[end - 1] == b'\r' {
                end -= 1;
            }
            let start = self.start;
            let len = end - start;
            // Consume first: it only moves indices, the bytes in
            // `buf[start..end]` stay put until the next `push`.
            self.consume_through(newline);
            if len == 0 {
                continue; // Blank line: keep scanning.
            }
            if len > self.max_line {
                self.oversized += 1;
                return Some(FramedLineRef::Oversized { dropped_bytes: len });
            }
            self.lines += 1;
            return Some(FramedLineRef::Complete(Self::as_line_str(
                &self.buf[start..end],
                &mut self.lossy,
            )));
        }
    }

    /// Views framed bytes as a line: a direct borrow for valid UTF-8,
    /// a lossy rewrite into `lossy` otherwise.
    fn as_line_str<'a>(bytes: &'a [u8], lossy: &'a mut String) -> &'a str {
        match std::str::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                lossy.clear();
                lossy.extend(String::from_utf8_lossy(bytes).chars());
                lossy
            }
        }
    }

    /// Flushes a trailing line that ended without a terminator — call at
    /// end-of-stream (a closed connection, the end of a static file).
    /// Afterwards the framer is empty and reusable.
    pub fn finish(&mut self) -> Option<FramedLine> {
        let mut end = self.buf.len();
        if end > self.start && self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        if self.discarding {
            let dropped_bytes = self.dropped + (end - self.start);
            self.reset_buffer();
            self.discarding = false;
            self.dropped = 0;
            self.oversized += 1;
            return Some(FramedLine::Oversized { dropped_bytes });
        }
        let framed = self.frame(end);
        self.reset_buffer();
        framed
    }

    /// Drops any buffered partial line without emitting it. Used when the
    /// underlying stream is known to have discontinued mid-line (e.g. a
    /// tailed file was truncated): the buffered prefix no longer
    /// corresponds to anything.
    pub fn abandon_partial(&mut self) {
        self.reset_buffer();
        self.discarding = false;
        self.dropped = 0;
    }

    /// Bytes buffered waiting for a terminator.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the framer is mid-way through discarding an over-long
    /// line (bytes are being dropped until its terminator arrives).
    /// Checkpointing consumers must not record a resume offset in this
    /// state: the dropped bytes are not in the buffer, so any offset
    /// derived from [`pending_bytes`](Self::pending_bytes) would land
    /// inside the over-long line and a restarted reader would emit its
    /// remainder as a garbled ordinary line.
    pub fn mid_discard(&self) -> bool {
        self.discarding
    }

    /// Marks everything through `newline` (inclusive) as consumed; the
    /// bytes are reclaimed by the next `push`.
    fn consume_through(&mut self, newline: usize) {
        self.start = newline + 1;
        self.scan = self.start;
    }

    /// Empties the buffer entirely.
    fn reset_buffer(&mut self) {
        self.buf.clear();
        self.start = 0;
        self.scan = 0;
    }

    /// Complete lines framed so far (blank lines excluded).
    pub fn lines_framed(&self) -> u64 {
        self.lines
    }

    /// Over-long lines discarded so far.
    pub fn lines_oversized(&self) -> u64 {
        self.oversized
    }

    /// Frames `buf[start..end]` as a line, bumping the counters. `None`
    /// for a blank line.
    fn frame(&mut self, end: usize) -> Option<FramedLine> {
        let len = end - self.start;
        if len == 0 {
            return None;
        }
        if len > self.max_line {
            self.oversized += 1;
            return Some(FramedLine::Oversized { dropped_bytes: len });
        }
        self.lines += 1;
        Some(FramedLine::Complete(
            String::from_utf8_lossy(&self.buf[self.start..end]).into_owned(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(framed: Option<FramedLine>) -> String {
        match framed {
            Some(FramedLine::Complete(s)) => s,
            other => panic!("expected complete line, got {other:?}"),
        }
    }

    #[test]
    fn single_byte_feeding_matches_whole_feeding() {
        let data = b"alpha\nbeta\r\ngamma\n";
        let mut whole = LineFramer::new();
        whole.push(data);
        let mut by_byte = LineFramer::new();
        let mut from_bytes = Vec::new();
        for &b in data {
            by_byte.push(&[b]);
            while let Some(line) = by_byte.next_line() {
                from_bytes.push(line);
            }
        }
        let mut from_whole = Vec::new();
        while let Some(line) = whole.next_line() {
            from_whole.push(line);
        }
        assert_eq!(from_bytes, from_whole);
        assert_eq!(from_bytes.len(), 3);
        assert_eq!(complete(Some(from_bytes[1].clone())), "beta");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut f = LineFramer::new();
        f.push(b"\n\r\n  x\n\n");
        assert_eq!(complete(f.next_line()), "  x");
        assert!(f.next_line().is_none());
        assert_eq!(f.lines_framed(), 1);
    }

    #[test]
    fn oversized_line_is_discarded_not_buffered() {
        let mut f = LineFramer::with_max_line(8);
        // Stream 100 bytes without a newline: the buffer must stay capped.
        for _ in 0..10 {
            f.push(b"0123456789");
            assert!(f.next_line().is_none());
            assert!(f.pending_bytes() <= 10 + 8, "buffer grew past the cap");
        }
        f.push(b"\nshort\n");
        assert_eq!(
            f.next_line(),
            Some(FramedLine::Oversized { dropped_bytes: 100 })
        );
        assert_eq!(complete(f.next_line()), "short");
        assert_eq!(f.lines_oversized(), 1);
    }

    #[test]
    fn oversized_line_arriving_whole_is_still_flagged() {
        let mut f = LineFramer::with_max_line(4);
        f.push(b"longline\nok\n");
        assert_eq!(
            f.next_line(),
            Some(FramedLine::Oversized { dropped_bytes: 8 })
        );
        assert_eq!(complete(f.next_line()), "ok");
    }

    #[test]
    fn line_of_exactly_max_length_passes() {
        let mut f = LineFramer::with_max_line(4);
        f.push(b"abcd");
        assert!(f.next_line().is_none()); // terminator not seen yet
        f.push(b"\r\n");
        assert_eq!(complete(f.next_line()), "abcd");
    }

    #[test]
    fn finish_flushes_trailing_partial_and_resets() {
        let mut f = LineFramer::new();
        f.push(b"done\nhalf");
        assert_eq!(complete(f.next_line()), "done");
        assert!(f.next_line().is_none());
        assert_eq!(f.finish(), Some(FramedLine::Complete("half".into())));
        assert_eq!(f.finish(), None);
        assert_eq!(f.pending_bytes(), 0);
        f.push(b"again\n");
        assert_eq!(complete(f.next_line()), "again");
    }

    #[test]
    fn finish_reports_oversized_partial() {
        let mut f = LineFramer::with_max_line(4);
        f.push(b"0123456789");
        assert!(f.next_line().is_none());
        assert_eq!(
            f.finish(),
            Some(FramedLine::Oversized { dropped_bytes: 10 })
        );
    }

    #[test]
    fn abandon_partial_drops_buffered_prefix() {
        let mut f = LineFramer::new();
        f.push(b"orphaned prefix with no end");
        f.abandon_partial();
        f.push(b"fresh\n");
        assert_eq!(complete(f.next_line()), "fresh");
        assert_eq!(f.lines_framed(), 1);
    }

    #[test]
    fn oversized_crlf_dropped_count_is_chunking_invariant() {
        // The `\r` of a `\r\n` terminator is never dropped content,
        // however the bytes are chunked (found by the widened property
        // sweep: the incremental discard path used to count it, the
        // arrived-whole path did not).
        let data = b"0123456789\r\nok\n";
        let mut whole = LineFramer::with_max_line(4);
        whole.push(data);
        assert_eq!(
            whole.next_line(),
            Some(FramedLine::Oversized { dropped_bytes: 10 })
        );
        for chunk in 1..data.len() {
            let mut f = LineFramer::with_max_line(4);
            let mut got = Vec::new();
            for piece in data.chunks(chunk) {
                f.push(piece);
                while let Some(line) = f.next_line() {
                    got.push(line);
                }
            }
            assert_eq!(
                got,
                vec![
                    FramedLine::Oversized { dropped_bytes: 10 },
                    FramedLine::Complete("ok".into())
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn only_one_trailing_cr_is_terminator() {
        // `\r\r\n` ends at `\r\n`; the first `\r` is line content. A
        // multi-`\r` run at the cap boundary must classify the same way
        // (Complete vs Oversized) on every chunking, which an
        // all-trailing-`\r`s-stripped rule cannot guarantee.
        let mut f = LineFramer::with_max_line(4);
        f.push(b"ab\r\r\nxyzzy\r\r\n");
        assert_eq!(f.next_line(), Some(FramedLine::Complete("ab\r".into())));
        assert_eq!(
            f.next_line(),
            Some(FramedLine::Oversized { dropped_bytes: 6 })
        );
        for chunk in 1..13 {
            let mut f = LineFramer::with_max_line(4);
            let mut got = Vec::new();
            for piece in b"ab\r\r\nxyzzy\r\r\n".chunks(chunk) {
                f.push(piece);
                while let Some(line) = f.next_line() {
                    got.push(line);
                }
            }
            assert_eq!(
                got,
                vec![
                    FramedLine::Complete("ab\r".into()),
                    FramedLine::Oversized { dropped_bytes: 6 }
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn invalid_utf8_is_replaced_lossily() {
        let mut f = LineFramer::new();
        f.push(b"ok \xff\xfe bytes\n");
        let line = complete(f.next_line());
        assert!(line.starts_with("ok "));
        assert!(line.contains('\u{FFFD}'));
    }
}
