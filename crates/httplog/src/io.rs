//! Streaming log I/O.

use std::io::{self, BufRead, Write};

use crate::{LogEntry, ParseLogError};

/// Streaming reader over Combined Log Format lines.
///
/// Yields one item per non-empty line: `Ok(entry)` for well-formed lines,
/// `Err(..)` for malformed ones (callers decide whether to skip or abort —
/// production logs routinely contain the odd mangled line). I/O errors end
/// the stream after yielding the error.
///
/// A `&mut R` also implements [`BufRead`], so a reader can be borrowed
/// instead of consumed.
///
/// ```
/// use divscrape_httplog::LogReader;
/// use std::io::Cursor;
///
/// let data = "\
/// 10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 12 \"-\" \"curl/7.58.0\"\n\
/// garbage line\n\
/// 10.0.0.2 - - [11/Mar/2018:00:00:01 +0000] \"GET / HTTP/1.1\" 200 12 \"-\" \"curl/7.58.0\"\n";
/// let reader = LogReader::new(Cursor::new(data));
/// let results: Vec<_> = reader.collect();
/// assert_eq!(results.len(), 3);
/// assert!(results[0].is_ok());
/// assert!(results[1].is_err());
/// assert!(results[2].is_ok());
/// ```
#[derive(Debug)]
pub struct LogReader<R> {
    inner: R,
    line: String,
    line_no: u64,
    done: bool,
}

/// An error produced while streaming a log: either the line failed to parse
/// or the underlying reader failed.
#[derive(Debug)]
pub enum ReadLogError {
    /// The line at `line_no` (1-based) failed to parse.
    Parse {
        /// 1-based line number.
        line_no: u64,
        /// The parse failure.
        source: ParseLogError,
    },
    /// The underlying reader failed; the stream ends after this.
    Io(io::Error),
}

impl std::fmt::Display for ReadLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadLogError::Parse { line_no, source } => {
                write!(f, "line {line_no}: {source}")
            }
            ReadLogError::Io(e) => write!(f, "i/o error while reading log: {e}"),
        }
    }
}

impl std::error::Error for ReadLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadLogError::Parse { source, .. } => Some(source),
            ReadLogError::Io(e) => Some(e),
        }
    }
}

impl<R: BufRead> LogReader<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            line: String::new(),
            line_no: 0,
            done: false,
        }
    }

    /// Consumes the reader, returning the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads every remaining well-formed entry, skipping malformed lines.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered; parse errors are counted and
    /// returned alongside the entries.
    pub fn read_lenient(mut self) -> io::Result<(Vec<LogEntry>, u64)> {
        let mut entries = Vec::new();
        let mut skipped = 0;
        for item in &mut self {
            match item {
                Ok(e) => entries.push(e),
                Err(ReadLogError::Parse { .. }) => skipped += 1,
                Err(ReadLogError::Io(e)) => return Err(e),
            }
        }
        Ok((entries, skipped))
    }
}

impl<R: BufRead> Iterator for LogReader<R> {
    type Item = Result<LogEntry, ReadLogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.line.clear();
            match self.inner.read_line(&mut self.line) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {
                    self.line_no += 1;
                    let trimmed = self.line.trim_end_matches(['\r', '\n']);
                    if trimmed.is_empty() {
                        continue;
                    }
                    return Some(
                        LogEntry::parse(trimmed).map_err(|source| ReadLogError::Parse {
                            line_no: self.line_no,
                            source,
                        }),
                    );
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(ReadLogError::Io(e)));
                }
            }
        }
    }
}

/// Streaming writer emitting one Combined Log Format line per entry.
///
/// A `&mut W` also implements [`Write`], so a writer can be borrowed instead
/// of consumed.
///
/// ```
/// use divscrape_httplog::{LogEntry, LogWriter};
///
/// let line = "10.0.0.1 - - [11/Mar/2018:00:00:00 +0000] \"GET / HTTP/1.1\" 200 12 \"-\" \"curl/7.58.0\"";
/// let entry = LogEntry::parse(line)?;
/// let mut out = Vec::new();
/// let mut writer = LogWriter::new(&mut out);
/// writer.write_entry(&entry)?;
/// assert_eq!(String::from_utf8(out)?, format!("{line}\n"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LogWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> LogWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        Self { inner, written: 0 }
    }

    /// Writes one entry followed by `\n`.
    ///
    /// # Errors
    ///
    /// Propagates any underlying I/O error.
    pub fn write_entry(&mut self, entry: &LogEntry) -> io::Result<()> {
        writeln!(self.inner, "{entry}")?;
        self.written += 1;
        Ok(())
    }

    /// Writes every entry from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates the first underlying I/O error.
    pub fn write_all<'a, I>(&mut self, entries: I) -> io::Result<()>
    where
        I: IntoIterator<Item = &'a LogEntry>,
    {
        for e in entries {
            self.write_entry(e)?;
        }
        Ok(())
    }

    /// Number of entries written so far.
    pub fn entries_written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_lines(n: usize) -> String {
        (0..n)
            .map(|i| {
                format!(
                    "10.0.{}.{} - - [11/Mar/2018:00:00:{:02} +0000] \"GET /offers/{} HTTP/1.1\" 200 {} \"-\" \"curl/7.58.0\"\n",
                    i / 250,
                    i % 250 + 1,
                    i % 60,
                    i,
                    100 + i
                )
            })
            .collect()
    }

    #[test]
    fn reads_every_line() {
        let data = sample_lines(100);
        let reader = LogReader::new(Cursor::new(data));
        let entries: Vec<_> = reader.map(Result::unwrap).collect();
        assert_eq!(entries.len(), 100);
        assert_eq!(entries[42].request().path().path(), "/offers/42");
    }

    #[test]
    fn skips_blank_lines() {
        let data = format!("\n\n{}\n\n", sample_lines(2).trim_end());
        let reader = LogReader::new(Cursor::new(data));
        let entries: Vec<_> = reader.map(Result::unwrap).collect();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn reports_line_numbers_on_parse_errors() {
        let mut data = sample_lines(3);
        data.insert_str(0, "mangled\n");
        let reader = LogReader::new(Cursor::new(data));
        let results: Vec<_> = reader.collect();
        match &results[0] {
            Err(ReadLogError::Parse { line_no, .. }) => assert_eq!(*line_no, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(results[1..].iter().all(Result::is_ok));
    }

    #[test]
    fn lenient_reading_counts_skips() {
        let mut data = sample_lines(5);
        data.push_str("garbage one\n");
        data.push_str(&sample_lines(2));
        data.push_str("garbage two\n");
        let (entries, skipped) = LogReader::new(Cursor::new(data)).read_lenient().unwrap();
        assert_eq!(entries.len(), 7);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn write_read_round_trip() {
        let data = sample_lines(20);
        let entries: Vec<LogEntry> = LogReader::new(Cursor::new(&data))
            .map(Result::unwrap)
            .collect();

        let mut buf = Vec::new();
        let mut writer = LogWriter::new(&mut buf);
        writer.write_all(&entries).unwrap();
        assert_eq!(writer.entries_written(), 20);

        let reread: Vec<LogEntry> = LogReader::new(Cursor::new(buf))
            .map(Result::unwrap)
            .collect();
        assert_eq!(reread, entries);
    }

    #[test]
    fn io_error_ends_the_stream() {
        struct FailingReader {
            fed: bool,
        }
        impl std::io::Read for FailingReader {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
        }
        impl BufRead for FailingReader {
            fn fill_buf(&mut self) -> io::Result<&[u8]> {
                self.fed = true;
                Err(io::Error::other("disk on fire"))
            }
            fn consume(&mut self, _amt: usize) {}
        }
        let mut reader = LogReader::new(FailingReader { fed: false });
        assert!(matches!(reader.next(), Some(Err(ReadLogError::Io(_)))));
        assert!(reader.next().is_none());
    }
}
