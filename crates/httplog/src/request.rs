//! The quoted request line: method, target, protocol version.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{HttpMethod, RequestPath};

/// The HTTP protocol version recorded in the request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum HttpVersion {
    /// `HTTP/1.0` — legacy clients and a fair amount of scripted tooling.
    Http10,
    /// `HTTP/1.1` — the overwhelming majority of 2018-era traffic.
    Http11,
    /// `HTTP/2.0` — as logged by Apache for h2 connections.
    Http2,
}

impl HttpVersion {
    /// The token as it appears in the log (`HTTP/1.1` etc.).
    pub fn as_str(self) -> &'static str {
        match self {
            HttpVersion::Http10 => "HTTP/1.0",
            HttpVersion::Http11 => "HTTP/1.1",
            HttpVersion::Http2 => "HTTP/2.0",
        }
    }
}

impl fmt::Display for HttpVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for HttpVersion {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "HTTP/1.0" => Ok(HttpVersion::Http10),
            "HTTP/1.1" => Ok(HttpVersion::Http11),
            "HTTP/2.0" | "HTTP/2" => Ok(HttpVersion::Http2),
            _ => Err(()),
        }
    }
}

/// A request line: `GET /search?q=x HTTP/1.1`.
///
/// ```
/// use divscrape_httplog::{HttpMethod, RequestLine};
///
/// let line: RequestLine = "GET /search?q=x HTTP/1.1".parse().unwrap();
/// assert_eq!(line.method(), HttpMethod::Get);
/// assert_eq!(line.path().path(), "/search");
/// assert_eq!(line.to_string(), "GET /search?q=x HTTP/1.1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestLine {
    method: HttpMethod,
    path: RequestPath,
    version: HttpVersion,
}

impl RequestLine {
    /// Creates a request line from parts.
    pub fn new(method: HttpMethod, path: RequestPath, version: HttpVersion) -> Self {
        Self {
            method,
            path,
            version,
        }
    }

    /// The request method.
    pub fn method(&self) -> HttpMethod {
        self.method
    }

    /// The request target.
    pub fn path(&self) -> &RequestPath {
        &self.path
    }

    /// The protocol version.
    pub fn version(&self) -> HttpVersion {
        self.version
    }
}

impl fmt::Display for RequestLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.method, self.path, self.version)
    }
}

/// Error returned when a request line is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequestLineError {
    input: String,
}

impl fmt::Display for ParseRequestLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid request line `{}`", self.input)
    }
}

impl std::error::Error for ParseRequestLineError {}

impl FromStr for RequestLine {
    type Err = ParseRequestLineError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRequestLineError {
            input: s.to_owned(),
        };
        let mut parts = s.split(' ');
        let method: HttpMethod = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let target = parts.next().ok_or_else(err)?;
        if target.is_empty() {
            return Err(err());
        }
        let version: HttpVersion = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(RequestLine::new(
            method,
            RequestPath::parse(target),
            version,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_lines() {
        let line: RequestLine = "POST /booking/checkout HTTP/1.1".parse().unwrap();
        assert_eq!(line.method(), HttpMethod::Post);
        assert_eq!(line.version(), HttpVersion::Http11);
        assert_eq!(line.path().path(), "/booking/checkout");
    }

    #[test]
    fn parses_http2_alias() {
        assert_eq!("HTTP/2".parse::<HttpVersion>().unwrap(), HttpVersion::Http2);
        assert_eq!(
            "HTTP/2.0".parse::<HttpVersion>().unwrap(),
            HttpVersion::Http2
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "GET",
            "GET /x",
            "GET  HTTP/1.1",         // empty target collapses into parts
            "get /x HTTP/1.1",       // lowercase method
            "GET /x HTTP/3.0",       // unknown version
            "GET /x HTTP/1.1 extra", // trailing junk
        ] {
            assert!(bad.parse::<RequestLine>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn display_round_trip() {
        for raw in [
            "GET / HTTP/1.1",
            "HEAD /robots.txt HTTP/1.0",
            "POST /api/v1/fares?cached=0 HTTP/2.0",
        ] {
            let line: RequestLine = raw.parse().unwrap();
            assert_eq!(line.to_string(), raw);
        }
    }
}
