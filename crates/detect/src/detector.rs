//! The detector abstraction.
//!
//! Both tools in the paper — and every baseline here — consume the same
//! stream of access-log records and decide, per HTTP request, whether to
//! alert. That per-request decision is exactly what the paper counts in its
//! tables, so the trait is deliberately minimal: observe one entry, return a
//! [`Verdict`].

use divscrape_httplog::LogEntry;

/// A per-request decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Whether the tool alerts on this request.
    pub alert: bool,
    /// A monotone suspicion score (higher = more suspicious). The alert
    /// decision is `score >= threshold` for threshold-style detectors, which
    /// makes ROC sweeps possible; detectors without a natural score report
    /// `1.0`/`0.0`.
    pub score: f32,
}

impl Verdict {
    /// A non-alerting verdict with zero score.
    pub const CLEAR: Verdict = Verdict {
        alert: false,
        score: 0.0,
    };

    /// An alerting verdict with maximal confidence.
    pub const ALERT: Verdict = Verdict {
        alert: true,
        score: 1.0,
    };

    /// A verdict that alerts iff `alert`, with the given score.
    pub fn new(alert: bool, score: f32) -> Self {
        Self { alert, score }
    }
}

/// A streaming per-request scraping detector.
///
/// Detectors are stateful: they accumulate per-client and per-session
/// evidence as entries arrive **in timestamp order**. Feeding entries out of
/// order is not an error but degrades the detector exactly as it would a
/// real tool.
///
/// # Implementing
///
/// ```
/// use divscrape_detect::{Detector, Verdict};
/// use divscrape_httplog::LogEntry;
///
/// /// Alerts on every request whose user agent is empty.
/// #[derive(Debug, Clone, Default)]
/// struct NoAgentDetector;
///
/// impl Detector for NoAgentDetector {
///     fn name(&self) -> &str {
///         "no-agent"
///     }
///     fn observe(&mut self, entry: &LogEntry) -> Verdict {
///         Verdict::new(entry.user_agent().is_empty(), 0.0)
///     }
///     fn reset(&mut self) {}
/// }
/// ```
pub trait Detector {
    /// A short stable name used in reports (`"sentinel"`, `"arcane"`, ...).
    fn name(&self) -> &str;

    /// Consumes one log entry and returns the tool's verdict for it.
    fn observe(&mut self, entry: &LogEntry) -> Verdict;

    /// Clears all accumulated state, as if freshly constructed.
    fn reset(&mut self);
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        (**self).observe(entry)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Runs a detector over an entire log, returning one verdict per entry.
pub fn run<D: Detector + ?Sized>(detector: &mut D, entries: &[LogEntry]) -> Vec<Verdict> {
    entries.iter().map(|e| detector.observe(e)).collect()
}

/// Runs a detector and returns only the per-request alert flags.
pub fn run_alerts<D: Detector + ?Sized>(detector: &mut D, entries: &[LogEntry]) -> Vec<bool> {
    entries.iter().map(|e| detector.observe(e).alert).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_traffic::{generate, ScenarioConfig};

    #[derive(Debug, Clone, Default)]
    struct CountingDetector {
        seen: u64,
    }

    impl Detector for CountingDetector {
        fn name(&self) -> &str {
            "counting"
        }
        fn observe(&mut self, _entry: &LogEntry) -> Verdict {
            self.seen += 1;
            Verdict::new(self.seen % 2 == 0, self.seen as f32)
        }
        fn reset(&mut self) {
            self.seen = 0;
        }
    }

    #[test]
    fn run_visits_every_entry_in_order() {
        let log = generate(&ScenarioConfig::tiny(1)).unwrap();
        let mut det = CountingDetector::default();
        let verdicts = run(&mut det, log.entries());
        assert_eq!(verdicts.len(), log.len());
        assert_eq!(det.seen, log.len() as u64);
        assert!(!verdicts[0].alert);
        assert!(verdicts[1].alert);
        assert_eq!(verdicts.last().unwrap().score, log.len() as f32);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let log = generate(&ScenarioConfig::tiny(2)).unwrap();
        let mut det = CountingDetector::default();
        let first = run_alerts(&mut det, log.entries());
        det.reset();
        let second = run_alerts(&mut det, log.entries());
        assert_eq!(first, second);
    }

    #[test]
    fn boxed_detectors_delegate() {
        let log = generate(&ScenarioConfig::tiny(3)).unwrap();
        let mut boxed: Box<dyn Detector> = Box::new(CountingDetector::default());
        assert_eq!(boxed.name(), "counting");
        let verdicts = run(&mut boxed, log.entries());
        assert_eq!(verdicts.len(), log.len());
        boxed.reset();
    }

    #[test]
    fn verdict_constants_are_sane() {
        assert!(!Verdict::CLEAR.alert);
        assert!(Verdict::ALERT.alert);
        assert!(Verdict::ALERT.score > Verdict::CLEAR.score);
    }
}
