//! The detector abstraction.
//!
//! Both tools in the paper — and every baseline here — consume the same
//! stream of access-log records and decide, per HTTP request, whether to
//! alert. That per-request decision is exactly what the paper counts in its
//! tables, so the trait is deliberately minimal: observe one entry, return a
//! [`Verdict`].

use divscrape_httplog::{EntryRef, EntryView, LogEntry};

use crate::evict::{EvictionConfig, EvictionStats};

/// A per-request decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Whether the tool alerts on this request.
    pub alert: bool,
    /// A monotone suspicion score (higher = more suspicious). The alert
    /// decision is `score >= threshold` for threshold-style detectors, which
    /// makes ROC sweeps possible; detectors without a natural score report
    /// `1.0`/`0.0`.
    pub score: f32,
}

impl Verdict {
    /// A non-alerting verdict with zero score.
    pub const CLEAR: Verdict = Verdict {
        alert: false,
        score: 0.0,
    };

    /// An alerting verdict with maximal confidence.
    pub const ALERT: Verdict = Verdict {
        alert: true,
        score: 1.0,
    };

    /// A verdict that alerts iff `alert`, with the given score.
    pub fn new(alert: bool, score: f32) -> Self {
        Self { alert, score }
    }

    /// The verdict's confidence metadata: the suspicion score clamped to
    /// the unit interval (NaN maps to `0`).
    ///
    /// Raw [`score`](Self::score)s are tool-local — a rate limiter
    /// reports load factors that sail past `1`, threshold detectors
    /// report margins — so consumers that mix tools (alert sinks
    /// rendering per-member scores, adjudication-weight recalibration)
    /// read this normalized form instead.
    ///
    /// ```
    /// use divscrape_detect::Verdict;
    ///
    /// assert_eq!(Verdict::new(true, 2.5).confidence(), 1.0);
    /// assert_eq!(Verdict::new(false, 0.3).confidence(), 0.3);
    /// assert_eq!(Verdict::new(false, -1.0).confidence(), 0.0);
    /// ```
    pub fn confidence(self) -> f32 {
        if self.score.is_nan() {
            0.0
        } else {
            self.score.clamp(0.0, 1.0)
        }
    }
}

/// A streaming per-request scraping detector.
///
/// Detectors are stateful: they accumulate per-client and per-session
/// evidence as entries arrive **in timestamp order**. Feeding entries out of
/// order is not an error but degrades the detector exactly as it would a
/// real tool.
///
/// # Implementing
///
/// ```
/// use divscrape_detect::{Detector, Verdict};
/// use divscrape_httplog::LogEntry;
///
/// /// Alerts on every request whose user agent is empty.
/// #[derive(Debug, Clone, Default)]
/// struct NoAgentDetector;
///
/// impl Detector for NoAgentDetector {
///     fn name(&self) -> &str {
///         "no-agent"
///     }
///     fn observe(&mut self, entry: &LogEntry) -> Verdict {
///         Verdict::new(entry.user_agent().is_empty(), 0.0)
///     }
///     fn reset(&mut self) {}
/// }
/// ```
pub trait Detector {
    /// A short stable name used in reports (`"sentinel"`, `"arcane"`, ...).
    fn name(&self) -> &str;

    /// Consumes one log entry and returns the tool's verdict for it.
    fn observe(&mut self, entry: &LogEntry) -> Verdict;

    /// Consumes a batch of log entries, appending one verdict per entry to
    /// `out` in order.
    ///
    /// The default implementation loops over [`observe`](Self::observe);
    /// detectors with per-entry overheads worth amortizing (hashing, state
    /// table lookups) override it with a batched hot path. Overrides must
    /// stay **verdict-equivalent** to the default: feeding a log in any
    /// sequence of batches — including one entry at a time — must produce
    /// exactly the verdicts a sequential `observe` loop would. The
    /// equivalence tests in this crate hold every stock detector to that
    /// contract.
    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        for entry in entries {
            out.push(self.observe(entry));
        }
    }

    /// Consumes a batch of **borrowed** entries ([`EntryRef`]), appending
    /// one verdict per entry to `out` in order — the zero-copy twin of
    /// [`observe_batch`](Self::observe_batch), fed by the pipeline's
    /// arena-backed hot path.
    ///
    /// The default implementation materializes owned [`LogEntry`]s and
    /// delegates, so every detector is correct out of the box; the stock
    /// detectors override it with an allocation-free path generic over
    /// [`EntryView`]. Overrides carry the same contract as
    /// `observe_batch`: verdicts must be exactly what the owned path
    /// would produce for the same lines, in any batching.
    fn observe_batch_refs(&mut self, entries: &[EntryRef<'_>], out: &mut Vec<Verdict>) {
        let owned: Vec<LogEntry> = entries.iter().map(EntryRef::to_entry).collect();
        self.observe_batch(&owned, out);
    }

    /// Clears all accumulated state, as if freshly constructed.
    fn reset(&mut self);

    /// Installs a per-client state eviction policy (see
    /// [`EvictionConfig`]). Stateful stock detectors bound their client
    /// tables with it; the default implementation ignores the policy,
    /// which is correct for stateless detectors. Call before streaming
    /// begins — the policy applies from the next observed entry.
    fn set_eviction(&mut self, cfg: EvictionConfig) {
        let _ = cfg;
    }

    /// A snapshot of this detector's client-state footprint: occupancy
    /// of its largest per-client table and total evictions so far.
    /// Stateless detectors report the default (all zeros).
    fn eviction_stats(&self) -> EvictionStats {
        EvictionStats::default()
    }
}

impl<D: Detector + ?Sized> Detector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        (**self).observe(entry)
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        (**self).observe_batch(entries, out)
    }

    fn observe_batch_refs(&mut self, entries: &[EntryRef<'_>], out: &mut Vec<Verdict>) {
        (**self).observe_batch_refs(entries, out)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn set_eviction(&mut self, cfg: EvictionConfig) {
        (**self).set_eviction(cfg)
    }

    fn eviction_stats(&self) -> EvictionStats {
        (**self).eviction_stats()
    }
}

impl<D: Detector + ?Sized> Detector for &mut D {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        (**self).observe(entry)
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        (**self).observe_batch(entries, out)
    }

    fn observe_batch_refs(&mut self, entries: &[EntryRef<'_>], out: &mut Vec<Verdict>) {
        (**self).observe_batch_refs(entries, out)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn set_eviction(&mut self, cfg: EvictionConfig) {
        (**self).set_eviction(cfg)
    }

    fn eviction_stats(&self) -> EvictionStats {
        (**self).eviction_stats()
    }
}

/// Length of the longest prefix of `entries` coming from a single client
/// (same address and user-agent string).
///
/// The stock detectors' `observe_batch` implementations amortize per-client
/// work — key hashing, whitelist checks, signature and reputation lookups,
/// state-table probes — over such runs, which real access logs are full of
/// (bots burst, page views tow their asset fetches).
pub(crate) fn client_span<E: EntryView>(entries: &[E]) -> usize {
    let Some(first) = entries.first() else {
        return 0;
    };
    let addr = first.addr();
    let agent = first.ua_str();
    1 + entries[1..]
        .iter()
        .take_while(|e| e.addr() == addr && e.ua_str() == agent)
        .count()
}

/// Splits `entries` into maximal single-client runs (see [`client_span`]),
/// in order. The shared skeleton of every specialized `observe_batch`:
/// detectors iterate the runs and hoist their client-constant work out of
/// the per-entry loop.
pub(crate) fn client_runs<E: EntryView>(entries: &[E]) -> impl Iterator<Item = &[E]> {
    let mut rest = entries;
    std::iter::from_fn(move || {
        if rest.is_empty() {
            return None;
        }
        let (run, tail) = rest.split_at(client_span(rest));
        rest = tail;
        Some(run)
    })
}

/// Runs a detector over an entire log, returning one verdict per entry.
///
/// Routes through [`Detector::observe_batch`], so detectors with a
/// specialized batch path get it automatically.
pub fn run<D: Detector + ?Sized>(detector: &mut D, entries: &[LogEntry]) -> Vec<Verdict> {
    let mut out = Vec::with_capacity(entries.len());
    detector.observe_batch(entries, &mut out);
    out
}

/// Runs a detector and returns only the per-request alert flags.
pub fn run_alerts<D: Detector + ?Sized>(detector: &mut D, entries: &[LogEntry]) -> Vec<bool> {
    run(detector, entries)
        .into_iter()
        .map(|v| v.alert)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_traffic::{generate, ScenarioConfig};

    #[derive(Debug, Clone, Default)]
    struct CountingDetector {
        seen: u64,
    }

    impl Detector for CountingDetector {
        fn name(&self) -> &str {
            "counting"
        }
        fn observe(&mut self, _entry: &LogEntry) -> Verdict {
            self.seen += 1;
            Verdict::new(self.seen.is_multiple_of(2), self.seen as f32)
        }
        fn reset(&mut self) {
            self.seen = 0;
        }
    }

    #[test]
    fn run_visits_every_entry_in_order() {
        let log = generate(&ScenarioConfig::tiny(1)).unwrap();
        let mut det = CountingDetector::default();
        let verdicts = run(&mut det, log.entries());
        assert_eq!(verdicts.len(), log.len());
        assert_eq!(det.seen, log.len() as u64);
        assert!(!verdicts[0].alert);
        assert!(verdicts[1].alert);
        assert_eq!(verdicts.last().unwrap().score, log.len() as f32);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let log = generate(&ScenarioConfig::tiny(2)).unwrap();
        let mut det = CountingDetector::default();
        let first = run_alerts(&mut det, log.entries());
        det.reset();
        let second = run_alerts(&mut det, log.entries());
        assert_eq!(first, second);
    }

    #[test]
    fn boxed_detectors_delegate() {
        let log = generate(&ScenarioConfig::tiny(3)).unwrap();
        let mut boxed: Box<dyn Detector> = Box::new(CountingDetector::default());
        assert_eq!(boxed.name(), "counting");
        let verdicts = run(&mut boxed, log.entries());
        assert_eq!(verdicts.len(), log.len());
        boxed.reset();
    }

    #[test]
    fn mutable_references_are_detectors_too() {
        // Pipelines can borrow a member for a while without boxing it and
        // hand it back with its accumulated state intact.
        let log = generate(&ScenarioConfig::tiny(4)).unwrap();
        let mut det = CountingDetector::default();
        let (a, b) = log.entries().split_at(log.len() / 2);

        let mut borrowed: &mut CountingDetector = &mut det;
        // `run::<&mut CountingDetector>` — the detector is the reference.
        let first = run(&mut borrowed, a);
        assert_eq!(first.len(), a.len());

        // State accumulated through the borrow is visible on the owner.
        assert_eq!(det.seen, a.len() as u64);
        let second = run(&mut det, b);
        assert_eq!(second.last().unwrap().score, log.len() as f32);

        // And a &mut works through the batch path as well.
        let mut fresh = CountingDetector::default();
        let mut out = Vec::new();
        Detector::observe_batch(&mut (&mut fresh), log.entries(), &mut out);
        assert_eq!(out.len(), log.len());
        assert_eq!(fresh.seen, log.len() as u64);
    }

    #[test]
    fn default_observe_batch_loops_in_order() {
        let log = generate(&ScenarioConfig::tiny(5)).unwrap();
        let mut det = CountingDetector::default();
        let mut out = Vec::new();
        det.observe_batch(&log.entries()[..10], &mut out);
        det.observe_batch(&log.entries()[10..], &mut out);
        assert_eq!(out.len(), log.len());
        let mut again = CountingDetector::default();
        let reference: Vec<Verdict> = log.entries().iter().map(|e| again.observe(e)).collect();
        assert_eq!(out, reference);
    }

    #[test]
    fn client_span_groups_same_client_prefixes() {
        let log = generate(&ScenarioConfig::tiny(6)).unwrap();
        let entries = log.entries();
        let mut i = 0;
        let mut spans = 0usize;
        while i < entries.len() {
            let span = client_span(&entries[i..]);
            assert!(span >= 1);
            let key = entries[i].client_key();
            assert!(entries[i..i + span].iter().all(|e| e.client_key() == key));
            if i + span < entries.len() {
                assert_ne!(
                    entries[i + span].client_key(),
                    key,
                    "span ended early at {i}+{span}"
                );
            }
            i += span;
            spans += 1;
        }
        assert!(spans < entries.len(), "log should contain client bursts");
        assert_eq!(client_span::<LogEntry>(&[]), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn verdict_constants_are_sane() {
        assert!(!Verdict::CLEAR.alert);
        assert!(Verdict::ALERT.alert);
        assert!(Verdict::ALERT.score > Verdict::CLEAR.score);
    }
}
