//! The honeytrap detector.
//!
//! Trap-based robot detection is one of the classic techniques in the
//! paper's related-work space: plant a link no human can see (CSS-hidden)
//! and no compliant crawler will follow (robots.txt-disallowed). Anything
//! that fetches it is a link-enumerating machine, and every subsequent
//! request from that client can be flagged with near-zero false positives.
//!
//! As a third detector it is maximally *diverse* from both Sentinel and
//! Arcane: zero behavioural modelling, zero identity intelligence — just a
//! tripwire. Its weakness is coverage (a bot that never enumerates hidden
//! links is invisible) and latency (nothing is flagged until the tripwire
//! fires), which the committee analyses in `exp_three_tools` quantify.

use divscrape_httplog::LogEntry;

use crate::evict::{ClientStateTable, EvictionConfig, EvictionStats};
use crate::{Detector, Verdict};

/// The honeytrap detector: flags any client that ever fetches a trap
/// path (CSS-hidden, robots.txt-disallowed), from the tripwire onwards.
///
/// ```
/// use divscrape_detect::{Detector, TrapDetector};
/// use divscrape_traffic::SiteModel;
///
/// let site = SiteModel::default();
/// let mut trap = TrapDetector::for_site(&site);
/// assert_eq!(trap.name(), "honeytrap");
/// ```
#[derive(Debug, Clone)]
pub struct TrapDetector {
    trap_paths: Vec<String>,
    trapped: ClientStateTable<()>,
}

impl TrapDetector {
    /// A detector watching the given trap paths (path component only,
    /// query ignored).
    pub fn new(trap_paths: Vec<String>) -> Self {
        Self {
            trap_paths,
            trapped: ClientStateTable::new(EvictionConfig::DISABLED),
        }
    }

    /// A detector watching the standard trap page of a site model.
    pub fn for_site(site: &divscrape_traffic::SiteModel) -> Self {
        Self::new(vec![site.trap_path()])
    }

    /// Number of clients caught so far.
    pub fn trapped_clients(&self) -> usize {
        self.trapped.len()
    }

    fn is_trap(&self, entry: &LogEntry) -> bool {
        let path = entry.request().path().path();
        self.trap_paths.iter().any(|t| t == path)
    }
}

impl Default for TrapDetector {
    /// Watches the default site model's trap page.
    fn default() -> Self {
        Self::for_site(&divscrape_traffic::SiteModel::default())
    }
}

impl Detector for TrapDetector {
    fn name(&self) -> &str {
        "honeytrap"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        let key = entry.client_key();
        let ts = entry.timestamp().epoch_seconds();
        if self.is_trap(entry) {
            self.trapped.insert(key, ts, ());
        }
        if self.trapped.get_refresh(&key, ts).is_some() {
            Verdict::ALERT
        } else {
            Verdict::CLEAR
        }
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        let evicting = !self.trapped.config().is_disabled();
        for run in crate::detector::client_runs(entries) {
            let key = run[0].client_key();
            if evicting {
                // Per-entry probes under eviction: a mid-run idle gap can
                // release a trapped client exactly as the per-entry path
                // would (only key hashing is amortized over the run).
                for entry in run {
                    let ts = entry.timestamp().epoch_seconds();
                    if self.is_trap(entry) {
                        self.trapped.insert(key, ts, ());
                    }
                    out.push(if self.trapped.get_refresh(&key, ts).is_some() {
                        Verdict::ALERT
                    } else {
                        Verdict::CLEAR
                    });
                }
                continue;
            }
            // One key hash and one set probe per client run; within the
            // run only the tripwire itself can change the client's fate.
            let ts0 = run[0].timestamp().epoch_seconds();
            let mut caught = self.trapped.get_refresh(&key, ts0).is_some();
            for entry in run {
                if !caught && self.is_trap(entry) {
                    self.trapped
                        .insert(key, entry.timestamp().epoch_seconds(), ());
                    caught = true;
                }
                out.push(if caught {
                    Verdict::ALERT
                } else {
                    Verdict::CLEAR
                });
            }
        }
    }

    fn reset(&mut self) {
        self.trapped.clear();
    }

    fn set_eviction(&mut self, cfg: EvictionConfig) {
        self.trapped.set_config(cfg);
    }

    fn eviction_stats(&self) -> EvictionStats {
        self.trapped.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::run_alerts;
    use divscrape_traffic::{generate, ActorClass, ScenarioConfig};

    #[test]
    fn trap_flags_from_the_tripwire_onwards() {
        use divscrape_httplog::{ClfTimestamp, HttpStatus};
        use std::net::Ipv4Addr;
        let mk = |secs: i64, path: &str| {
            LogEntry::builder()
                .addr(Ipv4Addr::new(10, 0, 0, 9))
                .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
                .request(format!("GET {path} HTTP/1.1").parse().unwrap())
                .status(HttpStatus::OK)
                .user_agent("x")
                .build()
                .unwrap()
        };
        let mut trap = TrapDetector::new(vec!["/deals/unlisted-crossings".into()]);
        assert!(!trap.observe(&mk(0, "/offers/1")).alert);
        assert!(trap.observe(&mk(1, "/deals/unlisted-crossings")).alert);
        assert!(trap.observe(&mk(2, "/offers/2")).alert, "stays flagged");
        assert_eq!(trap.trapped_clients(), 1);
    }

    #[test]
    fn never_flags_humans_or_benign_bots() {
        let log = generate(&ScenarioConfig::small(81)).unwrap();
        let mut trap = TrapDetector::default();
        let alerts = run_alerts(&mut trap, log.entries());
        for ((_, truth), alert) in log.iter().zip(&alerts) {
            if !truth.is_malicious() {
                assert!(!alert, "{} request trapped", truth.actor());
            }
        }
    }

    #[test]
    fn catches_a_meaningful_share_of_the_botnet() {
        let log = generate(&ScenarioConfig::small(82)).unwrap();
        let mut trap = TrapDetector::default();
        let alerts = run_alerts(&mut trap, log.entries());
        let mut bot_alerted = 0u64;
        let mut bot_total = 0u64;
        for ((_, truth), alert) in log.iter().zip(&alerts) {
            if truth.actor() == ActorClass::PriceScraperBot {
                bot_total += 1;
                bot_alerted += u64::from(*alert);
            }
        }
        let rate = bot_alerted as f64 / bot_total as f64;
        // Nodes trip the wire once per ~250 requests, then stay flagged:
        // coverage is high but well below the purpose-built tools.
        assert!(rate > 0.3, "trap coverage {rate}");
        assert!(rate < 0.999, "trap should not be a perfect oracle");
    }

    #[test]
    fn reset_releases_trapped_clients() {
        let log = generate(&ScenarioConfig::tiny(83)).unwrap();
        let mut trap = TrapDetector::default();
        let _ = run_alerts(&mut trap, log.entries());
        trap.reset();
        assert_eq!(trap.trapped_clients(), 0);
    }

    #[test]
    fn query_strings_do_not_evade_the_trap() {
        use divscrape_httplog::{ClfTimestamp, HttpStatus};
        use std::net::Ipv4Addr;
        let e = LogEntry::builder()
            .addr(Ipv4Addr::new(10, 0, 0, 1))
            .timestamp(ClfTimestamp::PAPER_WINDOW_START)
            .request(
                "GET /deals/unlisted-crossings?utm=x HTTP/1.1"
                    .parse()
                    .unwrap(),
            )
            .status(HttpStatus::OK)
            .user_agent("x")
            .build()
            .unwrap();
        let mut trap = TrapDetector::new(vec!["/deals/unlisted-crossings".into()]);
        assert!(trap.observe(&e).alert);
    }
}
