//! Parallel detector execution.
//!
//! Every detector in this crate keeps all mutable state *per client*
//! (address + user agent), so a log can be partitioned by client and each
//! shard processed by an independent detector instance without changing any
//! verdict. This is how such tools scale horizontally in production, and it
//! gives the benchmark harness a faithful multi-core mode.
//!
//! Each worker sees its shard's entries in the original (timestamp) order;
//! verdicts are written back to the entries' original positions, so the
//! output is bit-identical to a sequential run. Within a shard, maximal
//! runs of consecutive entries are fed through
//! [`Detector::observe_batch`], so detectors with a specialized batch path
//! keep it under sharding.

use divscrape_httplog::{EntryRef, LogEntry};

use crate::session::Sessionizer;
use crate::{Detector, Verdict};

/// A detector whose state is fully client-local, making shard-parallel
/// execution verdict-equivalent to sequential execution. All stock
/// detectors in this crate qualify.
pub trait ShardableDetector: Detector + Clone + Send {}

impl<D: Detector + Clone + Send> ShardableDetector for D {}

/// Runs `prototype` over `entries` using up to `workers` parallel shards.
///
/// Returns exactly the verdicts a sequential [`run`](crate::run) of the same
/// detector would produce, as long as the detector keeps its state per
/// client (see [`ShardableDetector`]).
///
/// The worker count is clamped to `workers.min(entries.len()).max(1)`:
/// asking for more workers than entries spawns only as many as can receive
/// at least one entry, and a request on an empty log runs (trivially) on a
/// single worker. The clamp replaces an earlier silent fallback to
/// sequential execution for small logs — the requested parallelism is now
/// honored whenever the log can feed it.
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn run_sharded<D: ShardableDetector>(
    prototype: &D,
    entries: &[LogEntry],
    workers: usize,
) -> Vec<Verdict> {
    assert!(workers > 0, "need at least one worker");
    let workers = workers.min(entries.len()).max(1);
    if workers == 1 {
        let mut det = prototype.clone();
        det.reset();
        return crate::run(&mut det, entries);
    }

    // Partition entry indices by client shard.
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (i, e) in entries.iter().enumerate() {
        shards[Sessionizer::shard_of(&e.client_key(), workers)].push(i);
    }

    let mut verdicts = vec![Verdict::CLEAR; entries.len()];
    let chunks: Vec<Vec<(usize, Verdict)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let mut det = prototype.clone();
                scope.spawn(move || {
                    det.reset();
                    run_index_runs(&mut det, entries, shard)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    for chunk in chunks {
        for (i, v) in chunk {
            verdicts[i] = v;
        }
    }
    verdicts
}

/// Feeds one shard's (sorted) entry indices through the detector, batching
/// each maximal run of consecutive indices so the detector's
/// [`observe_batch`](Detector::observe_batch) fast path applies. Returns
/// `(original_index, verdict)` pairs.
///
/// This is the scatter/gather kernel shared by [`run_sharded`] and the
/// `divscrape-pipeline` persistent worker pool — any executor that
/// partitions a log by client and needs verdicts back in original
/// positions.
pub fn run_index_runs<D: Detector + ?Sized>(
    det: &mut D,
    entries: &[LogEntry],
    indices: &[usize],
) -> Vec<(usize, Verdict)> {
    let mut out = Vec::with_capacity(indices.len());
    let mut buf = Vec::new();
    let mut pos = 0;
    while pos < indices.len() {
        let start = indices[pos];
        let mut end = pos + 1;
        while end < indices.len() && indices[end] == indices[end - 1] + 1 {
            end += 1;
        }
        buf.clear();
        det.observe_batch(&entries[start..start + (end - pos)], &mut buf);
        out.extend(buf.drain(..).enumerate().map(|(k, v)| (start + k, v)));
        pos = end;
    }
    out
}

/// The borrowed twin of [`run_index_runs`]: feeds one shard's (sorted)
/// indices into `entries` — a chunk's [`EntryRef`] views — through the
/// detector via [`observe_batch_refs`](Detector::observe_batch_refs),
/// batching maximal runs of consecutive indices. Returns
/// `(original_index, verdict)` pairs. Used by the `divscrape-pipeline`
/// worker pool's zero-copy path.
pub fn run_index_runs_refs<D: Detector + ?Sized>(
    det: &mut D,
    entries: &[EntryRef<'_>],
    indices: &[usize],
) -> Vec<(usize, Verdict)> {
    let mut out = Vec::with_capacity(indices.len());
    let mut buf = Vec::new();
    let mut pos = 0;
    while pos < indices.len() {
        let start = indices[pos];
        let mut end = pos + 1;
        while end < indices.len() && indices[end] == indices[end - 1] + 1 {
            end += 1;
        }
        buf.clear();
        det.observe_batch_refs(&entries[start..start + (end - pos)], &mut buf);
        out.extend(buf.drain(..).enumerate().map(|(k, v)| (start + k, v)));
        pos = end;
    }
    out
}

/// Like [`run_sharded`] but returns only the alert flags.
pub fn run_sharded_alerts<D: ShardableDetector>(
    prototype: &D,
    entries: &[LogEntry],
    workers: usize,
) -> Vec<bool> {
    run_sharded(prototype, entries, workers)
        .into_iter()
        .map(|v| v.alert)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RateLimiter;
    use crate::{run, Arcane, Sentinel};
    use divscrape_traffic::{generate, ScenarioConfig};

    fn assert_parallel_equivalent<D: ShardableDetector>(proto: D, seed: u64) {
        let log = generate(&ScenarioConfig::small(seed)).unwrap();
        let mut sequential = proto.clone();
        sequential.reset();
        let expected = run(&mut sequential, log.entries());
        for workers in [2, 3, 7] {
            let got = run_sharded(&proto, log.entries(), workers);
            assert_eq!(got.len(), expected.len());
            let diff = got
                .iter()
                .zip(&expected)
                .filter(|(a, b)| a.alert != b.alert)
                .count();
            assert_eq!(diff, 0, "{workers} workers diverged on {diff} verdicts");
        }
    }

    #[test]
    fn sentinel_is_shard_equivalent() {
        assert_parallel_equivalent(Sentinel::stock(), 51);
    }

    #[test]
    fn arcane_is_shard_equivalent() {
        assert_parallel_equivalent(Arcane::stock(), 52);
    }

    #[test]
    fn rate_limiter_is_shard_equivalent() {
        assert_parallel_equivalent(RateLimiter::new(20), 53);
    }

    #[test]
    fn single_worker_falls_back_to_sequential() {
        let log = generate(&ScenarioConfig::tiny(5)).unwrap();
        let verdicts = run_sharded(&Sentinel::stock(), log.entries(), 1);
        assert_eq!(verdicts.len(), log.len());
    }

    #[test]
    fn worker_count_clamps_to_log_size() {
        let log = generate(&ScenarioConfig::tiny(8)).unwrap();
        // Tiny logs used to fall back to sequential silently; now the
        // request is honored with a clamped worker count and must still be
        // verdict-identical.
        let few = &log.entries()[..7];
        let mut sequential = Sentinel::stock();
        let expected = run(&mut sequential, few);
        for workers in [2, 7, 64] {
            let got = run_sharded(&Sentinel::stock(), few, workers);
            assert_eq!(got.len(), expected.len());
            let same = got.iter().zip(&expected).all(|(a, b)| a.alert == b.alert);
            assert!(same, "{workers} workers diverged on a 7-entry log");
        }
        // And an empty log is fine under any worker request.
        assert!(run_sharded(&Sentinel::stock(), &[], 16).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_workers_is_rejected() {
        let log = generate(&ScenarioConfig::tiny(5)).unwrap();
        let _ = run_sharded(&Sentinel::stock(), log.entries(), 0);
    }

    #[test]
    fn alert_helper_matches_full_run() {
        let log = generate(&ScenarioConfig::tiny(6)).unwrap();
        let full = run_sharded(&Arcane::stock(), log.entries(), 3);
        let alerts = run_sharded_alerts(&Arcane::stock(), log.entries(), 3);
        assert_eq!(alerts, full.iter().map(|v| v.alert).collect::<Vec<_>>());
    }
}
