//! Gaussian naive Bayes over session features.
//!
//! The probabilistic-reasoning approach of Stassopoulou & Dikaiakos [2],
//! reduced to its workhorse core: per-class Gaussian likelihoods over each
//! feature with a class prior, combined under the independence assumption.

use super::{SessionModel, TrainingSet, FEATURE_DIM};

/// A trained Gaussian naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    prior_log_odds: f64,
    mean: [[f64; FEATURE_DIM]; 2],
    var: [[f64; FEATURE_DIM]; 2],
}

/// Variance floor preventing degenerate spikes on near-constant features.
const VAR_FLOOR: f64 = 1e-4;

impl NaiveBayes {
    /// Fits the classifier.
    ///
    /// # Errors
    ///
    /// Returns an error if either class is absent from the training set —
    /// a one-class "classifier" would be a constant.
    pub fn train(data: &TrainingSet) -> Result<Self, String> {
        let n_pos = data.positives();
        let n_neg = data.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return Err(format!(
                "need both classes to train: {n_pos} positive, {n_neg} negative"
            ));
        }

        let mut mean = [[0.0; FEATURE_DIM]; 2];
        let mut var = [[0.0; FEATURE_DIM]; 2];
        let counts = [n_neg as f64, n_pos as f64];

        for (x, &y) in data.features().iter().zip(data.labels()) {
            let c = usize::from(y);
            for (j, v) in x.iter().enumerate() {
                mean[c][j] += v;
            }
        }
        for c in 0..2 {
            for m in &mut mean[c] {
                *m /= counts[c];
            }
        }
        for (x, &y) in data.features().iter().zip(data.labels()) {
            let c = usize::from(y);
            for (j, v) in x.iter().enumerate() {
                let d = v - mean[c][j];
                var[c][j] += d * d;
            }
        }
        for c in 0..2 {
            for v in &mut var[c] {
                *v = (*v / counts[c]).max(VAR_FLOOR);
            }
        }

        Ok(Self {
            prior_log_odds: (n_pos as f64 / n_neg as f64).ln(),
            mean,
            var,
        })
    }

    /// Log-odds of the positive (malicious) class for one feature vector.
    pub fn log_odds(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        let mut odds = self.prior_log_odds;
        for (j, xj) in x.iter().enumerate() {
            let ll = |c: usize| {
                let d = xj - self.mean[c][j];
                -0.5 * (self.var[c][j].ln() + d * d / self.var[c][j])
            };
            odds += ll(1) - ll(0);
        }
        odds
    }
}

impl SessionModel for NaiveBayes {
    fn model_name(&self) -> &'static str {
        "naive-bayes"
    }

    fn score(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        // Logistic squash of the log-odds.
        let odds = self.log_odds(x).clamp(-50.0, 50.0);
        1.0 / (1.0 + (-odds).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::SessionModelDetector;
    use crate::detector::run_alerts;
    use divscrape_traffic::{generate, ScenarioConfig};

    fn trained(seed: u64) -> NaiveBayes {
        let log = generate(&ScenarioConfig::small(seed)).unwrap();
        NaiveBayes::train(&TrainingSet::from_log(&log, 3)).unwrap()
    }

    #[test]
    fn training_requires_both_classes() {
        let log = generate(&ScenarioConfig::tiny(1)).unwrap();
        let set = TrainingSet::from_log(&log, 1);
        assert!(NaiveBayes::train(&set).is_ok());
        let one_class = TrainingSet::from_parts(set.features().to_vec(), vec![false; set.len()]);
        assert!(NaiveBayes::train(&one_class).is_err());
    }

    #[test]
    fn scores_are_probabilities() {
        let model = trained(21);
        let log = generate(&ScenarioConfig::tiny(22)).unwrap();
        let set = TrainingSet::from_log(&log, 1);
        for x in set.features() {
            let s = model.score(x);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn generalizes_to_an_unseen_seed() {
        let model = trained(21);
        let log = generate(&ScenarioConfig::small(99)).unwrap();
        let mut det = SessionModelDetector::new(model, 0.5, 3);
        let alerts = run_alerts(&mut det, log.entries());

        let mut tp = 0u64;
        let mut fp = 0u64;
        let mut pos = 0u64;
        let mut neg = 0u64;
        for ((_, truth), alert) in log.iter().zip(&alerts) {
            if truth.is_malicious() {
                pos += 1;
                tp += u64::from(*alert);
            } else {
                neg += 1;
                fp += u64::from(*alert);
            }
        }
        let tpr = tp as f64 / pos as f64;
        let fpr = fp as f64 / neg as f64;
        assert!(tpr > 0.7, "TPR {tpr}");
        assert!(fpr < 0.35, "FPR {fpr}");
        assert!(tpr > fpr * 2.0, "no real separation: TPR {tpr} FPR {fpr}");
    }

    #[test]
    fn log_odds_orders_obvious_cases() {
        let model = trained(21);
        // A bot-like snapshot: many requests, machine pacing, no assets,
        // no referrers, offer-heavy.
        let bot = [
            0.9, 0.002, 0.0, 0.0, 0.0, 0.0, 0.0, 0.4, 0.5, 0.0, 0.0, 0.0, 0.8, 0.0,
        ];
        // A human-like snapshot: few requests, slow, asset-rich, referrers.
        let human = [
            0.3, 0.05, 0.0, 0.0, 0.5, 0.2, 0.9, 0.9, 0.1, 0.0, 0.05, 0.0, 0.2, 0.0,
        ];
        assert!(
            model.log_odds(&bot) > model.log_odds(&human),
            "bot {} vs human {}",
            model.log_odds(&bot),
            model.log_odds(&human)
        );
    }
}
