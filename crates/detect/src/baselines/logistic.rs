//! Logistic regression trained by stochastic gradient descent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{SessionModel, TrainingSet, FEATURE_DIM};

/// A trained logistic-regression classifier over session features.
#[derive(Debug, Clone)]
pub struct Logistic {
    weights: [f64; FEATURE_DIM],
    bias: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticParams {
    /// Full passes over the data.
    pub epochs: u32,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        Self {
            epochs: 6,
            learning_rate: 0.15,
            l2: 1e-5,
            seed: 17,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z.clamp(-50.0, 50.0)).exp())
}

impl Logistic {
    /// Fits the classifier by SGD.
    ///
    /// # Errors
    ///
    /// Returns an error when the training set is empty or single-class.
    pub fn train(data: &TrainingSet, params: LogisticParams) -> Result<Self, String> {
        let n_pos = data.positives();
        if data.is_empty() || n_pos == 0 || n_pos == data.len() {
            return Err(format!(
                "need both classes to train: {n_pos} of {} positive",
                data.len()
            ));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut w = [0.0f64; FEATURE_DIM];
        let mut b = 0.0f64;
        let n = data.len();

        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..params.epochs {
            // Fisher–Yates shuffle per epoch.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let lr = params.learning_rate / (1.0 + epoch as f64 * 0.5);
            for &i in &order {
                let x = &data.features()[i];
                let y = f64::from(u8::from(data.labels()[i]));
                let z = b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>();
                let err = sigmoid(z) - y;
                for j in 0..FEATURE_DIM {
                    w[j] -= lr * (err * x[j] + params.l2 * w[j]);
                }
                b -= lr * err;
            }
        }
        Ok(Self {
            weights: w,
            bias: b,
        })
    }

    /// The learned weights (for interpretability reports).
    pub fn weights(&self) -> &[f64; FEATURE_DIM] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl SessionModel for Logistic {
    fn model_name(&self) -> &'static str {
        "logistic"
    }

    fn score(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(wi, xi)| wi * xi)
                .sum::<f64>();
        sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::SessionModelDetector;
    use crate::detector::run_alerts;
    use divscrape_traffic::{generate, ScenarioConfig};

    #[test]
    fn training_is_deterministic() {
        let log = generate(&ScenarioConfig::small(31)).unwrap();
        let set = TrainingSet::from_log(&log, 5);
        let a = Logistic::train(&set, LogisticParams::default()).unwrap();
        let b = Logistic::train(&set, LogisticParams::default()).unwrap();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn rejects_degenerate_training_sets() {
        let log = generate(&ScenarioConfig::tiny(1)).unwrap();
        let set = TrainingSet::from_log(&log, 1);
        let one_class = TrainingSet::from_parts(set.features().to_vec(), vec![true; set.len()]);
        assert!(Logistic::train(&one_class, LogisticParams::default()).is_err());
    }

    #[test]
    fn separates_held_out_traffic() {
        let train_log = generate(&ScenarioConfig::small(32)).unwrap();
        let set = TrainingSet::from_log(&train_log, 3);
        let model = Logistic::train(&set, LogisticParams::default()).unwrap();

        let test_log = generate(&ScenarioConfig::small(77)).unwrap();
        let mut det = SessionModelDetector::new(model, 0.5, 3);
        let alerts = run_alerts(&mut det, test_log.entries());
        let (mut tp, mut fp, mut pos, mut neg) = (0u64, 0u64, 0u64, 0u64);
        for ((_, truth), alert) in test_log.iter().zip(&alerts) {
            if truth.is_malicious() {
                pos += 1;
                tp += u64::from(*alert);
            } else {
                neg += 1;
                fp += u64::from(*alert);
            }
        }
        let tpr = tp as f64 / pos as f64;
        let fpr = fp as f64 / neg as f64;
        assert!(tpr > 0.75, "TPR {tpr}");
        assert!(fpr < 0.30, "FPR {fpr}");
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let log = generate(&ScenarioConfig::tiny(5)).unwrap();
        let set = TrainingSet::from_log(&log, 1);
        let model = Logistic::train(&set, LogisticParams::default()).unwrap();
        for x in set.features() {
            let s = model.score(x);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
