//! Related-work baseline detectors.
//!
//! The paper's related work evaluates web-robot detection via data-mining
//! over session features (Stevanovic et al. \[1\]) and probabilistic
//! reasoning (Stassopoulou & Dikaiakos \[2\]). These baselines reproduce that
//! family, hand-rolled because no mature Rust ML stack is available
//! offline:
//!
//! * [`RateLimiter`] — the naive operational baseline every shop starts
//!   with: a pure request-rate threshold.
//! * [`SignatureOnly`] — user-agent blocklisting alone.
//! * [`NaiveBayes`] — Gaussian naive Bayes over session features.
//! * [`Logistic`] — logistic regression trained by SGD.
//! * [`Cart`] — a CART decision tree (Gini impurity).
//!
//! The learned models consume the same [`SessionFeatures`] vector as
//! Arcane, train on a labelled log (the generator provides ground truth)
//! and classify **per request**, so their output is comparable to the two
//! main tools in every experiment.

mod cart;
mod logistic;
mod naive_bayes;
mod rate_limiter;
mod signature_only;

pub use cart::{Cart, CartParams};
pub use logistic::{Logistic, LogisticParams};
pub use naive_bayes::NaiveBayes;
pub use rate_limiter::RateLimiter;
pub use signature_only::SignatureOnly;

use divscrape_httplog::LogEntry;
use divscrape_traffic::LabelledLog;

use crate::session::{SessionFeatures, Sessionizer, SessionizerConfig};
use crate::{Detector, Verdict};

/// Dimensionality of the session feature vector.
pub const FEATURE_DIM: usize = 14;

/// A labelled per-request feature set extracted from a log.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    xs: Vec<[f64; FEATURE_DIM]>,
    ys: Vec<bool>,
}

impl TrainingSet {
    /// Extracts per-request feature vectors (with ground-truth labels) from
    /// a labelled log. `stride` keeps every `stride`-th request (1 = all) to
    /// bound training cost on large logs.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn from_log(log: &LabelledLog, stride: usize) -> Self {
        assert!(stride > 0, "stride must be at least 1");
        let mut sessions = Sessionizer::new(SessionizerConfig::default());
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, (entry, truth)) in log.iter().enumerate() {
            let features = sessions.observe(entry);
            if i % stride == 0 {
                xs.push(features.feature_vector());
                ys.push(truth.is_malicious());
            }
        }
        Self { xs, ys }
    }

    /// Builds a training set from pre-extracted examples (e.g. features
    /// computed over a tool's own labelled corpus).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length.
    pub fn from_parts(xs: Vec<[f64; FEATURE_DIM]>, ys: Vec<bool>) -> Self {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        Self { xs, ys }
    }

    /// The feature vectors.
    pub fn features(&self) -> &[[f64; FEATURE_DIM]] {
        &self.xs
    }

    /// The labels (true = malicious).
    pub fn labels(&self) -> &[bool] {
        &self.ys
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of positive (malicious) examples.
    pub fn positives(&self) -> usize {
        self.ys.iter().filter(|y| **y).count()
    }
}

/// A trained model that scores one session-feature snapshot.
pub trait SessionModel {
    /// Stable name for reports.
    fn model_name(&self) -> &'static str;

    /// Malice score in `[0, 1]`.
    fn score(&self, x: &[f64; FEATURE_DIM]) -> f64;
}

/// Wraps a [`SessionModel`] as a streaming per-request [`Detector`].
#[derive(Debug, Clone)]
pub struct SessionModelDetector<M> {
    model: M,
    sessions: Sessionizer,
    threshold: f64,
    min_requests: u32,
}

impl<M: SessionModel> SessionModelDetector<M> {
    /// Wraps `model`, alerting when its score reaches `threshold` and the
    /// session has at least `min_requests` requests of evidence.
    pub fn new(model: M, threshold: f64, min_requests: u32) -> Self {
        Self {
            model,
            sessions: Sessionizer::new(SessionizerConfig::default()),
            threshold,
            min_requests,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The alert threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl<M: SessionModel> Detector for SessionModelDetector<M> {
    fn name(&self) -> &str {
        self.model.model_name()
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        let features: &SessionFeatures = self.sessions.observe(entry);
        let enough = features.requests >= self.min_requests;
        let score = self.model.score(&features.feature_vector());
        Verdict::new(enough && score >= self.threshold, score as f32)
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        for run in crate::detector::client_runs(entries) {
            // One key hash per client run; the sessionizer and model still
            // see every entry.
            let key = run[0].client_key();
            for entry in run {
                let features = self.sessions.observe_with_key(key, entry);
                let enough = features.requests >= self.min_requests;
                let score = self.model.score(&features.feature_vector());
                out.push(Verdict::new(
                    enough && score >= self.threshold,
                    score as f32,
                ));
            }
        }
    }

    fn reset(&mut self) {
        self.sessions.reset();
    }

    fn set_eviction(&mut self, cfg: crate::EvictionConfig) {
        self.sessions.set_eviction(cfg);
    }

    fn eviction_stats(&self) -> crate::EvictionStats {
        self.sessions.eviction_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_traffic::{generate, ScenarioConfig};

    #[test]
    fn training_set_extraction_is_labelled_and_strided() {
        let log = generate(&ScenarioConfig::tiny(3)).unwrap();
        let full = TrainingSet::from_log(&log, 1);
        assert_eq!(full.len(), log.len());
        assert_eq!(full.positives() as u64, log.malicious_count());
        let strided = TrainingSet::from_log(&log, 4);
        assert_eq!(strided.len(), log.len().div_ceil(4));
        assert!(!strided.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_stride_is_rejected() {
        let log = generate(&ScenarioConfig::tiny(3)).unwrap();
        let _ = TrainingSet::from_log(&log, 0);
    }

    #[test]
    fn feature_vectors_are_finite() {
        let log = generate(&ScenarioConfig::tiny(9)).unwrap();
        let set = TrainingSet::from_log(&log, 1);
        for x in set.features() {
            assert!(x.iter().all(|v| v.is_finite()));
        }
    }
}
