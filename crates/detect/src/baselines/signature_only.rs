//! The signature-only baseline.

use divscrape_httplog::LogEntry;

use crate::sentinel::SignatureEngine;
use crate::{Detector, Verdict};

/// Alerts purely on user-agent signatures — no behaviour, no reputation.
///
/// Equivalent to running [`Sentinel`](crate::Sentinel) with every signal
/// but the signature engine ablated, packaged as its own baseline because
/// UA blocklisting is what most off-the-shelf web servers offer natively.
#[derive(Debug, Clone, Default)]
pub struct SignatureOnly {
    engine: SignatureEngine,
}

impl SignatureOnly {
    /// Uses the stock signature rules.
    pub fn stock() -> Self {
        Self {
            engine: SignatureEngine::stock(),
        }
    }

    /// Uses a custom engine.
    pub fn with_engine(engine: SignatureEngine) -> Self {
        Self { engine }
    }
}

impl Detector for SignatureOnly {
    fn name(&self) -> &str {
        "signature-only"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        if self.engine.matches(entry.user_agent()) {
            Verdict::ALERT
        } else {
            Verdict::CLEAR
        }
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        for run in crate::detector::client_runs(entries) {
            // The verdict is a pure function of the user agent, so one
            // signature scan covers the whole client run.
            let verdict = if self.engine.matches(run[0].user_agent()) {
                Verdict::ALERT
            } else {
                Verdict::CLEAR
            };
            out.extend(std::iter::repeat_n(verdict, run.len()));
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::run_alerts;
    use divscrape_traffic::{generate, ActorClass, ScenarioConfig};

    #[test]
    fn catches_toolkit_bots_and_misses_spoofed_browsers() {
        let log = generate(&ScenarioConfig::small(4)).unwrap();
        let mut det = SignatureOnly::stock();
        let alerts = run_alerts(&mut det, log.entries());

        let mut tool_caught = 0u32;
        let mut tool_total = 0u32;
        let mut stealth_caught = 0u32;
        let mut stealth_total = 0u32;
        for ((_, truth), alert) in log.iter().zip(&alerts) {
            match truth.actor() {
                ActorClass::PriceScraperBot => {
                    tool_total += 1;
                    tool_caught += u32::from(*alert);
                }
                ActorClass::StealthScraper => {
                    stealth_total += 1;
                    stealth_caught += u32::from(*alert);
                }
                _ => {}
            }
        }
        // The toolkit and spoofed campaigns are signature-visible; the
        // residential campaign and stealth scrapers are not.
        assert!(
            tool_caught as f64 / tool_total as f64 > 0.5,
            "caught {tool_caught}/{tool_total} botnet requests"
        );
        assert_eq!(stealth_caught, 0, "of {stealth_total} stealth requests");
    }

    #[test]
    fn never_alerts_on_humans() {
        let log = generate(&ScenarioConfig::small(4)).unwrap();
        let mut det = SignatureOnly::stock();
        let alerts = run_alerts(&mut det, log.entries());
        for ((_, truth), alert) in log.iter().zip(&alerts) {
            if truth.actor() == ActorClass::Human {
                assert!(!alert);
            }
        }
    }
}
