//! The naive rate-threshold baseline.

use std::collections::VecDeque;

use divscrape_httplog::LogEntry;

use crate::evict::{ClientStateTable, EvictionConfig, EvictionStats};
use crate::{Detector, Verdict};

/// Alerts whenever a client exceeds a fixed request rate.
///
/// This is the baseline every operations team deploys first — and the one
/// sophisticated scrapers calibrate against, which is why the stealth
/// population sails under it.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    threshold_per_min: u32,
    windows: ClientStateTable<VecDeque<i64>>,
}

impl RateLimiter {
    /// A limiter alerting at `threshold_per_min` requests per minute from
    /// one client.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_per_min == 0`.
    pub fn new(threshold_per_min: u32) -> Self {
        assert!(threshold_per_min > 0, "threshold must be positive");
        Self {
            threshold_per_min,
            windows: ClientStateTable::new(EvictionConfig::DISABLED),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold_per_min
    }
}

impl Default for RateLimiter {
    /// 60 requests/minute — a common production default.
    fn default() -> Self {
        Self::new(60)
    }
}

impl Detector for RateLimiter {
    fn name(&self) -> &str {
        "rate-limiter"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        let ts = entry.timestamp().epoch_seconds();
        let (window, _) = self
            .windows
            .upsert_with(entry.client_key(), ts, VecDeque::new);
        slide_and_score(window, ts, self.threshold_per_min)
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        let evicting = !self.windows.config().is_disabled();
        for run in crate::detector::client_runs(entries) {
            // One key hash per client run; with eviction off, one window
            // lookup per run is exact (the table is a plain map then).
            let key = run[0].client_key();
            if evicting {
                // Under eviction, touch the table per entry so mid-run
                // idle gaps expire state exactly as in the per-entry path.
                for entry in run {
                    let ts = entry.timestamp().epoch_seconds();
                    let (window, _) = self.windows.upsert_with(key, ts, VecDeque::new);
                    out.push(slide_and_score(window, ts, self.threshold_per_min));
                }
                continue;
            }
            let ts0 = run[0].timestamp().epoch_seconds();
            let (window, _) = self.windows.upsert_with(key, ts0, VecDeque::new);
            for entry in run {
                let ts = entry.timestamp().epoch_seconds();
                out.push(slide_and_score(window, ts, self.threshold_per_min));
            }
        }
    }

    fn reset(&mut self) {
        self.windows.clear();
    }

    fn set_eviction(&mut self, cfg: EvictionConfig) {
        self.windows.set_config(cfg);
    }

    fn eviction_stats(&self) -> EvictionStats {
        self.windows.stats()
    }
}

/// Slides `window` to `ts`, records the request and scores it against
/// `threshold` — the rate limiter's per-entry kernel, shared by both
/// observe paths.
fn slide_and_score(window: &mut VecDeque<i64>, ts: i64, threshold: u32) -> Verdict {
    while let Some(&front) = window.front() {
        if ts - front >= 60 {
            window.pop_front();
        } else {
            break;
        }
    }
    window.push_back(ts);
    let count = window.len() as u32;
    Verdict::new(count >= threshold, count as f32 / threshold as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_httplog::{ClfTimestamp, HttpStatus};
    use std::net::Ipv4Addr;

    fn entry(secs: i64) -> LogEntry {
        LogEntry::builder()
            .addr(Ipv4Addr::new(10, 0, 0, 1))
            .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
            .request("GET /x HTTP/1.1".parse().unwrap())
            .status(HttpStatus::OK)
            .user_agent("u")
            .build()
            .unwrap()
    }

    #[test]
    fn trips_exactly_at_the_threshold() {
        let mut rl = RateLimiter::new(10);
        for i in 0..9 {
            assert!(!rl.observe(&entry(i)).alert, "request {i}");
        }
        assert!(rl.observe(&entry(9)).alert);
    }

    #[test]
    fn window_slides() {
        let mut rl = RateLimiter::new(10);
        for i in 0..9 {
            rl.observe(&entry(i));
        }
        // 61 seconds later the window has drained; no alert.
        assert!(!rl.observe(&entry(70)).alert);
    }

    #[test]
    fn score_is_proportional_to_rate() {
        let mut rl = RateLimiter::new(10);
        let v = rl.observe(&entry(0));
        assert!((v.score - 0.1).abs() < 1e-6);
        for i in 1..5 {
            rl.observe(&entry(i));
        }
        let v = rl.observe(&entry(5));
        assert!((v.score - 0.6).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn zero_threshold_is_rejected() {
        let _ = RateLimiter::new(0);
    }
}
