//! A CART decision tree (Gini impurity), the data-mining baseline of
//! Stevanovic et al. [1].

use super::{SessionModel, TrainingSet, FEATURE_DIM};

/// Tree-growing hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CartParams {
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Minimum examples a node needs before it may split.
    pub min_split: usize,
    /// Candidate thresholds tried per feature (quantiles).
    pub candidates_per_feature: usize,
}

impl Default for CartParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_split: 24,
            candidates_per_feature: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        p_malicious: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone)]
pub struct Cart {
    root: Node,
    nodes: usize,
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl Cart {
    /// Grows the tree.
    ///
    /// # Errors
    ///
    /// Returns an error when the training set is empty.
    pub fn train(data: &TrainingSet, params: CartParams) -> Result<Self, String> {
        if data.is_empty() {
            return Err("cannot grow a tree from no examples".into());
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut nodes = 0usize;
        let root = Self::grow(data, &indices, params, 0, &mut nodes);
        Ok(Self { root, nodes })
    }

    fn grow(
        data: &TrainingSet,
        idx: &[usize],
        params: CartParams,
        depth: u32,
        nodes: &mut usize,
    ) -> Node {
        *nodes += 1;
        let pos = idx.iter().filter(|&&i| data.labels()[i]).count();
        let total = idx.len();
        let p = pos as f64 / total.max(1) as f64;

        if depth >= params.max_depth || total < params.min_split || pos == 0 || pos == total {
            return Node::Leaf { p_malicious: p };
        }

        let parent_gini = gini(pos, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

        for feature in 0..FEATURE_DIM {
            let mut values: Vec<f64> = idx.iter().map(|&i| data.features()[i][feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("features are finite"));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let step = (values.len() / params.candidates_per_feature).max(1);
            for w in values.windows(2).step_by(step) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (mut lp, mut lt) = (0usize, 0usize);
                for &i in idx {
                    if data.features()[i][feature] <= threshold {
                        lt += 1;
                        lp += usize::from(data.labels()[i]);
                    }
                }
                let (rt, rp) = (total - lt, pos - lp);
                if lt == 0 || rt == 0 {
                    continue;
                }
                let weighted = (lt as f64 * gini(lp, lt) + rt as f64 * gini(rp, rt)) / total as f64;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }

        match best {
            Some((feature, threshold, gain)) if gain > 1e-6 => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| data.features()[i][feature] <= threshold);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::grow(data, &left_idx, params, depth + 1, nodes)),
                    right: Box::new(Self::grow(data, &right_idx, params, depth + 1, nodes)),
                }
            }
            _ => Node::Leaf { p_malicious: p },
        }
    }

    /// Number of nodes in the grown tree.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The leaf probability for one feature vector.
    pub fn predict(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { p_malicious } => return *p_malicious,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl SessionModel for Cart {
    fn model_name(&self) -> &'static str {
        "cart"
    }

    fn score(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        self.predict(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::SessionModelDetector;
    use crate::detector::run_alerts;
    use divscrape_traffic::{generate, ScenarioConfig};

    #[test]
    fn grows_a_nontrivial_tree() {
        let log = generate(&ScenarioConfig::small(41)).unwrap();
        let set = TrainingSet::from_log(&log, 5);
        let tree = Cart::train(&set, CartParams::default()).unwrap();
        assert!(
            tree.node_count() > 3,
            "tree has {} nodes",
            tree.node_count()
        );
    }

    #[test]
    fn rejects_empty_training() {
        let empty = TrainingSet::from_parts(Vec::new(), Vec::new());
        assert!(Cart::train(&empty, CartParams::default()).is_err());
    }

    #[test]
    fn pure_sets_yield_single_leaves() {
        let xs = vec![[0.5; FEATURE_DIM]; 50];
        let set = TrainingSet::from_parts(xs, vec![true; 50]);
        let tree = Cart::train(&set, CartParams::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[0.5; FEATURE_DIM]), 1.0);
    }

    #[test]
    fn learns_a_planted_threshold() {
        // Plant a rule: feature 2 (error_ratio) > 0.3 ⇒ malicious.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let mut x = [0.1; FEATURE_DIM];
            let v = (i % 100) as f64 / 100.0;
            x[2] = v;
            xs.push(x);
            ys.push(v > 0.3);
        }
        let set = TrainingSet::from_parts(xs, ys);
        let tree = Cart::train(&set, CartParams::default()).unwrap();
        let mut low = [0.1; FEATURE_DIM];
        low[2] = 0.05;
        let mut high = [0.1; FEATURE_DIM];
        high[2] = 0.9;
        assert!(tree.predict(&low) < 0.2, "low {}", tree.predict(&low));
        assert!(tree.predict(&high) > 0.8, "high {}", tree.predict(&high));
    }

    #[test]
    fn separates_held_out_traffic() {
        let train_log = generate(&ScenarioConfig::small(42)).unwrap();
        let set = TrainingSet::from_log(&train_log, 3);
        let tree = Cart::train(&set, CartParams::default()).unwrap();

        let test_log = generate(&ScenarioConfig::small(88)).unwrap();
        let mut det = SessionModelDetector::new(tree, 0.5, 3);
        let alerts = run_alerts(&mut det, test_log.entries());
        let (mut tp, mut fp, mut pos, mut neg) = (0u64, 0u64, 0u64, 0u64);
        for ((_, truth), alert) in test_log.iter().zip(&alerts) {
            if truth.is_malicious() {
                pos += 1;
                tp += u64::from(*alert);
            } else {
                neg += 1;
                fp += u64::from(*alert);
            }
        }
        let tpr = tp as f64 / pos as f64;
        let fpr = fp as f64 / neg as f64;
        assert!(tpr > 0.75, "TPR {tpr}");
        assert!(fpr < 0.30, "FPR {fpr}");
    }
}
