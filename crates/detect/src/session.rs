//! Streaming sessionization and per-session features.
//!
//! Both the in-house-style detector and the data-mining baselines from the
//! related work ([1] Stevanovic et al., [2] Stassopoulou & Dikaiakos) work
//! on *sessions*: all requests from one client (address + user-agent) with
//! no idle gap longer than a timeout. The feature set here follows the
//! web-robot-detection literature: request mix by resource class, error and
//! beacon ratios, pacing statistics, breadth and repetition measures.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use divscrape_httplog::{fnv1a, ip::addr_hash, EntryView, HttpMethod, ResourceClass};

use crate::evict::{ClientStateTable, EvictionConfig, EvictionStats};

/// Sessionizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionizerConfig {
    /// Idle gap that ends a session, seconds. The conventional value in the
    /// crawler-detection literature is 30 minutes.
    pub idle_timeout_secs: i64,
}

impl Default for SessionizerConfig {
    fn default() -> Self {
        Self {
            idle_timeout_secs: 1_800,
        }
    }
}

/// Number of entries the burst window retains (60 seconds of timestamps).
const BURST_WINDOW_SECS: i64 = 60;

/// Incrementally maintained features of one client session.
#[derive(Debug, Clone, Default)]
pub struct SessionFeatures {
    /// Total requests.
    pub requests: u32,
    /// Page-class requests.
    pub pages: u32,
    /// Asset-class requests.
    pub assets: u32,
    /// Script assets (`.js`) — the proxy for JavaScript execution.
    pub js_assets: u32,
    /// API-class requests.
    pub apis: u32,
    /// Probe-class requests (vulnerability paths).
    pub probes: u32,
    /// `4xx`/`5xx` responses.
    pub errors: u32,
    /// `400` responses specifically (malformed requests).
    pub bad_requests: u32,
    /// `204` responses (beacon polling).
    pub no_content: u32,
    /// `304` responses (conditional revalidation).
    pub not_modified: u32,
    /// `robots.txt` fetches.
    pub robots_fetches: u32,
    /// `HEAD` requests.
    pub heads: u32,
    /// `POST` requests.
    pub posts: u32,
    /// Requests with a method outside GET/HEAD/POST.
    pub nonbrowsing_methods: u32,
    /// Requests carrying a referrer.
    pub with_referrer: u32,
    /// Requests to offer pages (`/offers/..`) — the scraped commodity.
    pub offer_hits: u32,
    /// Requests to search pages.
    pub search_hits: u32,
    /// Distinct request paths (by 64-bit hash).
    distinct: std::collections::HashSet<u64>,
    /// Epoch second of the first/last request in the session.
    pub first_ts: i64,
    /// Epoch second of the most recent request.
    pub last_ts: i64,
    /// Timestamps (epoch seconds) of requests in the trailing 60 s window.
    burst_window: VecDeque<i64>,
    /// Largest number of requests ever seen in one 60 s window.
    pub max_burst: u32,
}

impl SessionFeatures {
    fn start<E: EntryView>(entry: &E) -> Self {
        let mut f = SessionFeatures {
            first_ts: entry.epoch_seconds(),
            last_ts: entry.epoch_seconds(),
            ..SessionFeatures::default()
        };
        f.update(entry);
        f
    }

    fn update<E: EntryView>(&mut self, entry: &E) {
        let ts = entry.epoch_seconds();
        self.requests += 1;
        self.last_ts = ts;

        let path = entry.path();
        match entry.resource_class() {
            ResourceClass::Page => self.pages += 1,
            ResourceClass::Asset => {
                self.assets += 1;
                if path.ends_with(".js") {
                    self.js_assets += 1;
                }
            }
            ResourceClass::Api => self.apis += 1,
            ResourceClass::Probe => self.probes += 1,
            ResourceClass::RobotsTxt => self.robots_fetches += 1,
            _ => {}
        }
        if path.starts_with("/offers/") {
            self.offer_hits += 1;
        }
        if path.starts_with("/search") {
            self.search_hits += 1;
        }

        let status = entry.status();
        if status.is_error() {
            self.errors += 1;
        }
        match status.as_u16() {
            400 => self.bad_requests += 1,
            204 => self.no_content += 1,
            304 => self.not_modified += 1,
            _ => {}
        }

        match entry.method() {
            HttpMethod::Head => self.heads += 1,
            HttpMethod::Post => self.posts += 1,
            HttpMethod::Get => {}
            _ => self.nonbrowsing_methods += 1,
        }
        if entry.has_referrer() {
            self.with_referrer += 1;
        }

        self.distinct.insert(fnv1a(entry.target().as_bytes()));

        while let Some(&front) = self.burst_window.front() {
            if ts - front >= BURST_WINDOW_SECS {
                self.burst_window.pop_front();
            } else {
                break;
            }
        }
        self.burst_window.push_back(ts);
        self.max_burst = self.max_burst.max(self.burst_window.len() as u32);
    }

    /// Session duration in seconds (0 for a single request).
    pub fn duration_secs(&self) -> i64 {
        self.last_ts - self.first_ts
    }

    /// Mean seconds between consecutive requests.
    pub fn mean_gap_secs(&self) -> f64 {
        if self.requests <= 1 {
            f64::INFINITY
        } else {
            self.duration_secs() as f64 / f64::from(self.requests - 1)
        }
    }

    /// Share of requests that returned `4xx`/`5xx`.
    pub fn error_ratio(&self) -> f64 {
        f64::from(self.errors) / f64::from(self.requests.max(1))
    }

    /// Share of requests that returned `204`.
    pub fn no_content_ratio(&self) -> f64 {
        f64::from(self.no_content) / f64::from(self.requests.max(1))
    }

    /// Assets fetched per page viewed (∞ pages with no assets → 0).
    pub fn assets_per_page(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            f64::from(self.assets) / f64::from(self.pages)
        }
    }

    /// Share of requests carrying a referrer.
    pub fn referrer_ratio(&self) -> f64 {
        f64::from(self.with_referrer) / f64::from(self.requests.max(1))
    }

    /// Number of distinct paths requested.
    pub fn distinct_paths(&self) -> u32 {
        self.distinct.len() as u32
    }

    /// Distinct paths / total requests.
    pub fn distinct_ratio(&self) -> f64 {
        f64::from(self.distinct_paths()) / f64::from(self.requests.max(1))
    }

    /// Requests in the trailing 60-second window ending at the last request.
    pub fn current_burst(&self) -> u32 {
        self.burst_window.len() as u32
    }

    /// Names of the numeric features exported by
    /// [`feature_vector`](Self::feature_vector), in order.
    pub const FEATURE_NAMES: [&'static str; 14] = [
        "log_requests",
        "mean_gap_secs",
        "error_ratio",
        "no_content_ratio",
        "assets_per_page",
        "js_asset_share",
        "referrer_ratio",
        "distinct_ratio",
        "max_burst",
        "head_share",
        "post_share",
        "probe_share",
        "offer_share",
        "robots_fetched",
    ];

    /// A fixed-width numeric snapshot for the ML baselines, following the
    /// feature families evaluated by Stevanovic et al. All components are
    /// finite and roughly unit-scaled.
    pub fn feature_vector(&self) -> [f64; 14] {
        let n = f64::from(self.requests.max(1));
        [
            f64::from(self.requests).ln_1p() / 8.0,
            self.mean_gap_secs().min(600.0) / 600.0,
            self.error_ratio(),
            self.no_content_ratio(),
            (self.assets_per_page() / 8.0).min(1.0),
            f64::from(self.js_assets) / n,
            self.referrer_ratio(),
            self.distinct_ratio(),
            f64::from(self.max_burst).min(120.0) / 120.0,
            f64::from(self.heads) / n,
            f64::from(self.posts) / n,
            f64::from(self.probes) / n,
            f64::from(self.offer_hits) / n,
            f64::from(self.robots_fetches.min(1)),
        ]
    }
}

/// Key identifying a client: address + user-agent fingerprint.
pub type ClientKey = (Ipv4Addr, u64);

/// Streaming sessionizer: groups entries into per-client sessions and keeps
/// the current session's features for each client.
///
/// ```
/// use divscrape_detect::{Sessionizer, SessionizerConfig};
/// use divscrape_traffic::{generate, ScenarioConfig};
///
/// let log = generate(&ScenarioConfig::tiny(1))?;
/// let mut sess = Sessionizer::new(SessionizerConfig::default());
/// for entry in log.entries() {
///     let features = sess.observe(entry);
///     assert!(features.requests >= 1);
/// }
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sessionizer {
    cfg: SessionizerConfig,
    sessions: ClientStateTable<SessionFeatures>,
    completed: u64,
}

impl Sessionizer {
    /// Creates a sessionizer.
    pub fn new(cfg: SessionizerConfig) -> Self {
        Self {
            cfg,
            sessions: ClientStateTable::new(EvictionConfig::DISABLED),
            completed: 0,
        }
    }

    /// Bounds the session table with the given eviction policy (see
    /// [`ClientStateTable`]). With a TTL at least as long as the idle
    /// timeout, eviction never changes the features any session reports:
    /// an evicted client would have restarted its session on return
    /// anyway. A capacity bound can evict a *live* session, whose client
    /// then restarts fresh on its next request.
    pub fn set_eviction(&mut self, cfg: EvictionConfig) {
        self.sessions.set_config(cfg);
    }

    /// Occupancy and eviction counters of the session table.
    pub fn eviction_stats(&self) -> EvictionStats {
        self.sessions.stats()
    }

    /// Feeds one entry; returns the features of the session it belongs to
    /// (after incorporating the entry).
    pub fn observe<E: EntryView>(&mut self, entry: &E) -> &SessionFeatures {
        let key = entry.client_key();
        self.observe_with_key(key, entry)
    }

    /// Like [`observe`](Self::observe) with the client key supplied by the
    /// caller, so batch paths that process a run of same-client entries can
    /// compute the key (an FNV hash of the full user-agent string) once per
    /// run instead of once per entry.
    ///
    /// `key` must equal `entry.client_key()`; feeding a mismatched key
    /// files the entry under the wrong client.
    pub fn observe_with_key<E: EntryView>(
        &mut self,
        key: ClientKey,
        entry: &E,
    ) -> &SessionFeatures {
        let ts = entry.epoch_seconds();
        let timeout = self.cfg.idle_timeout_secs;
        let completed = &mut self.completed;
        let (features, existed) = self
            .sessions
            .upsert_with(key, ts, || SessionFeatures::start(entry));
        if existed {
            if ts - features.last_ts > timeout {
                *completed += 1;
                *features = SessionFeatures::start(entry);
            } else {
                features.update(entry);
            }
        }
        features
    }

    /// Features of a client's current session, if any (a non-touching
    /// read: does not refresh eviction recency).
    pub fn current(&self, key: &ClientKey) -> Option<&SessionFeatures> {
        self.sessions.get(key)
    }

    /// Number of clients with live session state. Bounded by the
    /// capacity of the policy installed via
    /// [`set_eviction`](Self::set_eviction), if any.
    pub fn active_clients(&self) -> usize {
        self.sessions.len()
    }

    /// Number of sessions ended so far: closed by the idle timeout on the
    /// client's return, or reaped by TTL eviction (both mean the client
    /// went idle past a deadline). Live sessions are not counted, nor are
    /// sessions truncated by a *capacity* eviction — those were cut short
    /// for memory, not ended by idleness.
    ///
    /// Without eviction this counter is lazy: a session that times out is
    /// only counted when its client returns. TTL eviction counts the reap
    /// instead, so with a TTL equal to the idle timeout the total can
    /// exceed the eviction-off count by the clients that went idle and
    /// never came back.
    pub fn completed_sessions(&self) -> u64 {
        self.completed + self.sessions.evicted_ttl()
    }

    /// Drops all state (the eviction policy is kept).
    pub fn reset(&mut self) {
        self.sessions.clear();
        self.completed = 0;
    }

    /// Deterministic shard assignment for a client under `shards` workers.
    pub fn shard_of(key: &ClientKey, shards: usize) -> usize {
        (addr_hash(key.0, key.1) % shards as u64) as usize
    }
}

impl Default for Sessionizer {
    fn default() -> Self {
        Self::new(SessionizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_httplog::{ClfTimestamp, HttpStatus, LogEntry};
    use std::net::Ipv4Addr;

    fn entry(addr: [u8; 4], secs: i64, path: &str, status: u16, ua: &str) -> LogEntry {
        LogEntry::builder()
            .addr(Ipv4Addr::new(addr[0], addr[1], addr[2], addr[3]))
            .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
            .request(format!("GET {path} HTTP/1.1").parse().unwrap())
            .status(HttpStatus::new(status).unwrap())
            .bytes(Some(100))
            .user_agent(ua)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_accumulate_within_a_session() {
        let mut s = Sessionizer::default();
        s.observe(&entry([10, 0, 0, 1], 0, "/search?q=a", 200, "x"));
        s.observe(&entry([10, 0, 0, 1], 5, "/static/css/main.css", 200, "x"));
        s.observe(&entry([10, 0, 0, 1], 9, "/static/js/app.js", 200, "x"));
        let f = s.observe(&entry([10, 0, 0, 1], 15, "/offers/3", 404, "x"));
        assert_eq!(f.requests, 4);
        assert_eq!(f.pages, 2);
        assert_eq!(f.assets, 2);
        assert_eq!(f.js_assets, 1);
        assert_eq!(f.errors, 1);
        assert_eq!(f.offer_hits, 1);
        assert_eq!(f.search_hits, 1);
        assert_eq!(f.distinct_paths(), 4);
        assert_eq!(f.duration_secs(), 15);
        assert!((f.mean_gap_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn idle_timeout_starts_a_new_session() {
        let mut s = Sessionizer::new(SessionizerConfig {
            idle_timeout_secs: 100,
        });
        s.observe(&entry([10, 0, 0, 1], 0, "/a", 200, "x"));
        s.observe(&entry([10, 0, 0, 1], 99, "/b", 200, "x"));
        let f = s.observe(&entry([10, 0, 0, 1], 300, "/c", 200, "x"));
        assert_eq!(f.requests, 1, "session should have reset");
        assert_eq!(s.completed_sessions(), 1);
    }

    #[test]
    fn clients_are_separated_by_address_and_agent() {
        let mut s = Sessionizer::default();
        s.observe(&entry([10, 0, 0, 1], 0, "/a", 200, "agent-one"));
        s.observe(&entry([10, 0, 0, 1], 1, "/b", 200, "agent-two"));
        let f1 = s
            .current(&(Ipv4Addr::new(10, 0, 0, 1), {
                divscrape_httplog::UserAgent::new("agent-one").fingerprint()
            }))
            .unwrap();
        assert_eq!(f1.requests, 1);
        assert_eq!(s.active_clients(), 2);
    }

    #[test]
    fn burst_window_tracks_trailing_sixty_seconds() {
        let mut s = Sessionizer::default();
        for i in 0..30 {
            s.observe(&entry([10, 0, 0, 1], i, "/a", 200, "x"));
        }
        let key = (
            Ipv4Addr::new(10, 0, 0, 1),
            divscrape_httplog::UserAgent::new("x").fingerprint(),
        );
        assert_eq!(s.current(&key).unwrap().current_burst(), 30);
        // A request 10 minutes later (same session only if timeout allows —
        // use a long timeout) sees the window drained.
        let mut s = Sessionizer::new(SessionizerConfig {
            idle_timeout_secs: 10_000,
        });
        for i in 0..30 {
            s.observe(&entry([10, 0, 0, 1], i, "/a", 200, "x"));
        }
        let f = s.observe(&entry([10, 0, 0, 1], 700, "/a", 200, "x"));
        assert_eq!(f.current_burst(), 1);
        assert_eq!(f.max_burst, 30);
    }

    #[test]
    fn ratios_behave_at_the_edges() {
        let f = SessionFeatures::start(&entry([1, 1, 1, 1], 0, "/a", 400, "x"));
        assert_eq!(f.error_ratio(), 1.0);
        assert_eq!(f.mean_gap_secs(), f64::INFINITY);
        assert_eq!(f.assets_per_page(), 0.0);
        assert_eq!(f.distinct_ratio(), 1.0);
    }

    #[test]
    fn feature_vector_is_finite_and_bounded() {
        let mut s = Sessionizer::default();
        let mut f = None;
        for i in 0..200 {
            let path = format!("/offers/{}", i % 37);
            let status = if i % 13 == 0 { 400 } else { 200 };
            f = Some(
                s.observe(&entry([10, 0, 0, 2], i * 2, &path, status, "x"))
                    .clone(),
            );
        }
        let v = f.unwrap().feature_vector();
        assert_eq!(v.len(), SessionFeatures::FEATURE_NAMES.len());
        for (name, x) in SessionFeatures::FEATURE_NAMES.iter().zip(v) {
            assert!(x.is_finite(), "{name} not finite");
            assert!((-0.001..=1.5).contains(&x), "{name} = {x} out of range");
        }
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let key = (Ipv4Addr::new(10, 9, 8, 7), 12345u64);
        let s1 = Sessionizer::shard_of(&key, 8);
        let s2 = Sessionizer::shard_of(&key, 8);
        assert_eq!(s1, s2);
        assert!(s1 < 8);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Sessionizer::default();
        s.observe(&entry([10, 0, 0, 1], 0, "/a", 200, "x"));
        s.reset();
        assert_eq!(s.active_clients(), 0);
        assert_eq!(s.completed_sessions(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_entry() -> impl Strategy<Value = (u8, i64, u16, u8)> {
            // (client discriminator, gap seconds, status, path kind)
            (
                0u8..4,
                0i64..4_000,
                proptest::sample::select(vec![200u16, 204, 302, 304, 400, 404, 500]),
                0u8..6,
            )
        }

        proptest! {
            #[test]
            fn counters_partition_and_ratios_stay_in_unit_range(
                steps in proptest::collection::vec(arbitrary_entry(), 1..120)
            ) {
                let mut s = Sessionizer::default();
                let mut clock = 0i64;
                for (client, gap, status, kind) in steps {
                    clock += gap;
                    let path = match kind {
                        0 => "/offers/7".to_owned(),
                        1 => "/static/js/app.js".to_owned(),
                        2 => "/static/css/main.css".to_owned(),
                        3 => "/api/v1/fares?route=X".to_owned(),
                        4 => "/robots.txt".to_owned(),
                        _ => "/search?q=Y".to_owned(),
                    };
                    let f = s.observe(&entry([10, 0, 0, client], clock, &path, status, "ua"));
                    // Class counters never exceed the total.
                    prop_assert!(f.pages + f.assets + f.apis + f.probes + f.robots_fetches <= f.requests);
                    prop_assert!(f.js_assets <= f.assets);
                    prop_assert!(f.bad_requests <= f.errors);
                    prop_assert!(f.distinct_paths() <= f.requests);
                    prop_assert!(f.current_burst() <= f.requests);
                    prop_assert!(f.max_burst >= f.current_burst());
                    for ratio in [f.error_ratio(), f.no_content_ratio(), f.referrer_ratio(), f.distinct_ratio()] {
                        prop_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
                    }
                    prop_assert!(f.duration_secs() >= 0);
                    // The feature vector stays finite whatever arrives.
                    prop_assert!(f.feature_vector().iter().all(|v| v.is_finite()));
                }
            }

            #[test]
            fn completed_plus_active_is_total_session_count(
                gaps in proptest::collection::vec(0i64..5_000, 1..100)
            ) {
                let timeout = 1_800i64;
                let mut s = Sessionizer::default();
                let mut clock = 0i64;
                let mut expected_sessions = 1u64;
                let mut last = None::<i64>;
                for gap in gaps {
                    clock += gap;
                    if let Some(prev) = last {
                        if clock - prev > timeout {
                            expected_sessions += 1;
                        }
                    }
                    last = Some(clock);
                    s.observe(&entry([10, 0, 0, 1], clock, "/a", 200, "ua"));
                }
                prop_assert_eq!(s.completed_sessions() + 1, expected_sessions);
                prop_assert_eq!(s.active_clients(), 1);
            }
        }
    }
}
