//! Diverse web-scraping detectors for the `divscrape` reproduction.
//!
//! The paper runs two independently designed tools over the same access
//! logs: Distil Networks (commercial) and Arcane (in-house). Both are
//! closed; this crate implements functional equivalents plus the
//! related-work baselines:
//!
//! * [`Sentinel`] — the commercial-style tool: user-agent signatures, an IP
//!   reputation feed, a request-rate monitor, JavaScript-challenge
//!   emulation, a known-violator cache, and a verified-operator whitelist.
//! * [`Arcane`] — the in-house-style tool: sessionization plus weighted
//!   behavioural heuristics (asset starvation, machine pacing, error and
//!   beacon anomalies, probing, repetition).
//! * [`baselines`] — a naive rate limiter, signature-only matching, and
//!   hand-rolled ML baselines (Gaussian naive Bayes, logistic regression,
//!   CART) over the Stevanovic-style session features.
//!
//! All detectors implement the streaming [`Detector`] trait: one
//! [`Verdict`] per HTTP request, which is exactly the unit the paper's
//! tables count. [`parallel::run_sharded`] runs any of them across worker
//! threads with verdict-identical output.
//!
//! # Example
//!
//! ```
//! use divscrape_detect::{run_alerts, Arcane, Sentinel};
//! use divscrape_traffic::{generate, ScenarioConfig};
//!
//! let log = generate(&ScenarioConfig::tiny(2018))?;
//! let sentinel_alerts = run_alerts(&mut Sentinel::stock(), log.entries());
//! let arcane_alerts = run_alerts(&mut Arcane::stock(), log.entries());
//!
//! // The two tools agree on most requests but not all — the diversity the
//! // paper measures.
//! let disagreements = sentinel_alerts
//!     .iter()
//!     .zip(&arcane_alerts)
//!     .filter(|(s, a)| s != a)
//!     .count();
//! assert!(disagreements < log.len() / 2);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arcane;
pub mod baselines;
mod committee;
mod detector;
pub mod parallel;
mod sentinel;
mod session;
mod trap;

pub use arcane::{Arcane, ArcaneConfig};
pub use committee::Committee;
pub use trap::TrapDetector;
pub use detector::{run, run_alerts, Detector, Verdict};
pub use sentinel::{ReputationFeed, Sentinel, SentinelConfig, SentinelSignal, SignatureEngine};
pub use session::{ClientKey, SessionFeatures, Sessionizer, SessionizerConfig};
