//! Diverse web-scraping detectors for the `divscrape` reproduction.
//!
//! The paper runs two independently designed tools over the same access
//! logs: Distil Networks (commercial) and Arcane (in-house). Both are
//! closed; this crate implements functional equivalents plus the
//! related-work baselines:
//!
//! * [`Sentinel`] — the commercial-style tool: user-agent signatures, an IP
//!   reputation feed, a request-rate monitor, JavaScript-challenge
//!   emulation, a known-violator cache, and a verified-operator whitelist.
//! * [`Arcane`] — the in-house-style tool: sessionization plus weighted
//!   behavioural heuristics (asset starvation, machine pacing, error and
//!   beacon anomalies, probing, repetition).
//! * [`baselines`] — a naive rate limiter, signature-only matching, and
//!   hand-rolled ML baselines (Gaussian naive Bayes, logistic regression,
//!   CART) over the Stevanovic-style session features.
//!
//! All detectors implement the streaming [`Detector`] trait: one
//! [`Verdict`] per HTTP request — exactly the unit the paper's tables
//! count — delivered either one entry at a time ([`Detector::observe`]) or
//! over a batch ([`Detector::observe_batch`]). Every stock detector ships
//! a specialized batch path that amortizes its per-entry identity work
//! (user-agent hashing, whitelist checks, signature and reputation
//! lookups, state-table probes) over runs of same-client entries, with
//! verdicts guaranteed identical to the per-entry loop. [`run`] and
//! [`parallel::run_sharded`] route through it automatically, and
//! [`parallel::run_sharded`] spreads any detector across worker threads
//! with verdict-identical output.
//!
//! Detectors compose: [`Committee`] adjudicates any member set online
//! behind the same trait, `Detector` is implemented for `Box<D>` and
//! `&mut D` so members can be owned or borrowed, and the
//! `divscrape-pipeline` crate builds full streaming deployments
//! (incremental ingestion, client-sharded workers, alert sinks) on top of
//! this trait.
//!
//! For long-running streams, every stateful stock detector can bound its
//! per-client tables with TTL and LRU-capacity eviction (the [`evict`]
//! module): [`Detector::set_eviction`] installs an [`EvictionConfig`],
//! [`Detector::eviction_stats`] reports occupancy and eviction counts.
//! Eviction is off by default, in which case output is bit-identical to
//! the unbounded tables.
//!
//! For deployments where almost all traffic is benign, the [`triage`]
//! module provides a near-free first-pass filter ([`TriageFilter`] /
//! [`FastTriage`]) that classifies clients as benign-so-far or
//! escalated, so a pipeline can skip the detectors for the benign pool
//! and lazily replay a client's history the moment it escalates.
//!
//! # Streaming quickstart
//!
//! ```
//! use divscrape_detect::{run_alerts, Committee, Detector, Sentinel};
//! use divscrape_traffic::{generate, ScenarioConfig};
//!
//! let log = generate(&ScenarioConfig::tiny(2018))?;
//!
//! // Entries arrive over time; feed them in whatever batches show up.
//! // Batch boundaries never change a verdict.
//! let mut committee = Committee::stock_pair(1); // sentinel OR arcane
//! let mut verdicts = Vec::new();
//! for batch in log.entries().chunks(500) {
//!     committee.observe_batch(batch, &mut verdicts);
//! }
//! let alerts = verdicts.iter().filter(|v| v.alert).count();
//!
//! // Identical to a per-entry offline run of the same pair.
//! let offline = run_alerts(&mut Committee::stock_pair(1), log.entries());
//! assert_eq!(alerts, offline.iter().filter(|a| **a).count());
//! # Ok::<(), String>(())
//! ```
//!
//! # Offline example: the diversity the paper measures
//!
//! ```
//! use divscrape_detect::{run_alerts, Arcane, Sentinel};
//! use divscrape_traffic::{generate, ScenarioConfig};
//!
//! let log = generate(&ScenarioConfig::tiny(2018))?;
//! let sentinel_alerts = run_alerts(&mut Sentinel::stock(), log.entries());
//! let arcane_alerts = run_alerts(&mut Arcane::stock(), log.entries());
//!
//! // The two tools agree on most requests but not all — the diversity the
//! // paper measures.
//! let disagreements = sentinel_alerts
//!     .iter()
//!     .zip(&arcane_alerts)
//!     .filter(|(s, a)| s != a)
//!     .count();
//! assert!(disagreements < log.len() / 2);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arcane;
pub mod baselines;
mod committee;
mod detector;
pub mod evict;
pub mod parallel;
mod sentinel;
mod session;
pub mod tenant;
mod trap;
pub mod triage;

pub use arcane::{Arcane, ArcaneConfig};
pub use committee::Committee;
pub use detector::{run, run_alerts, Detector, Verdict};
pub use evict::{ClientStateTable, EvictionConfig, EvictionStats, StateTable, TenantStateTable};
pub use sentinel::{ReputationFeed, Sentinel, SentinelConfig, SentinelSignal, SignatureEngine};
pub use session::{ClientKey, SessionFeatures, Sessionizer, SessionizerConfig};
pub use tenant::{TenantClientKey, TenantId};
pub use trap::TrapDetector;
pub use triage::{FastTriage, TriageCalibration, TriageDecision, TriageFilter, TriagePolicy};
