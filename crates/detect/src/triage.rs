//! Hierarchical triage: a near-free first-pass filter in front of the
//! session detectors.
//!
//! The overwhelming majority of real traffic is benign and could be
//! dismissed for a few dozen nanoseconds per entry; only the suspicious
//! residue deserves the full detector ensemble (BOTracle-style
//! hierarchical detection). A [`TriageFilter`] classifies every entry's
//! client as *benign-so-far* or *escalated*:
//!
//! * **Escalated** clients are processed by the full detector set, live.
//! * **Benign-so-far** clients skip the detectors; the pipeline buffers
//!   their entries instead, and the moment the client escalates its
//!   buffered history is replayed through the detectors in feed order —
//!   so the verdict stream is bit-identical to a triage-off run whenever
//!   nothing spilled (see `divscrape-pipeline`'s `triage` knob).
//!
//! The stock filter, [`FastTriage`], maintains only cheap per-client
//! counters computable from any [`EntryView`] without allocation, with
//! state held in the same evictable [`StateTable`](crate::StateTable)
//! machinery the detectors use. Its escalation ruleset is deliberately a
//! **superset trigger** for the stock [`Sentinel`](crate::Sentinel) +
//! [`Arcane`](crate::Arcane) pair: whenever either stock detector would
//! alert on an entry of some client, that client has already escalated
//! at — or strictly before — that entry, so no suppressed entry ever had
//! an alerting verdict and replayed history is provably all-clear.

use std::collections::HashMap;

use divscrape_httplog::{AgentFamily, EntryView, HttpMethod, ResourceClass};

use crate::evict::{ClientStateTable, EvictionConfig, EvictionStats};
use crate::sentinel::{ReputationFeed, SignatureEngine};

/// What a [`TriageFilter`] decided about one entry's client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriageDecision {
    /// The client still looks benign: the entry may be suppressed
    /// (buffered for potential replay) instead of run through the
    /// detectors.
    Benign,
    /// This entry escalated the client: replay its buffered history
    /// through the detectors, then process this entry live.
    Escalate,
    /// The client escalated earlier: process the entry live.
    Escalated,
}

/// A first-pass classifier deciding which clients the expensive
/// detectors must see.
///
/// Implementations must be **sticky**: once a client escalates, every
/// later entry of that client must return [`TriageDecision::Escalated`]
/// (until the state is forgotten by eviction — which is exactly the
/// lockstep forgetting the detectors themselves apply).
pub trait TriageFilter: Send {
    /// Stable name for reports and debugging.
    fn name(&self) -> &str;

    /// Classifies one entry's client, updating per-client state.
    fn classify(&mut self, entry: &dyn EntryView) -> TriageDecision;

    /// Drops all per-client state.
    fn reset(&mut self);

    /// Installs an eviction policy on the filter's client table. Using
    /// the same policy as the detectors keeps forgetting in lockstep:
    /// a client idle past the TTL restarts everywhere at once.
    fn set_eviction(&mut self, cfg: EvictionConfig);

    /// Occupancy and eviction counters of the filter's client table.
    fn eviction_stats(&self) -> EvictionStats;

    /// A fresh boxed copy with empty state.
    fn clone_boxed(&self) -> Box<dyn TriageFilter>;
}

/// Requests two adjacent aligned minutes must jointly reach for the
/// burst rule to escalate. 25 is Arcane's one-minute burst threshold:
/// any 60-second sliding window holding ≥ 25 requests spans at most two
/// aligned minutes, so the pair over those minutes counts at least the
/// whole window. Sentinel's rate signal (30 pages/min) is covered by the
/// same check, since its window is a subset of all requests.
const BURST_PAIR_THRESHOLD: u32 = 25;

/// Session requests before the sustained-pacing rule can escalate —
/// Arcane's `sustained_min_requests`.
const SUSTAINED_MIN_REQUESTS: u32 = 30;

/// Mean inter-request gap (seconds) below which a session paces like a
/// machine — Arcane's `sustained_gap_secs`.
const SUSTAINED_GAP_SECS: f64 = 2.5;

/// Idle gap that rolls a client over into a fresh session — Arcane's
/// sessionizer default. Mirrored here so the sustained-pacing rule
/// evaluates the *same* session the detector would score.
const SESSION_IDLE_SECS: i64 = 1_800;

/// Lifetime requests before a seen error escalates. Arcane's error-ratio
/// rule is gated at `error_min_requests` (10), and its bad-request rule
/// (weight 2 of an alert threshold of 3) never alerts without a
/// companion signal that is either covered by another rule here or
/// itself implies ≥ 10 session requests — so an error only matters once
/// the client has enough history for the detector to act on it.
const ERROR_MIN_REQUESTS: u64 = 10;

/// Page views without an intervening `.js` fetch that escalate —
/// Sentinel's challenge threshold.
const PAGES_WITHOUT_JS: u32 = 6;

/// `204` responses that escalate (Arcane's beacon threshold).
const NO_CONTENT_LIMIT: u32 = 3;

/// Hard ceiling on requests a client may make without escalating; also
/// bounds how much history the pipeline can buffer per client. Safe for
/// the stock pair: every scoring path that could alert later is covered
/// by a dedicated rule long before this many requests.
const MAX_QUIET_REQUESTS: u64 = 256;

/// Capacity bound of the per-agent identity cache (distinct agents per
/// generation) — same figure as the httplog interner's default.
const UA_CACHE_CAP: usize = 4096;

/// The cover thresholds of the stock [`FastTriage`] rules, exposed for
/// calibration audits ([`FastTriage::calibration`]).
///
/// Each field mirrors one private rule constant. The superset-cover
/// property — every stock-detector alert implies a triage escalation at
/// or before the same entry — only holds while each threshold here
/// covers (is at least as eager as) the corresponding detector config
/// value; a detector config change that outruns these numbers silently
/// breaks bit-identity. The repository's `triage_calibration` test
/// derives the required bounds from [`SentinelConfig`] and
/// [`ArcaneConfig`] defaults and fails the build-out when a threshold
/// drifts out of cover.
///
/// [`SentinelConfig`]: crate::SentinelConfig
/// [`ArcaneConfig`]: crate::ArcaneConfig
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriageCalibration {
    /// Joint request count over two adjacent aligned minutes that
    /// escalates — must cover Arcane's burst threshold and Sentinel's
    /// per-minute page-rate threshold.
    pub burst_pair_threshold: u32,
    /// Session requests before sustained-pacing can escalate — must
    /// cover Arcane's `sustained_min_requests`.
    pub sustained_min_requests: u32,
    /// Mean inter-request gap (seconds) below which a session paces
    /// like a machine — must cover Arcane's `sustained_gap_secs` (be at
    /// least as large: a larger gap escalates more sessions).
    pub sustained_gap_secs: f64,
    /// Idle gap that rolls a client into a fresh session — must equal
    /// the detectors' sessionizer idle timeout exactly, so the pacing
    /// rule evaluates the same session the detector scores.
    pub session_idle_secs: i64,
    /// Lifetime requests before a seen error escalates — must cover
    /// Arcane's `error_min_requests`.
    pub error_min_requests: u64,
    /// Page views without a `.js` fetch that escalate — must cover
    /// Sentinel's challenge-page threshold.
    pub pages_without_js: u32,
    /// `204` responses that escalate — must cover Arcane's beacon
    /// count threshold.
    pub no_content_limit: u32,
    /// Hard ceiling on requests a client may make without escalating.
    pub max_quiet_requests: u64,
}

/// Caches the UA-derived identity verdict (non-browser family or a
/// signature match) per distinct agent string.
///
/// Real traffic repeats a small pool of agent strings across thousands
/// of clients, but the signature scan is priced per *string*: without a
/// cache every new client pays a full pattern sweep over its (long,
/// browser) UA, and that sweep — not the counter updates — dominates
/// triage cost on benign-heavy traffic. Growth is bounded by the same
/// generation-swap idiom as `divscrape_httplog`'s `UaInterner`: a full
/// current generation demotes to the previous one (dropping *its*
/// contents), a miss promotes a previous-generation hit back, so at most
/// `2 × cap` agents are ever cached and a hostile feed of unique agents
/// costs re-scanning, never unbounded memory. Cached verdicts are
/// content-derived, so a re-scan after eviction returns the same answer.
#[derive(Debug, Clone)]
struct UaIdentityCache {
    map: HashMap<String, bool>,
    prev: HashMap<String, bool>,
    cap: usize,
}

impl UaIdentityCache {
    fn new(cap: usize) -> Self {
        Self {
            map: HashMap::new(),
            prev: HashMap::new(),
            cap: cap.max(1),
        }
    }

    /// The cached verdict for `ua`, computing (and caching) it on first
    /// sight. The fast path is one borrowed-key lookup — no allocation.
    fn resolve(&mut self, ua: &str, compute: impl FnOnce(&str) -> bool) -> bool {
        if let Some(&cached) = self.map.get(ua) {
            return cached;
        }
        let (owned, flagged) = match self.prev.remove_entry(ua) {
            Some(hit) => hit,
            None => (ua.to_owned(), compute(ua)),
        };
        if self.map.len() >= self.cap {
            self.prev.clear();
            std::mem::swap(&mut self.map, &mut self.prev);
        }
        self.map.insert(owned, flagged);
        flagged
    }

    fn clear(&mut self) {
        self.map.clear();
        self.prev.clear();
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len() + self.prev.len()
    }
}

/// Per-client triage counters — everything the stock ruleset needs, in
/// a few dozen bytes, updated allocation-free.
#[derive(Debug, Clone, Default)]
struct FastState {
    /// Sticky escalation flag.
    escalated: bool,
    /// Identity (UA family, signature, reputation) evaluated once.
    identity_checked: bool,
    identity_flagged: bool,
    /// Lifetime request count (never reset).
    requests: u64,
    /// Lifetime `204` responses.
    no_content: u32,
    /// Page views since the last `.js` asset fetch.
    pages_since_js: u32,
    /// Sticky: some response was a `4xx`/`5xx`.
    error_seen: bool,
    /// Burst: two aligned 60-second buckets.
    minute: i64,
    cur: u32,
    prev: u32,
    /// Sustained pacing: the current session's bounds and size, rolled
    /// over after [`SESSION_IDLE_SECS`] of idleness exactly like the
    /// detectors' sessionizer.
    session_first: i64,
    session_last: i64,
    session_requests: u32,
}

/// The stock [`TriageFilter`]: per-client counters + identity checks,
/// calibrated as a superset trigger for the stock
/// [`Sentinel`](crate::Sentinel)/[`Arcane`](crate::Arcane) pair.
///
/// Escalation rules, each a strict over-approximation of a detector
/// signal (evaluated after incorporating the entry, like the detectors):
///
/// 1. non-`Browser` agent family, a stock signature/fingerprint match,
///    or a reputation-listed address — once per client;
/// 2. a request method outside GET/HEAD/POST;
/// 3. a vulnerability-probe or `robots.txt` path;
/// 4. a `4xx`/`5xx` response seen, once the client has ≥ 10 lifetime
///    requests (the detectors' error rules are gated on session size);
/// 5. three `204` responses;
/// 6. six page views without a `.js` fetch (the JS challenge can no
///    longer pass);
/// 7. a burst: an adjacent aligned-minute pair totalling ≥ 25 requests
///    (Arcane's one-minute burst, Sentinel's per-minute rate);
/// 8. sustained machine pacing: a session of ≥ 30 requests whose mean
///    inter-request gap is under 2.5 seconds, over the same
///    idle-rollover sessions the detectors score;
/// 9. a safety valve at 256 lifetime requests.
///
/// ```
/// use divscrape_detect::triage::{FastTriage, TriageDecision, TriageFilter};
/// use divscrape_httplog::LogEntry;
///
/// let mut triage = FastTriage::stock();
/// let human = LogEntry::parse(
///     r#"10.0.0.9 - - [11/Mar/2018:00:00:05 +0000] "GET /offers HTTP/1.1" 200 77 "http://x/" "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36""#,
/// ).map_err(|e| e.to_string())?;
/// let tool = LogEntry::parse(
///     r#"10.0.0.7 - - [11/Mar/2018:00:00:05 +0000] "GET /offers HTTP/1.1" 200 77 "-" "curl/7.58.0""#,
/// ).map_err(|e| e.to_string())?;
/// assert_eq!(triage.classify(&human), TriageDecision::Benign);
/// assert_eq!(triage.classify(&tool), TriageDecision::Escalate);
/// assert_eq!(triage.classify(&tool), TriageDecision::Escalated);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct FastTriage {
    signatures: SignatureEngine,
    reputation: ReputationFeed,
    clients: ClientStateTable<FastState>,
    ua_cache: UaIdentityCache,
}

impl Default for FastTriage {
    fn default() -> Self {
        Self::stock()
    }
}

impl FastTriage {
    /// The stock filter: stock signature rules and reputation feed.
    pub fn stock() -> Self {
        Self::with_rules(SignatureEngine::stock(), ReputationFeed::stock())
    }

    /// A filter with explicit identity rule sets — use the same sets the
    /// deployed Sentinel uses so identity escalation stays a superset of
    /// its identity signals.
    pub fn with_rules(signatures: SignatureEngine, reputation: ReputationFeed) -> Self {
        Self {
            signatures,
            reputation,
            clients: ClientStateTable::new(EvictionConfig::DISABLED),
            ua_cache: UaIdentityCache::new(UA_CACHE_CAP),
        }
    }

    /// The stock rules' cover thresholds, for calibration audits
    /// against the deployed detector configs — see
    /// [`TriageCalibration`].
    pub fn calibration() -> TriageCalibration {
        TriageCalibration {
            burst_pair_threshold: BURST_PAIR_THRESHOLD,
            sustained_min_requests: SUSTAINED_MIN_REQUESTS,
            sustained_gap_secs: SUSTAINED_GAP_SECS,
            session_idle_secs: SESSION_IDLE_SECS,
            error_min_requests: ERROR_MIN_REQUESTS,
            pages_without_js: PAGES_WITHOUT_JS,
            no_content_limit: NO_CONTENT_LIMIT,
            max_quiet_requests: MAX_QUIET_REQUESTS,
        }
    }

    /// The UA-derived half of the identity check, cached per distinct
    /// agent string (the signature sweep is the expensive part of the
    /// whole filter; real traffic repeats a small agent pool).
    fn ua_flagged(
        ua_cache: &mut UaIdentityCache,
        signatures: &SignatureEngine,
        family: AgentFamily,
        ua: &str,
    ) -> bool {
        ua_cache.resolve(ua, |ua| {
            family != AgentFamily::Browser || signatures.matches_parts(family, ua)
        })
    }
}

impl TriageFilter for FastTriage {
    fn name(&self) -> &str {
        "fast-triage"
    }

    fn classify(&mut self, entry: &dyn EntryView) -> TriageDecision {
        let ts = entry.epoch_seconds();
        let key = entry.client_key();
        let (state, _) = self.clients.upsert_with(key, ts, FastState::default);
        if state.escalated {
            return TriageDecision::Escalated;
        }
        state.requests += 1;

        // Identity is client-constant: evaluate once, on first sight —
        // and the UA half is cached across clients, so the signature
        // sweep runs once per distinct agent string, not per client.
        if !state.identity_checked {
            state.identity_checked = true;
            state.identity_flagged = Self::ua_flagged(
                &mut self.ua_cache,
                &self.signatures,
                entry.agent_family(),
                entry.ua_str(),
            ) || self.reputation.is_listed(entry.addr());
        }

        // JS-challenge proxy: pages since the last script fetch.
        let class = entry.resource_class();
        match class {
            ResourceClass::Page => state.pages_since_js += 1,
            ResourceClass::Asset if entry.path().ends_with(".js") => state.pages_since_js = 0,
            _ => {}
        }

        let status = entry.status();
        if status.as_u16() == 204 {
            state.no_content += 1;
        }
        state.error_seen |= status.is_error();

        // Burst: two aligned 60-second buckets, advanced by timestamp.
        let minute = ts.div_euclid(60);
        if state.requests == 1 {
            state.minute = minute;
            state.cur = 1;
        } else if minute == state.minute {
            state.cur += 1;
        } else if minute == state.minute + 1 {
            state.prev = state.cur;
            state.cur = 1;
            state.minute = minute;
        } else if minute > state.minute {
            state.prev = 0;
            state.cur = 1;
            state.minute = minute;
        } else {
            // Clock skew backwards: count into the current bucket rather
            // than lose the request.
            state.cur += 1;
        }

        // Sustained pacing: mirror the detectors' idle-rollover sessions
        // so the mean-gap test scores the same span Arcane would.
        if state.requests == 1 || ts - state.session_last > SESSION_IDLE_SECS {
            state.session_first = ts;
            state.session_requests = 1;
        } else {
            state.session_requests += 1;
        }
        state.session_last = ts;
        let sustained = state.session_requests >= SUSTAINED_MIN_REQUESTS
            && ((state.session_last - state.session_first) as f64)
                / f64::from(state.session_requests - 1)
                < SUSTAINED_GAP_SECS;

        let escalate = state.identity_flagged
            || !matches!(
                entry.method(),
                HttpMethod::Get | HttpMethod::Head | HttpMethod::Post
            )
            || matches!(class, ResourceClass::Probe | ResourceClass::RobotsTxt)
            || (state.error_seen && state.requests >= ERROR_MIN_REQUESTS)
            || state.no_content >= NO_CONTENT_LIMIT
            || state.pages_since_js >= PAGES_WITHOUT_JS
            || state.prev + state.cur >= BURST_PAIR_THRESHOLD
            || sustained
            || state.requests >= MAX_QUIET_REQUESTS;

        if escalate {
            state.escalated = true;
            TriageDecision::Escalate
        } else {
            TriageDecision::Benign
        }
    }

    fn reset(&mut self) {
        self.clients.clear();
        self.ua_cache.clear();
    }

    fn set_eviction(&mut self, cfg: EvictionConfig) {
        self.clients.set_config(cfg);
    }

    fn eviction_stats(&self) -> EvictionStats {
        self.clients.stats()
    }

    fn clone_boxed(&self) -> Box<dyn TriageFilter> {
        Box::new(FastTriage::with_rules(
            self.signatures.clone(),
            self.reputation.clone(),
        ))
    }
}

/// Default replay-buffer memory cap: 64 MiB of buffered line bytes.
const DEFAULT_REPLAY_CAP_BYTES: usize = 64 << 20;

/// A triage configuration for the pipeline: which filter classifies
/// clients, and how much suppressed history may be buffered for replay.
///
/// Consumed by `divscrape-pipeline`'s `PipelineBuilder::triage`.
pub struct TriagePolicy {
    filter: Box<dyn TriageFilter>,
    replay_cap_bytes: usize,
}

impl TriagePolicy {
    /// The stock policy: [`FastTriage`] with a 64 MiB replay cap.
    pub fn fast() -> Self {
        Self::custom(FastTriage::stock())
    }

    /// A policy around a custom filter, with the default replay cap.
    ///
    /// Bit-identity of the suppressed stream only holds if the filter is
    /// a superset trigger for the composed detectors (see the
    /// [module docs](self)); a weaker filter still never loses an
    /// escalated client's history, but alerts on suppressed entries are
    /// delivered late (at escalation) and entries spilled past the
    /// replay cap are lost to the detectors.
    pub fn custom(filter: impl TriageFilter + 'static) -> Self {
        Self {
            filter: Box::new(filter),
            replay_cap_bytes: DEFAULT_REPLAY_CAP_BYTES,
        }
    }

    /// Caps the total bytes of buffered suppressed lines. When the cap
    /// is exceeded the globally oldest buffered entries spill (counted
    /// in `PipelineStats::triage_spilled_entries`) and are never
    /// replayed.
    #[must_use]
    pub fn replay_cap_bytes(mut self, bytes: usize) -> Self {
        self.replay_cap_bytes = bytes.max(1);
        self
    }

    /// Decomposes the policy into its filter and replay cap.
    pub fn into_parts(self) -> (Box<dyn TriageFilter>, usize) {
        (self.filter, self.replay_cap_bytes)
    }
}

impl std::fmt::Debug for TriagePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TriagePolicy")
            .field("filter", &self.filter.name())
            .field("replay_cap_bytes", &self.replay_cap_bytes)
            .finish()
    }
}

impl Clone for TriagePolicy {
    fn clone(&self) -> Self {
        Self {
            filter: self.filter.clone_boxed(),
            replay_cap_bytes: self.replay_cap_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_httplog::LogEntry;

    const BROWSER_UA: &str = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36";

    fn entry(ip: &str, secs: i64, method: &str, path: &str, status: u16, ua: &str) -> LogEntry {
        let (hour, min, sec) = (secs / 3_600, (secs / 60) % 60, secs % 60);
        let line = format!(
            "{ip} - - [11/Mar/2018:{hour:02}:{min:02}:{sec:02} +0000] \"{method} {path} HTTP/1.1\" {status} 77 \"http://site/\" \"{ua}\""
        );
        LogEntry::parse(&line).expect("test line parses")
    }

    fn decide(triage: &mut FastTriage, e: &LogEntry) -> TriageDecision {
        triage.classify(e)
    }

    #[test]
    fn browsing_human_stays_benign() {
        let mut triage = FastTriage::stock();
        for page in 0..5 {
            let t = page * 30;
            let e = entry("10.0.0.9", t, "GET", "/offers/1", 200, BROWSER_UA);
            assert_eq!(decide(&mut triage, &e), TriageDecision::Benign);
            let js = entry("10.0.0.9", t + 1, "GET", "/static/app.js", 200, BROWSER_UA);
            assert_eq!(decide(&mut triage, &js), TriageDecision::Benign);
        }
    }

    #[test]
    fn identity_rules_escalate_on_first_sight() {
        let mut triage = FastTriage::stock();
        let tool = entry("10.0.1.1", 0, "GET", "/offers/1", 200, "curl/7.58.0");
        assert_eq!(decide(&mut triage, &tool), TriageDecision::Escalate);
        assert_eq!(decide(&mut triage, &tool), TriageDecision::Escalated);
        // Stale-browser fingerprint: Browser family, signature-listed.
        let stale = entry(
            "10.0.1.2",
            0,
            "GET",
            "/offers/1",
            200,
            "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2272.89 Safari/537.36",
        );
        assert_eq!(decide(&mut triage, &stale), TriageDecision::Escalate);
    }

    #[test]
    fn behavioural_rules_escalate_before_the_detectors_could_alert() {
        // Probe path.
        let mut triage = FastTriage::stock();
        let probe = entry("10.0.2.1", 0, "GET", "/wp-admin/setup.php", 404, BROWSER_UA);
        assert_eq!(decide(&mut triage, &probe), TriageDecision::Escalate);

        // Non-browsing method.
        let mut triage = FastTriage::stock();
        let put = entry("10.0.2.2", 0, "PUT", "/offers/1", 200, BROWSER_UA);
        assert_eq!(decide(&mut triage, &put), TriageDecision::Escalate);

        // An error escalates once the client reaches the detectors'
        // error-rule gate (10 session requests) — not on first sight,
        // since the gated rules cannot act before then.
        let mut triage = FastTriage::stock();
        let err = entry("10.0.2.3", 0, "GET", "/offers/404", 404, BROWSER_UA);
        assert_eq!(decide(&mut triage, &err), TriageDecision::Benign);
        for i in 1..ERROR_MIN_REQUESTS {
            let path = if i % 2 == 0 {
                "/offers/1"
            } else {
                "/static/app.js"
            };
            let e = entry("10.0.2.3", i as i64 * 30, "GET", path, 200, BROWSER_UA);
            let want = if i + 1 >= ERROR_MIN_REQUESTS {
                TriageDecision::Escalate
            } else {
                TriageDecision::Benign
            };
            assert_eq!(decide(&mut triage, &e), want, "request {i}");
        }

        // robots.txt fetch.
        let mut triage = FastTriage::stock();
        let robots = entry("10.0.2.4", 0, "GET", "/robots.txt", 200, BROWSER_UA);
        assert_eq!(decide(&mut triage, &robots), TriageDecision::Escalate);

        // Pages without any .js fetch: escalates at the challenge
        // threshold, before Sentinel's challenge signal needs it.
        let mut triage = FastTriage::stock();
        for page in 0..PAGES_WITHOUT_JS {
            let e = entry(
                "10.0.2.5",
                i64::from(page) * 30,
                "GET",
                "/offers/2",
                200,
                BROWSER_UA,
            );
            let want = if page + 1 >= PAGES_WITHOUT_JS {
                TriageDecision::Escalate
            } else {
                TriageDecision::Benign
            };
            assert_eq!(decide(&mut triage, &e), want, "page {page}");
        }
    }

    #[test]
    fn machine_pacing_escalates_before_burst_or_sustained_rules() {
        // 30 requests at 2-second spacing (js interleaved to dodge the
        // challenge rule): must escalate no later than request 30, where
        // Arcane's sustained-rate rule (n>=30, mean gap < 2.5s) arms.
        let mut triage = FastTriage::stock();
        let mut escalated_at = None;
        for i in 0..30i64 {
            let (path, _) = if i % 2 == 0 {
                ("/offers/3", ())
            } else {
                ("/static/app.js", ())
            };
            let e = entry("10.0.3.1", i * 2, "GET", path, 200, BROWSER_UA);
            match decide(&mut triage, &e) {
                TriageDecision::Benign => {}
                _ => {
                    escalated_at = Some(i + 1);
                    break;
                }
            }
        }
        let at = escalated_at.expect("sustained machine pacing must escalate");
        assert!(at <= 30, "escalated only at request {at}");
    }

    #[test]
    fn bursty_human_session_stays_benign() {
        // Three page loads of a dozen fetches each, one per minute: the
        // old sticky pair latch would have escalated this very ordinary
        // human at its 30th request, but no detector pacing rule can
        // fire on it — each minute stays under the burst threshold and
        // the session mean gap is well above machine pacing.
        let mut triage = FastTriage::stock();
        let mut n = 0i64;
        for load in 0..3i64 {
            for i in 0..12i64 {
                let path = match i {
                    0 => "/offers/7",
                    1 => "/static/app.js",
                    _ => "/static/hero.png",
                };
                let e = entry("10.0.3.3", load * 75 + i, "GET", path, 200, BROWSER_UA);
                n += 1;
                assert_eq!(
                    decide(&mut triage, &e),
                    TriageDecision::Benign,
                    "request {n}"
                );
            }
        }
    }

    #[test]
    fn slow_client_with_js_never_trips_pacing() {
        // One page + one js per minute: no burst pair, human mean gap.
        let mut triage = FastTriage::stock();
        for i in 0..60i64 {
            let path = if i % 2 == 0 {
                "/offers/4"
            } else {
                "/static/app.js"
            };
            let e = entry("10.0.3.2", i * 31, "GET", path, 200, BROWSER_UA);
            if i + 1 >= MAX_QUIET_REQUESTS as i64 {
                break;
            }
            assert_eq!(
                decide(&mut triage, &e),
                TriageDecision::Benign,
                "request {i}"
            );
        }
    }

    #[test]
    fn safety_valve_bounds_quiet_clients() {
        let mut triage = FastTriage::stock();
        let mut decisions = Vec::new();
        for i in 0..(MAX_QUIET_REQUESTS + 2) {
            let path = if i % 2 == 0 {
                "/offers/5"
            } else {
                "/static/app.js"
            };
            // Spread far apart so no pacing pair arms.
            let e = entry("10.0.4.1", i as i64 * 120, "GET", path, 200, BROWSER_UA);
            decisions.push(decide(&mut triage, &e));
        }
        let first_escalation = decisions
            .iter()
            .position(|d| *d == TriageDecision::Escalate)
            .expect("safety valve fires");
        assert_eq!(first_escalation as u64 + 1, MAX_QUIET_REQUESTS);
        assert!(decisions[first_escalation + 1..]
            .iter()
            .all(|d| *d == TriageDecision::Escalated));
    }

    #[test]
    fn eviction_forgets_escalation_in_lockstep() {
        let mut triage = FastTriage::stock();
        triage.set_eviction(EvictionConfig::ttl(1_800));
        let tool = entry("10.0.5.1", 0, "GET", "/offers/1", 200, "curl/7.58.0");
        assert_eq!(decide(&mut triage, &tool), TriageDecision::Escalate);
        // Returning within the TTL: still remembered.
        let soon = entry("10.0.5.1", 60, "GET", "/offers/2", 200, "curl/7.58.0");
        assert_eq!(decide(&mut triage, &soon), TriageDecision::Escalated);
        // Long idle: state evicted, identity re-escalates fresh.
        let later = entry(
            "10.0.5.1",
            60 + 1_801 + 1_801,
            "GET",
            "/offers/3",
            200,
            "curl/7.58.0",
        );
        assert_eq!(decide(&mut triage, &later), TriageDecision::Escalate);
        assert!(triage.eviction_stats().evicted_clients > 0);
    }

    #[test]
    fn policy_clone_starts_with_fresh_state() {
        let mut triage = FastTriage::stock();
        let tool = entry("10.0.6.1", 0, "GET", "/offers/1", 200, "curl/7.58.0");
        assert_eq!(decide(&mut triage, &tool), TriageDecision::Escalate);
        let mut copy = triage.clone_boxed();
        assert_eq!(copy.classify(&tool), TriageDecision::Escalate);
    }

    #[test]
    fn ua_cache_computes_once_per_distinct_agent() {
        let mut cache = UaIdentityCache::new(8);
        let mut scans = 0u32;
        for _ in 0..100 {
            for ua in ["agent-a", "agent-b"] {
                let flagged = cache.resolve(ua, |ua| {
                    scans += 1;
                    ua == "agent-b"
                });
                assert_eq!(flagged, ua == "agent-b");
            }
        }
        assert_eq!(scans, 2, "one signature sweep per distinct agent");
    }

    #[test]
    fn ua_cache_growth_is_bounded_and_stays_correct() {
        let cap = 8;
        let mut cache = UaIdentityCache::new(cap);
        // A hostile stream of unique agents never exceeds two generations.
        for i in 0..10 * cap {
            let ua = format!("one-off/{i}");
            assert!(cache.resolve(&ua, |ua| ua.ends_with('7')) == ua.ends_with('7'));
            assert!(cache.len() <= 2 * cap, "cache grew past 2x cap");
        }
        // A popular agent keeps resolving correctly (re-scanned or
        // promoted across swaps, never stale) amid the churn.
        for i in 0..4 * cap {
            assert!(cache.resolve("popular", |_| true));
            let ua = format!("churn/{i}");
            let _ = cache.resolve(&ua, |_| false);
        }
        assert!(cache.len() <= 2 * cap);
    }

    #[test]
    fn distinct_agent_churn_does_not_leak_filter_memory() {
        // End-to-end: one client per unique agent string, far past the
        // cache cap — the filter's UA cache must stay bounded.
        let mut triage = FastTriage::stock();
        for i in 0..(UA_CACHE_CAP / 2) {
            let ip = format!("10.{}.{}.{}", i / 65536 % 256, i / 256 % 256, i % 256);
            let e = entry(
                &ip,
                i as i64,
                "GET",
                "/offers/1",
                200,
                &format!("curl/{i}.0"),
            );
            assert_eq!(decide(&mut triage, &e), TriageDecision::Escalate);
        }
        assert!(triage.ua_cache.len() <= 2 * UA_CACHE_CAP);
    }
}
