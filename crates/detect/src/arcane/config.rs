//! Arcane configuration: rule weights, thresholds and ablation toggles.

/// Weights and thresholds of Arcane's scoring rules.
///
/// Each rule contributes its weight to the session's suspicion score when
/// its condition holds; Arcane alerts on a request when the score reaches
/// [`alert_threshold`](Self::alert_threshold). Setting a weight to `0`
/// disables the rule (ablation).
#[derive(Debug, Clone, PartialEq)]
pub struct ArcaneConfig {
    /// Score needed to alert.
    pub alert_threshold: u32,
    /// Weight: user agent is an HTTP tool or empty.
    pub w_tool_agent: u32,
    /// Weight: request method outside GET/HEAD/POST.
    pub w_nonbrowsing_method: u32,
    /// Weight: any vulnerability-probe path in the session.
    pub w_probe_path: u32,
    /// Weight: ≥ `starvation_min_pages` page views with zero asset fetches.
    pub w_asset_starvation: u32,
    /// Weight: beacon anomaly (`204` responses concentrated well above
    /// anything page navigation produces).
    pub w_beacon_anomaly: u32,
    /// Weight: ≥ `burst_threshold` requests within one minute.
    pub w_burst: u32,
    /// Weight: sustained machine pacing (mean gap below
    /// `sustained_gap_secs` over ≥ `sustained_min_requests` requests).
    pub w_sustained_rate: u32,
    /// Weight: session error ratio ≥ `error_ratio_threshold`.
    pub w_error_ratio: u32,
    /// Weight: ≥ `bad_request_min` malformed (`400`) requests.
    pub w_bad_requests: u32,
    /// Weight: ≥ `repetition_min_offers` offer-page hits in one session.
    pub w_repetition: u32,
    /// Weight: `robots.txt` fetched by a client not claiming to be a
    /// crawler.
    pub w_robots_fetch: u32,
    /// Weight: persistent absence of referrers on a sizeable session.
    pub w_no_referrer: u32,
    /// Whether the known-operator whitelist is applied.
    pub enable_whitelist: bool,

    /// Pages with zero assets needed for the starvation rule.
    pub starvation_min_pages: u32,
    /// Requests needed before the beacon rule can fire.
    pub beacon_min_requests: u32,
    /// `204` count needed for the beacon rule.
    pub beacon_min_count: u32,
    /// `204` ratio needed for the beacon rule.
    pub beacon_min_ratio: f64,
    /// One-minute burst size for the burst rule.
    pub burst_threshold: u32,
    /// Requests needed before the sustained-rate rule can fire.
    pub sustained_min_requests: u32,
    /// Mean inter-request gap (seconds) below which pacing is machine-like.
    pub sustained_gap_secs: f64,
    /// Requests needed before the error-ratio rule can fire.
    pub error_min_requests: u32,
    /// Error ratio for the error rule.
    pub error_ratio_threshold: f64,
    /// Malformed-request count for the bad-request rule.
    pub bad_request_min: u32,
    /// Offer hits for the repetition rule.
    pub repetition_min_offers: u32,
    /// Requests needed before the no-referrer rule can fire.
    pub referrer_min_requests: u32,
    /// Referrer ratio below which the no-referrer rule fires.
    pub referrer_max_ratio: f64,
}

impl Default for ArcaneConfig {
    fn default() -> Self {
        Self {
            alert_threshold: 3,
            w_tool_agent: 3,
            w_nonbrowsing_method: 3,
            w_probe_path: 3,
            w_asset_starvation: 3,
            w_beacon_anomaly: 3,
            w_burst: 2,
            w_sustained_rate: 2,
            w_error_ratio: 2,
            w_bad_requests: 2,
            w_repetition: 1,
            w_robots_fetch: 1,
            w_no_referrer: 1,
            enable_whitelist: true,
            starvation_min_pages: 12,
            beacon_min_requests: 20,
            beacon_min_count: 3,
            beacon_min_ratio: 0.05,
            burst_threshold: 25,
            sustained_min_requests: 30,
            sustained_gap_secs: 2.5,
            error_min_requests: 10,
            error_ratio_threshold: 0.08,
            bad_request_min: 3,
            repetition_min_offers: 100,
            referrer_min_requests: 15,
            referrer_max_ratio: 0.1,
        }
    }
}

impl ArcaneConfig {
    /// The ablatable rule names accepted by [`without`](Self::without).
    pub const RULES: [&'static str; 12] = [
        "tool_agent",
        "nonbrowsing_method",
        "probe_path",
        "asset_starvation",
        "beacon_anomaly",
        "burst",
        "sustained_rate",
        "error_ratio",
        "bad_requests",
        "repetition",
        "robots_fetch",
        "no_referrer",
    ];

    /// Returns a copy with one named rule's weight zeroed.
    ///
    /// # Panics
    ///
    /// Panics on an unknown rule name.
    #[must_use]
    pub fn without(&self, rule: &str) -> Self {
        let mut cfg = self.clone();
        match rule {
            "tool_agent" => cfg.w_tool_agent = 0,
            "nonbrowsing_method" => cfg.w_nonbrowsing_method = 0,
            "probe_path" => cfg.w_probe_path = 0,
            "asset_starvation" => cfg.w_asset_starvation = 0,
            "beacon_anomaly" => cfg.w_beacon_anomaly = 0,
            "burst" => cfg.w_burst = 0,
            "sustained_rate" => cfg.w_sustained_rate = 0,
            "error_ratio" => cfg.w_error_ratio = 0,
            "bad_requests" => cfg.w_bad_requests = 0,
            "repetition" => cfg.w_repetition = 0,
            "robots_fetch" => cfg.w_robots_fetch = 0,
            "no_referrer" => cfg.w_no_referrer = 0,
            other => panic!("unknown Arcane rule `{other}`"),
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threshold_is_reachable_by_single_strong_rules() {
        let cfg = ArcaneConfig::default();
        assert!(cfg.w_tool_agent >= cfg.alert_threshold);
        assert!(cfg.w_probe_path >= cfg.alert_threshold);
        assert!(cfg.w_asset_starvation >= cfg.alert_threshold);
        assert!(cfg.w_beacon_anomaly >= cfg.alert_threshold);
        // ...but weak rules need corroboration.
        assert!(cfg.w_burst < cfg.alert_threshold);
        assert!(cfg.w_repetition < cfg.alert_threshold);
    }

    #[test]
    fn without_zeroes_exactly_one_rule() {
        let base = ArcaneConfig::default();
        for rule in ArcaneConfig::RULES {
            let cfg = base.without(rule);
            let weights = |c: &ArcaneConfig| {
                [
                    c.w_tool_agent,
                    c.w_nonbrowsing_method,
                    c.w_probe_path,
                    c.w_asset_starvation,
                    c.w_beacon_anomaly,
                    c.w_burst,
                    c.w_sustained_rate,
                    c.w_error_ratio,
                    c.w_bad_requests,
                    c.w_repetition,
                    c.w_robots_fetch,
                    c.w_no_referrer,
                ]
            };
            let changed = weights(&base)
                .iter()
                .zip(weights(&cfg))
                .filter(|(a, b)| **a != *b)
                .count();
            assert_eq!(changed, 1, "{rule}");
        }
    }

    #[test]
    #[should_panic]
    fn without_rejects_unknown_rules() {
        let _ = ArcaneConfig::default().without("clairvoyance");
    }
}
