//! **Arcane** — the in-house-style behavioural detector.
//!
//! The reproduction's stand-in for Amadeus's in-house tool of the same name.
//! Where [`Sentinel`](crate::Sentinel) leans on *identity* (signatures,
//! reputation, challenges), Arcane leans on *behaviour*: it sessionizes the
//! log and scores each session against a set of weighted heuristics — tool
//! user agents, asset starvation, machine pacing, error and beacon
//! anomalies, probing, repetition. A request alerts when its session's
//! score reaches the threshold.
//!
//! The two designs fail differently, which is precisely the diversity the
//! paper measures: Arcane needs a dozen requests of behavioural evidence
//! before it can condemn a session (its misses are warm-up and low-and-slow
//! clients), while Sentinel's identity checks are instant but blind to
//! clean-looking automation.

mod config;

pub use config::ArcaneConfig;

use std::collections::BTreeMap;

use divscrape_httplog::{AgentFamily, EntryRef, EntryView, LogEntry};

use crate::session::{SessionFeatures, Sessionizer, SessionizerConfig};
use crate::{Detector, Verdict};

/// Partner clients present this agent prefix (from the API contract).
const PARTNER_UA_PREFIX: &str = "FareConnect-Partner-Client";

/// The Arcane detector: the in-house-style behavioural tool —
/// sessionization plus weighted heuristics over each session's conduct.
///
/// ```
/// use divscrape_detect::{run_alerts, Arcane, Detector};
/// use divscrape_traffic::{generate, ScenarioConfig};
///
/// let log = generate(&ScenarioConfig::tiny(7))?;
/// let mut arcane = Arcane::stock();
/// let alerts = run_alerts(&mut arcane, log.entries());
/// assert_eq!(alerts.len(), log.len());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Arcane {
    cfg: ArcaneConfig,
    sessions: Sessionizer,
    hit_counts: [u64; RULE_COUNT],
}

impl Arcane {
    /// Arcane with default rules and a 30-minute session timeout.
    ///
    /// Per-client state is the sessionizer's table; installing an
    /// eviction policy with a TTL of at least the 30-minute idle timeout
    /// (via [`Detector::set_eviction`]) bounds it without changing any
    /// verdict — an evicted client's session would have restarted on
    /// return anyway.
    pub fn stock() -> Self {
        Self::new(ArcaneConfig::default())
    }

    /// Arcane with explicit configuration.
    pub fn new(cfg: ArcaneConfig) -> Self {
        Self {
            cfg,
            sessions: Sessionizer::new(SessionizerConfig::default()),
            hit_counts: [0; RULE_COUNT],
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ArcaneConfig {
        &self.cfg
    }

    /// Requests on which each rule contributed score, since construction or
    /// [`reset`](Detector::reset). Rules that never fired are absent.
    ///
    /// Built on demand: the hot path tallies into a fixed per-rule
    /// counter array (indexed by rule-name position), not a map.
    pub fn rule_hits(&self) -> BTreeMap<&'static str, u64> {
        RULE_NAMES
            .iter()
            .zip(self.hit_counts)
            .filter(|&(_, count)| count > 0)
            .map(|(&name, count)| (name, count))
            .collect()
    }

    fn is_whitelisted<E: EntryView>(&self, entry: &E) -> bool {
        if !self.cfg.enable_whitelist {
            return false;
        }
        // The in-house tool trusts identity alone (it has no address
        // intelligence) — a deliberate design difference from Sentinel.
        matches!(
            entry.agent_family(),
            AgentFamily::KnownCrawler | AgentFamily::Monitor
        ) || entry.ua_str().starts_with(PARTNER_UA_PREFIX)
    }

    /// The batch engine shared by the owned and borrowed batch paths —
    /// generic over [`EntryView`], so both produce identical verdicts by
    /// construction. Whitelisting, the key hash and the agent-family
    /// classification are identity-derived: once per client run.
    fn batch_core<E: EntryView>(&mut self, entries: &[E], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        for run in crate::detector::client_runs(entries) {
            let first = &run[0];

            if self.is_whitelisted(first) {
                out.extend(std::iter::repeat_n(Verdict::CLEAR, run.len()));
                continue;
            }
            let key = first.client_key();
            let family = first.agent_family();

            for entry in run {
                let features = self.sessions.observe_with_key(key, entry);
                let (score, hits) = Self::score(&self.cfg, features, family);
                let alert = score >= self.cfg.alert_threshold;
                if alert {
                    for rule in hits.iter() {
                        self.hit_counts[rule] += 1;
                    }
                }
                out.push(Verdict::new(alert, score as f32));
            }
        }
    }

    /// Scores the session this entry belongs to (after incorporating it).
    ///
    /// `family` is the entry's user-agent family — client-constant, so the
    /// batch path classifies it once per client run.
    fn score(cfg: &ArcaneConfig, f: &SessionFeatures, family: AgentFamily) -> (u32, RuleHits) {
        let mut score = 0u32;
        let mut hits = RuleHits::default();
        let mut apply = |w: u32, rule: usize, cond: bool| {
            if w > 0 && cond {
                score += w;
                hits.set(rule);
            }
        };

        apply(
            cfg.w_tool_agent,
            0, // tool_agent
            matches!(family, AgentFamily::HttpTool | AgentFamily::Empty),
        );
        apply(
            cfg.w_nonbrowsing_method,
            1, // nonbrowsing_method
            f.nonbrowsing_methods > 0,
        );
        apply(
            cfg.w_probe_path,
            2, // probe_path
            f.probes > 0,
        );
        apply(
            cfg.w_asset_starvation,
            3, // asset_starvation
            f.pages >= cfg.starvation_min_pages && f.assets == 0,
        );
        apply(
            cfg.w_beacon_anomaly,
            4, // beacon_anomaly
            f.requests >= cfg.beacon_min_requests
                && f.no_content >= cfg.beacon_min_count
                && f.no_content_ratio() >= cfg.beacon_min_ratio,
        );
        apply(
            cfg.w_burst,
            5, // burst
            f.current_burst() >= cfg.burst_threshold,
        );
        apply(
            cfg.w_sustained_rate,
            6, // sustained_rate
            f.requests >= cfg.sustained_min_requests && f.mean_gap_secs() < cfg.sustained_gap_secs,
        );
        apply(
            cfg.w_error_ratio,
            7, // error_ratio
            f.requests >= cfg.error_min_requests && f.error_ratio() >= cfg.error_ratio_threshold,
        );
        apply(
            cfg.w_bad_requests,
            8, // bad_requests
            f.bad_requests >= cfg.bad_request_min,
        );
        apply(
            cfg.w_repetition,
            9, // repetition
            f.offer_hits >= cfg.repetition_min_offers,
        );
        apply(
            cfg.w_robots_fetch,
            10, // robots_fetch
            f.robots_fetches > 0 && family != AgentFamily::KnownCrawler,
        );
        apply(
            cfg.w_no_referrer,
            11, // no_referrer
            f.requests >= cfg.referrer_min_requests && f.referrer_ratio() < cfg.referrer_max_ratio,
        );
        (score, hits)
    }
}

/// The rules one entry tripped, as a bitmask over rule ids (indices
/// into [`RULE_NAMES`]). `score` runs once per entry on the hot path,
/// so this must not heap-allocate.
#[derive(Debug, Clone, Copy, Default)]
struct RuleHits(u16);

/// How many weighted rules `score` can trip for a single entry.
const RULE_COUNT: usize = 12;

/// Display names for the rules, indexed by the rule ids `score` uses.
const RULE_NAMES: [&str; RULE_COUNT] = [
    "tool_agent",
    "nonbrowsing_method",
    "probe_path",
    "asset_starvation",
    "beacon_anomaly",
    "burst",
    "sustained_rate",
    "error_ratio",
    "bad_requests",
    "repetition",
    "robots_fetch",
    "no_referrer",
];

impl RuleHits {
    fn set(&mut self, rule: usize) {
        self.0 |= 1 << rule;
    }

    fn iter(self) -> impl Iterator<Item = usize> {
        (0..RULE_COUNT).filter(move |rule| self.0 & (1 << rule) != 0)
    }
}

impl Detector for Arcane {
    fn name(&self) -> &str {
        "arcane"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        if self.is_whitelisted(entry) {
            return Verdict::CLEAR;
        }
        let family = entry.user_agent().family();
        let features = self.sessions.observe(entry);
        let (score, hits) = Self::score(&self.cfg, features, family);
        let alert = score >= self.cfg.alert_threshold;
        if alert {
            for rule in hits.iter() {
                self.hit_counts[rule] += 1;
            }
        }
        Verdict::new(alert, score as f32)
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        self.batch_core(entries, out);
    }

    fn observe_batch_refs(&mut self, entries: &[EntryRef<'_>], out: &mut Vec<Verdict>) {
        self.batch_core(entries, out);
    }

    fn reset(&mut self) {
        self.sessions.reset();
        self.hit_counts = [0; RULE_COUNT];
    }

    fn set_eviction(&mut self, cfg: crate::EvictionConfig) {
        self.sessions.set_eviction(cfg);
    }

    fn eviction_stats(&self) -> crate::EvictionStats {
        self.sessions.eviction_stats()
    }
}

impl Default for Arcane {
    fn default() -> Self {
        Self::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::run_alerts;
    use divscrape_httplog::{ClfTimestamp, HttpStatus};
    use std::net::Ipv4Addr;

    const BROWSER: &str =
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36";

    fn entry(secs: i64, path: &str, status: u16, ua: &str) -> LogEntry {
        LogEntry::builder()
            .addr(Ipv4Addr::new(81, 2, 10, 20))
            .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
            .request(format!("GET {path} HTTP/1.1").parse().unwrap())
            .status(HttpStatus::new(status).unwrap())
            .bytes(Some(1000))
            .user_agent(ua)
            .build()
            .unwrap()
    }

    #[test]
    fn tool_agents_alert_from_the_first_request() {
        let mut a = Arcane::stock();
        let v = a.observe(&entry(0, "/search?q=x", 200, "python-requests/2.18.4"));
        assert!(v.alert);
        assert!(a.rule_hits().contains_key("tool_agent"));
    }

    #[test]
    fn asset_starvation_trips_after_a_dozen_bare_pages() {
        let mut a = Arcane::stock();
        let mut tripped_at = None;
        for i in 0..20 {
            // Slow enough that rate rules stay silent.
            let v = a.observe(&entry(i * 30, &format!("/offers/{i}"), 200, BROWSER));
            if v.alert && tripped_at.is_none() {
                tripped_at = Some(i + 1);
            }
        }
        assert_eq!(tripped_at, Some(12));
        assert!(a.rule_hits().contains_key("asset_starvation"));
    }

    #[test]
    fn asset_fetching_clients_do_not_starve() {
        let mut a = Arcane::stock();
        for i in 0..30 {
            let v = a.observe(&entry(i * 60, &format!("/offers/{i}"), 200, BROWSER));
            assert!(!v.alert, "page {i}");
            let v = a.observe(&entry(i * 60 + 2, "/static/css/main.css", 200, BROWSER));
            assert!(!v.alert);
        }
    }

    #[test]
    fn beacon_anomaly_catches_scanner_like_polling() {
        let mut a = Arcane::stock();
        let mut alerted = false;
        for i in 0..40 {
            // Every 8th request is a 204 beacon; the rest are pages with an
            // asset each (so starvation can't be the trigger).
            let (path, status) = if i % 8 == 0 {
                ("/api/v1/changes?route=NCE-LHR".to_owned(), 204)
            } else if i % 2 == 0 {
                (format!("/offers/{i}"), 200)
            } else {
                ("/static/css/main.css".to_owned(), 200)
            };
            alerted |= a.observe(&entry(i * 20, &path, status, BROWSER)).alert;
        }
        assert!(alerted, "beacon anomaly should trip");
        assert!(a.rule_hits().contains_key("beacon_anomaly"));
    }

    #[test]
    fn burst_plus_sustained_rate_catch_fast_sessions() {
        let mut a = Arcane::stock();
        let mut alerted_at = None;
        for i in 0..80 {
            // One request per second, pages with assets mixed in so only
            // the pacing rules can fire.
            let path = if i % 2 == 0 {
                format!("/offers/{i}")
            } else {
                "/static/img/hero.jpg".to_owned()
            };
            let v = a.observe(&entry(i, &path, 200, BROWSER));
            if v.alert && alerted_at.is_none() {
                alerted_at = Some(i);
            }
        }
        // Burst (+2) alone is below threshold; the referrer-absence rule
        // (+1) corroborates once 15 requests have accumulated, so the trip
        // lands when the 60 s window first holds 25 requests.
        let at = alerted_at.expect("pacing rules should trip");
        assert!((20..=40).contains(&at), "tripped at {at}");
    }

    #[test]
    fn probe_paths_alert_immediately() {
        let mut a = Arcane::stock();
        let v = a.observe(&entry(0, "/wp-admin/setup.php", 404, BROWSER));
        assert!(v.alert);
        assert!(a.rule_hits().contains_key("probe_path"));
    }

    #[test]
    fn whitelisted_operators_never_alert() {
        use divscrape_traffic::useragents::{GOOGLEBOT, PARTNER_AGGREGATOR, PINGDOM};
        let mut a = Arcane::stock();
        for (i, ua) in [GOOGLEBOT, PINGDOM, PARTNER_AGGREGATOR].iter().enumerate() {
            for j in 0..30 {
                let v = a.observe(&entry(
                    (i as i64) * 10_000 + j,
                    &format!("/offers/{j}"),
                    200,
                    ua,
                ));
                assert!(!v.alert, "{ua} alerted");
            }
        }
    }

    #[test]
    fn slow_human_like_sessions_stay_clean() {
        let mut a = Arcane::stock();
        for i in 0..15 {
            let base = i * 45;
            let v = a.observe(&entry(base, &format!("/offers/{i}"), 200, BROWSER));
            assert!(!v.alert, "page {i} alerted");
            for j in 0..3 {
                let asset = [
                    "/static/css/main.css",
                    "/static/js/app.js",
                    "/static/img/x.jpg",
                ][j];
                let v = a.observe(&entry(base + 1 + j as i64, asset, 200, BROWSER));
                assert!(!v.alert);
            }
        }
    }

    #[test]
    fn session_timeout_resets_the_score() {
        let mut a = Arcane::stock();
        for i in 0..12 {
            a.observe(&entry(i * 30, &format!("/offers/{i}"), 200, BROWSER));
        }
        // Next request far beyond the 30-minute timeout: fresh session.
        let v = a.observe(&entry(12 * 30 + 7_200, "/offers/99", 200, BROWSER));
        assert!(!v.alert, "new session inherited stale score");
    }

    #[test]
    fn ablation_removes_a_rules_contribution() {
        let cfg = ArcaneConfig::default().without("asset_starvation");
        let mut a = Arcane::new(cfg);
        for i in 0..25 {
            let v = a.observe(&entry(i * 30, &format!("/offers/{i}"), 200, BROWSER));
            assert!(!v.alert, "alerted at {i} without the starvation rule");
        }
    }

    #[test]
    fn alerts_heavily_on_synthetic_bot_traffic() {
        use divscrape_traffic::{generate, ScenarioConfig};
        let log = generate(&ScenarioConfig::small(5)).unwrap();
        let mut a = Arcane::stock();
        let alerts = run_alerts(&mut a, log.entries());
        let rate = alerts.iter().filter(|x| **x).count() as f64 / alerts.len() as f64;
        assert!((0.65..0.95).contains(&rate), "alert rate {rate}");
    }
}
