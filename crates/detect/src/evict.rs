//! Per-client state eviction: TTL and LRU-capacity bounds for detector
//! state tables.
//!
//! Every stock detector keeps evidence *per client* (address + user-agent
//! fingerprint): Sentinel's session counters and violator cache, Arcane's
//! sessionizer, the rate limiter's sliding windows, the honeytrap's caught
//! set. On a long-running stream those tables grow with the number of
//! distinct clients ever seen — unbounded on real traffic. This module
//! provides the bounded replacement, [`ClientStateTable`]: a hash map with
//! an intrusive LRU list and two eviction policies configured through
//! [`EvictionConfig`]:
//!
//! * **TTL** — a client idle longer than `ttl_secs` (measured in *log
//!   time*, the entry timestamps) is dropped. This is the
//!   session-timeout semantics of the web-robot-detection literature: an
//!   evicted client that returns is a fresh session. With a TTL at least
//!   as long as a detector's own session-idle timeout, eviction is
//!   verdict-preserving for session-scoped state (the detector would have
//!   restarted the session anyway).
//! * **LRU capacity** — the table never holds more than `max_clients`
//!   entries; inserting beyond that evicts the least-recently-seen
//!   client. This is the hard memory bound; it can evict a still-active
//!   client, so it trades recall on very-long-horizon evidence (e.g.
//!   Sentinel's violator cache) for bounded memory.
//!
//! Eviction is **off by default** ([`EvictionConfig::DISABLED`]), in
//! which case the table behaves exactly like the `HashMap` it replaces
//! and detector output is bit-identical to the unbounded implementation.
//!
//! Expiry is *lazy and access-driven*: entries are only reaped when the
//! table is touched, from the least-recent end of the LRU list. Because
//! detectors feed entries in timestamp order, recency order equals
//! idle-time order and the tail scan removes exactly the expired clients.

use std::collections::HashMap;
use std::hash::Hash;

use crate::session::ClientKey;
use crate::tenant::TenantClientKey;

/// Eviction policy for a [`ClientStateTable`]. Both knobs are optional
/// and independent; the default ([`DISABLED`](Self::DISABLED)) keeps
/// every client forever, exactly like a plain map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictionConfig {
    /// Drop a client after this many seconds of inactivity (log time).
    /// Negative values are treated as 0 (expire on the first idle
    /// second — every touch reaps all other clients' state). `None`
    /// disables TTL eviction.
    pub ttl_secs: Option<i64>,
    /// Hard cap on tracked clients; inserting past it evicts the
    /// least-recently-seen client. Values below 1 are treated as 1.
    /// `None` disables capacity eviction.
    pub max_clients: Option<usize>,
}

impl EvictionConfig {
    /// No eviction: tables grow without bound (the pre-eviction
    /// behaviour, and the default).
    pub const DISABLED: EvictionConfig = EvictionConfig {
        ttl_secs: None,
        max_clients: None,
    };

    /// TTL-only eviction.
    pub fn ttl(secs: i64) -> Self {
        EvictionConfig {
            ttl_secs: Some(secs),
            max_clients: None,
        }
    }

    /// Capacity-only (LRU) eviction.
    pub fn capacity(max_clients: usize) -> Self {
        EvictionConfig {
            ttl_secs: None,
            max_clients: Some(max_clients),
        }
    }

    /// Adds a TTL bound to this policy.
    pub fn with_ttl(mut self, secs: i64) -> Self {
        self.ttl_secs = Some(secs);
        self
    }

    /// Adds a capacity bound to this policy.
    pub fn with_capacity(mut self, max_clients: usize) -> Self {
        self.max_clients = Some(max_clients);
        self
    }

    /// Whether this policy never evicts anything.
    pub fn is_disabled(&self) -> bool {
        self.ttl_secs.is_none() && self.max_clients.is_none()
    }
}

/// A snapshot of a detector's client-state footprint, aggregated by
/// [`Detector::eviction_stats`](crate::Detector::eviction_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionStats {
    /// Occupancy of the detector's largest per-client table. This is the
    /// number the capacity bound caps: with `max_clients = C`, no single
    /// table — and therefore `live_clients` — ever exceeds `C`.
    pub live_clients: usize,
    /// Total clients evicted (TTL + capacity) across all tables since
    /// construction or reset.
    pub evicted_clients: u64,
}

impl EvictionStats {
    /// Combines snapshots from several tables or detectors: table
    /// occupancies take the max (the capacity bound is per table),
    /// eviction counts add.
    pub fn merge(self, other: EvictionStats) -> EvictionStats {
        EvictionStats {
            live_clients: self.live_clients.max(other.live_clients),
            evicted_clients: self.evicted_clients + other.evicted_clients,
        }
    }

    /// [`merge`](Self::merge)s any number of snapshots (zero yields the
    /// all-zero default).
    pub fn merge_all(stats: impl IntoIterator<Item = EvictionStats>) -> EvictionStats {
        stats
            .into_iter()
            .fold(EvictionStats::default(), |acc, s| acc.merge(s))
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Log-time of the client's most recent touch.
    last_seen: i64,
    prev: usize,
    next: usize,
}

/// The classic single-tenant table: keyed by bare client identity
/// (address + user-agent fingerprint). What every stock detector uses
/// for its own per-client state.
pub type ClientStateTable<V> = StateTable<ClientKey, V>;

/// A table shared across tenants: keyed by
/// [`TenantClientKey`], so the same client
/// identity observed by two tenants occupies two independent entries and
/// one tenant's churn can never evict another tenant's evidence through
/// key collision (the *capacity* of a shared table is still shared — a
/// multi-tenant deployment that needs hard isolation gives each tenant
/// its own tables, as the pipeline hub does).
pub type TenantStateTable<V> = StateTable<TenantClientKey, V>;

/// A keyed state map with optional TTL and LRU-capacity eviction.
///
/// Semantically a `HashMap<K, V>` whose entries are touched with the
/// current log time; see the [module docs](self) for the eviction model.
/// All operations are O(1) (amortized): the LRU order lives in an
/// intrusive doubly-linked list threaded through a slot arena.
///
/// The key type is generic so the same machinery serves single-tenant
/// detectors ([`ClientStateTable`], keyed by [`ClientKey`]) and shared
/// multi-tenant state ([`TenantStateTable`], keyed by tenant-scoped
/// client identity).
///
/// ```
/// use divscrape_detect::{ClientStateTable, EvictionConfig};
/// use std::net::Ipv4Addr;
///
/// let mut table: ClientStateTable<u32> =
///     ClientStateTable::new(EvictionConfig::capacity(2));
/// let key = |n: u8| (Ipv4Addr::new(10, 0, 0, n), 0u64);
///
/// *table.upsert_with(key(1), 0, || 0).0 += 1;
/// *table.upsert_with(key(2), 1, || 0).0 += 1;
/// *table.upsert_with(key(3), 2, || 0).0 += 1; // evicts client 1 (LRU)
/// assert_eq!(table.len(), 2);
/// assert!(table.get(&key(1)).is_none());
/// assert_eq!(table.evicted_capacity(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StateTable<K, V> {
    cfg: EvictionConfig,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most-recently-seen slot.
    head: usize,
    /// Least-recently-seen slot — the eviction end.
    tail: usize,
    evicted_ttl: u64,
    evicted_capacity: u64,
}

impl<K: Eq + Hash + Clone, V> Default for StateTable<K, V> {
    fn default() -> Self {
        Self::new(EvictionConfig::DISABLED)
    }
}

impl<K: Eq + Hash + Clone, V> StateTable<K, V> {
    /// An empty table with the given eviction policy.
    pub fn new(cfg: EvictionConfig) -> Self {
        Self {
            cfg,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evicted_ttl: 0,
            evicted_capacity: 0,
        }
    }

    /// The active eviction policy.
    pub fn config(&self) -> EvictionConfig {
        self.cfg
    }

    /// Replaces the eviction policy. Existing entries are kept; the new
    /// bounds apply from the next touch.
    pub fn set_config(&mut self, cfg: EvictionConfig) {
        self.cfg = cfg;
    }

    /// Number of tracked clients.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Clients dropped by the TTL policy so far.
    pub fn evicted_ttl(&self) -> u64 {
        self.evicted_ttl
    }

    /// Clients dropped by the capacity policy so far.
    pub fn evicted_capacity(&self) -> u64 {
        self.evicted_capacity
    }

    /// Total clients evicted so far (TTL + capacity).
    pub fn evicted(&self) -> u64 {
        self.evicted_ttl + self.evicted_capacity
    }

    /// Occupancy and eviction counters as a mergeable snapshot.
    pub fn stats(&self) -> EvictionStats {
        EvictionStats {
            live_clients: self.len(),
            evicted_clients: self.evicted(),
        }
    }

    /// Non-touching read: the client's state, if tracked. Does not
    /// refresh recency and does not reap expired entries (an expired but
    /// not-yet-reaped entry is still returned); detector hot paths use
    /// the touching accessors instead.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slots[i].value)
    }

    /// Drops all entries and zeroes the eviction counters. The policy is
    /// kept.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.evicted_ttl = 0;
        self.evicted_capacity = 0;
    }

    /// Touches the client at log time `now`: reaps expired entries,
    /// returns the client's state (inserting `init()` if absent, or if
    /// the previous state was just reaped), refreshes its recency, and
    /// enforces the capacity bound. The second component is `true` when
    /// the client was already tracked (and not expired).
    pub fn upsert_with(&mut self, key: K, now: i64, init: impl FnOnce() -> V) -> (&mut V, bool) {
        self.expire(now);
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].last_seen = now;
            self.move_to_head(i);
            return (&mut self.slots[i].value, true);
        }
        let i = self.insert_slot(key, now, init());
        self.enforce_capacity();
        (&mut self.slots[i].value, false)
    }

    /// Touches the client at log time `now` only if it is tracked and
    /// unexpired: reaps expired entries, and on a hit refreshes the
    /// client's recency and returns its state. Never inserts.
    pub fn get_refresh(&mut self, key: &K, now: i64) -> Option<&mut V> {
        self.expire(now);
        let &i = self.map.get(key)?;
        self.slots[i].last_seen = now;
        self.move_to_head(i);
        Some(&mut self.slots[i].value)
    }

    /// Inserts or replaces the client's state at log time `now`,
    /// refreshing recency and enforcing the bounds.
    pub fn insert(&mut self, key: K, now: i64, value: V) {
        self.expire(now);
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.slots[i].last_seen = now;
            self.move_to_head(i);
            return;
        }
        self.insert_slot(key, now, value);
        self.enforce_capacity();
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, &i)| (k, &self.slots[i].value))
    }

    /// Reaps every entry idle longer than the TTL at log time `now`.
    /// Recency order equals last-seen order (streams are fed in
    /// timestamp order), so scanning from the tail visits exactly the
    /// expired entries.
    fn expire(&mut self, now: i64) {
        let Some(ttl) = self.cfg.ttl_secs else {
            return;
        };
        let ttl = ttl.max(0);
        while self.tail != NIL && now.saturating_sub(self.slots[self.tail].last_seen) > ttl {
            self.evict_tail();
            self.evicted_ttl += 1;
        }
    }

    /// Evicts least-recently-seen clients until the capacity bound
    /// holds.
    fn enforce_capacity(&mut self) {
        let Some(cap) = self.cfg.max_clients else {
            return;
        };
        let cap = cap.max(1);
        while self.map.len() > cap {
            self.evict_tail();
            self.evicted_capacity += 1;
        }
    }

    fn evict_tail(&mut self) {
        let i = self.tail;
        debug_assert_ne!(i, NIL);
        self.map.remove(&self.slots[i].key);
        self.unlink(i);
        self.free.push(i);
    }

    fn insert_slot(&mut self, key: K, now: i64, value: V) -> usize {
        let i = if let Some(i) = self.free.pop() {
            self.slots[i] = Slot {
                key: key.clone(),
                value,
                last_seen: now,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                last_seen: now,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, i);
        self.link_head(i);
        i
    }

    fn link_head(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = NIL;
    }

    fn move_to_head(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.link_head(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(n: u8) -> ClientKey {
        (Ipv4Addr::new(10, 0, 0, n), 0)
    }

    #[test]
    fn disabled_config_never_evicts() {
        let mut t: ClientStateTable<u32> = ClientStateTable::new(EvictionConfig::DISABLED);
        for n in 0..200u8 {
            t.upsert_with(key(n), i64::from(n) * 10_000, || u32::from(n));
        }
        assert_eq!(t.len(), 200);
        assert_eq!(t.evicted(), 0);
        assert_eq!(t.get(&key(0)), Some(&0));
    }

    #[test]
    fn ttl_reaps_idle_clients_and_returning_clients_start_fresh() {
        let mut t: ClientStateTable<u32> = ClientStateTable::new(EvictionConfig::ttl(100));
        t.upsert_with(key(1), 0, || 7);
        // Within the TTL: still tracked, state preserved.
        let (v, existed) = t.upsert_with(key(1), 100, || 0);
        assert!(existed);
        assert_eq!(*v, 7);
        // Another client's touch past the TTL reaps client 1 lazily.
        t.upsert_with(key(2), 300, || 0);
        assert!(t.get(&key(1)).is_none());
        assert_eq!(t.evicted_ttl(), 1);
        // The returning client is fresh.
        let (v, existed) = t.upsert_with(key(1), 301, || 99);
        assert!(!existed);
        assert_eq!(*v, 99);
    }

    #[test]
    fn capacity_bound_holds_and_evicts_lru() {
        let mut t: ClientStateTable<u32> = ClientStateTable::new(EvictionConfig::capacity(3));
        for n in 1..=3u8 {
            t.upsert_with(key(n), i64::from(n), || u32::from(n));
        }
        // Touch client 1 so client 2 becomes the LRU.
        t.upsert_with(key(1), 4, || 0);
        t.upsert_with(key(4), 5, || 4);
        assert_eq!(t.len(), 3);
        assert!(t.get(&key(2)).is_none(), "LRU client should be evicted");
        assert!(t.get(&key(1)).is_some());
        assert_eq!(t.evicted_capacity(), 1);
        // The bound holds under sustained churn.
        for n in 10..250u64 {
            t.upsert_with((Ipv4Addr::new(10, 1, 0, (n % 250) as u8), n), 100, || 0);
            assert!(t.len() <= 3);
        }
    }

    #[test]
    fn get_refresh_touches_without_inserting() {
        let mut t: ClientStateTable<u32> = ClientStateTable::new(EvictionConfig::capacity(2));
        assert!(t.get_refresh(&key(1), 0).is_none());
        assert!(t.is_empty());
        t.upsert_with(key(1), 0, || 1);
        t.upsert_with(key(2), 1, || 2);
        // Refreshing client 1 protects it from the next capacity eviction.
        assert_eq!(t.get_refresh(&key(1), 2), Some(&mut 1));
        t.upsert_with(key(3), 3, || 3);
        assert!(t.get(&key(1)).is_some());
        assert!(t.get(&key(2)).is_none());
    }

    #[test]
    fn clear_resets_counters_and_reuses_slots() {
        let mut t: ClientStateTable<u32> = ClientStateTable::new(EvictionConfig::capacity(2));
        for n in 1..10u8 {
            t.upsert_with(key(n), i64::from(n), || 0);
        }
        assert!(t.evicted() > 0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.evicted(), 0);
        t.upsert_with(key(1), 0, || 5);
        assert_eq!(t.get(&key(1)), Some(&5));
    }

    #[test]
    fn stats_merge_takes_max_occupancy_and_sums_evictions() {
        let a = EvictionStats {
            live_clients: 10,
            evicted_clients: 3,
        };
        let b = EvictionStats {
            live_clients: 7,
            evicted_clients: 5,
        };
        let m = a.merge(b);
        assert_eq!(m.live_clients, 10);
        assert_eq!(m.evicted_clients, 8);
    }

    #[test]
    fn combined_ttl_and_capacity_apply_together() {
        let cfg = EvictionConfig::ttl(50).with_capacity(2);
        assert!(!cfg.is_disabled());
        let mut t: ClientStateTable<u32> = ClientStateTable::new(cfg);
        t.upsert_with(key(1), 0, || 0);
        t.upsert_with(key(2), 10, || 0);
        t.upsert_with(key(3), 20, || 0); // capacity evicts 1
        assert_eq!(t.evicted_capacity(), 1);
        t.upsert_with(key(4), 200, || 0); // TTL reaps 2 and 3
        assert_eq!(t.evicted_ttl(), 2);
        assert_eq!(t.len(), 1);
    }
}
