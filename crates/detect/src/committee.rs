//! A streaming committee of detectors.
//!
//! [`Committee`] wraps N heterogeneous detectors behind the single
//! [`Detector`] interface and adjudicates **online**: every request gets
//! each member's verdict and the committee alerts when at least `k` members
//! do. This is the deployable form of the paper's adjudication schemes —
//! unlike the offline [`KOutOfN`](divscrape_ensemble::KOutOfN) analysis, a
//! committee can sit in a real pipeline and also exposes each member's
//! contribution for the exclusive-alert investigation.

use divscrape_httplog::{EntryRef, LogEntry};

use crate::{Detector, Verdict};

/// A k-out-of-n committee over boxed detectors.
///
/// ```
/// use divscrape_detect::{Arcane, Committee, Detector, Sentinel};
/// use divscrape_traffic::{generate, ScenarioConfig};
///
/// let log = generate(&ScenarioConfig::tiny(1))?;
/// let mut committee = Committee::new(
///     vec![Box::new(Sentinel::stock()), Box::new(Arcane::stock())],
///     2, // unanimity
/// ).unwrap();
/// let verdict = committee.observe(&log.entries()[0]);
/// assert!(verdict.score >= 0.0);
/// # Ok::<(), String>(())
/// ```
pub struct Committee {
    members: Vec<Box<dyn Detector + Send>>,
    k: usize,
    member_alerts: Vec<u64>,
    requests_seen: u64,
}

impl std::fmt::Debug for Committee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Committee")
            .field("members", &self.member_names())
            .field("k", &self.k)
            .field("requests_seen", &self.requests_seen)
            .finish()
    }
}

impl Committee {
    /// Creates a committee requiring `k` of the members to alert.
    ///
    /// Returns `None` when `members` is empty or `k` is not in
    /// `1..=members.len()`.
    pub fn new(members: Vec<Box<dyn Detector + Send>>, k: usize) -> Option<Self> {
        if members.is_empty() || k == 0 || k > members.len() {
            return None;
        }
        let n = members.len();
        Some(Self {
            members,
            k,
            member_alerts: vec![0; n],
            requests_seen: 0,
        })
    }

    /// The paper's two-tool pair as a committee: Sentinel + Arcane with the
    /// given vote requirement (1 = either, 2 = both).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not 1 or 2.
    pub fn stock_pair(k: usize) -> Self {
        Self::new(
            vec![
                Box::new(crate::Sentinel::stock()),
                Box::new(crate::Arcane::stock()),
            ],
            k,
        )
        .expect("k must be 1 or 2 for the stock pair")
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Required votes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The member names, in vote order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name()).collect()
    }

    /// Per-member alert counts since construction or reset, aligned with
    /// [`member_names`](Self::member_names).
    pub fn member_alert_counts(&self) -> &[u64] {
        &self.member_alerts
    }

    /// Requests observed so far.
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }
}

impl Committee {
    /// Folds one batch through every member: `feed` hands the batch to a
    /// member (owned or borrowed form), and the member columns are folded
    /// into k-out-of-n committee votes.
    fn fold_batch(
        &mut self,
        len: usize,
        out: &mut Vec<Verdict>,
        mut feed: impl FnMut(&mut Box<dyn Detector + Send>, &mut Vec<Verdict>),
    ) {
        self.requests_seen += len as u64;
        let mut votes = vec![0u32; len];
        let mut buf = Vec::with_capacity(len);
        for (i, member) in self.members.iter_mut().enumerate() {
            buf.clear();
            feed(member, &mut buf);
            debug_assert_eq!(buf.len(), len, "member verdict count");
            for (votes, v) in votes.iter_mut().zip(&buf) {
                if v.alert {
                    *votes += 1;
                    self.member_alerts[i] += 1;
                }
            }
        }
        let n = self.members.len() as f32;
        out.reserve(len);
        out.extend(
            votes
                .into_iter()
                .map(|v| Verdict::new(v as usize >= self.k, v as f32 / n)),
        );
    }
}

impl Detector for Committee {
    fn name(&self) -> &str {
        "committee"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        self.requests_seen += 1;
        let mut votes = 0usize;
        let mut score_sum = 0.0f32;
        for (i, member) in self.members.iter_mut().enumerate() {
            let v = member.observe(entry);
            if v.alert {
                votes += 1;
                self.member_alerts[i] += 1;
            }
            score_sum += f32::from(u8::from(v.alert));
        }
        // Score: fraction of members alerting — a natural committee score
        // for ROC sweeps over k.
        Verdict::new(votes >= self.k, score_sum / self.members.len() as f32)
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        // Hand the whole batch to each member so their own batch fast
        // paths apply, then fold the member columns into committee votes.
        // Members only ever see entries in log order, so this is
        // verdict-identical to the per-entry path.
        self.fold_batch(entries.len(), out, |member, buf| {
            member.observe_batch(entries, buf)
        });
    }

    fn observe_batch_refs(&mut self, entries: &[EntryRef<'_>], out: &mut Vec<Verdict>) {
        // The borrowed twin: each member gets the refs batch, so members
        // with a zero-copy path keep it under adjudication.
        self.fold_batch(entries.len(), out, |member, buf| {
            member.observe_batch_refs(entries, buf)
        });
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
        self.member_alerts.iter_mut().for_each(|c| *c = 0);
        self.requests_seen = 0;
    }

    fn set_eviction(&mut self, cfg: crate::EvictionConfig) {
        for m in &mut self.members {
            m.set_eviction(cfg);
        }
    }

    fn eviction_stats(&self) -> crate::EvictionStats {
        crate::EvictionStats::merge_all(self.members.iter().map(|m| m.eviction_stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::run_alerts;
    use crate::{Arcane, Sentinel};
    use divscrape_traffic::{generate, ScenarioConfig};

    #[test]
    fn construction_validates_k() {
        assert!(Committee::new(vec![], 1).is_none());
        assert!(Committee::new(vec![Box::new(Sentinel::stock())], 0).is_none());
        assert!(Committee::new(vec![Box::new(Sentinel::stock())], 2).is_none());
        assert!(Committee::new(vec![Box::new(Sentinel::stock())], 1).is_some());
    }

    #[test]
    fn online_committee_matches_offline_adjudication() {
        let log = generate(&ScenarioConfig::small(71)).unwrap();
        let sentinel = run_alerts(&mut Sentinel::stock(), log.entries());
        let arcane = run_alerts(&mut Arcane::stock(), log.entries());

        for k in 1..=2usize {
            let mut committee = Committee::stock_pair(k);
            let online = run_alerts(&mut committee, log.entries());
            let offline: Vec<bool> = sentinel
                .iter()
                .zip(&arcane)
                .map(|(s, a)| (usize::from(*s) + usize::from(*a)) >= k)
                .collect();
            assert_eq!(online, offline, "k={k} diverged");
        }
    }

    #[test]
    fn member_accounting_matches_individual_runs() {
        let log = generate(&ScenarioConfig::tiny(72)).unwrap();
        let mut committee = Committee::stock_pair(1);
        let _ = run_alerts(&mut committee, log.entries());
        assert_eq!(committee.requests_seen(), log.len() as u64);
        let sentinel_alone = run_alerts(&mut Sentinel::stock(), log.entries())
            .iter()
            .filter(|a| **a)
            .count() as u64;
        assert_eq!(committee.member_alert_counts()[0], sentinel_alone);
        assert_eq!(committee.member_names(), vec!["sentinel", "arcane"]);
    }

    #[test]
    fn reset_propagates_to_members() {
        let log = generate(&ScenarioConfig::tiny(73)).unwrap();
        let mut committee = Committee::stock_pair(2);
        let first = run_alerts(&mut committee, log.entries());
        committee.reset();
        assert_eq!(committee.requests_seen(), 0);
        let second = run_alerts(&mut committee, log.entries());
        assert_eq!(first, second);
    }

    #[test]
    fn reset_clears_all_accounting_and_rewinds_members() {
        let log = generate(&ScenarioConfig::tiny(75)).unwrap();
        let mut committee = Committee::stock_pair(1);
        let first = run_alerts(&mut committee, log.entries());
        let counts_before = committee.member_alert_counts().to_vec();
        assert!(counts_before.iter().any(|c| *c > 0), "nothing alerted");
        assert_eq!(committee.requests_seen(), log.len() as u64);

        committee.reset();
        // Every counter back to zero...
        assert_eq!(committee.requests_seen(), 0);
        assert!(committee.member_alert_counts().iter().all(|c| *c == 0));

        // ...and the members' own state rewound: the re-run reproduces
        // both the verdicts and the per-member accounting exactly.
        let second = run_alerts(&mut committee, log.entries());
        assert_eq!(first, second);
        assert_eq!(committee.member_alert_counts(), counts_before.as_slice());
        assert_eq!(committee.requests_seen(), log.len() as u64);
    }

    #[test]
    fn committee_score_is_the_vote_fraction() {
        let log = generate(&ScenarioConfig::tiny(74)).unwrap();
        let mut committee = Committee::stock_pair(1);
        for e in log.entries().iter().take(200) {
            let v = committee.observe(e);
            assert!([0.0, 0.5, 1.0].contains(&v.score), "score {}", v.score);
        }
    }
}
