//! **Sentinel** — the commercial-style, multi-signal detector.
//!
//! This is the reproduction's stand-in for the Distil Networks product used
//! in the paper. Public descriptions of that product class list the signal
//! families implemented here:
//!
//! 1. **Signature** ([`SignatureEngine`]) — user-agent blocklist and browser
//!    fingerprint database.
//! 2. **Reputation** ([`ReputationFeed`]) — curated bad-address ranges.
//! 3. **Rate** — a per-client page/API request-rate monitor.
//! 4. **Challenge** — JavaScript-challenge emulation: a client that renders
//!    page after page without ever fetching a script asset can never have
//!    passed the injected challenge.
//! 5. **Known-violator cache** — once flagged, a client stays flagged; all
//!    its subsequent requests alert. This is why the paper sees the
//!    commercial tool alerting on 86.8% of *all* requests. (Bounded
//!    deployments can forget idle or least-recently-seen violators via
//!    [`Detector::set_eviction`](crate::Detector::set_eviction), trading
//!    this long-horizon memory for bounded tables.)
//! 6. **Verified-operator whitelist** — search crawlers, uptime monitors and
//!    contracted partners verified by identity *and* source range.

mod config;
mod reputation;
mod signature;

pub use config::SentinelConfig;
pub use reputation::ReputationFeed;
pub use signature::SignatureEngine;

use std::collections::{BTreeMap, VecDeque};

use divscrape_httplog::{AgentFamily, EntryRef, EntryView, LogEntry, ResourceClass};
use divscrape_traffic::network::{self, IpPool};

use crate::evict::{ClientStateTable, EvictionConfig, EvictionStats};
use crate::session::ClientKey;
use crate::{Detector, Verdict};

/// Partner clients must present this agent prefix from the contract range.
const PARTNER_UA_PREFIX: &str = "FareConnect-Partner-Client";

/// Why Sentinel first flagged a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SentinelSignal {
    /// User-agent signature match.
    Signature,
    /// Address listed in the reputation feed.
    Reputation,
    /// Request-rate threshold exceeded.
    Rate,
    /// JavaScript challenge failed.
    Challenge,
}

impl SentinelSignal {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SentinelSignal::Signature => "signature",
            SentinelSignal::Reputation => "reputation",
            SentinelSignal::Rate => "rate",
            SentinelSignal::Challenge => "challenge",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ClientState {
    last_ts: i64,
    pages_in_session: u32,
    js_in_session: u32,
    page_window: VecDeque<i64>,
}

/// The Sentinel detector: the commercial-style multi-signal tool —
/// signatures, reputation, rate, JS-challenge, violator cache and
/// whitelist.
///
/// ```
/// use divscrape_detect::{run_alerts, Detector, Sentinel};
/// use divscrape_traffic::{generate, ScenarioConfig};
///
/// let log = generate(&ScenarioConfig::tiny(7))?;
/// let mut sentinel = Sentinel::stock();
/// let alerts = run_alerts(&mut sentinel, log.entries());
/// let alerted = alerts.iter().filter(|a| **a).count();
/// assert!(alerted > log.len() / 2); // bot-dominated traffic
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sentinel {
    cfg: SentinelConfig,
    signatures: SignatureEngine,
    reputation: ReputationFeed,
    crawler_ranges: Vec<IpPool>,
    monitor_range: IpPool,
    partner_range: IpPool,
    clients: ClientStateTable<ClientState>,
    violators: ClientStateTable<SentinelSignal>,
    trip_counts: BTreeMap<&'static str, u64>,
}

impl Sentinel {
    /// Sentinel with the stock signature rules, stock reputation feed and
    /// default thresholds.
    pub fn stock() -> Self {
        Self::new(
            SentinelConfig::default(),
            SignatureEngine::stock(),
            ReputationFeed::stock(),
        )
    }

    /// Sentinel with explicit configuration and rule sets.
    pub fn new(
        cfg: SentinelConfig,
        signatures: SignatureEngine,
        reputation: ReputationFeed,
    ) -> Self {
        Self {
            cfg,
            signatures,
            reputation,
            crawler_ranges: vec![network::crawler_google(), network::crawler_bing()],
            monitor_range: network::monitor_range(),
            partner_range: network::partner_range(),
            clients: ClientStateTable::new(EvictionConfig::DISABLED),
            violators: ClientStateTable::new(EvictionConfig::DISABLED),
            trip_counts: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SentinelConfig {
        &self.cfg
    }

    /// Number of clients *currently* in the violator cache. Without
    /// eviction this equals "clients ever flagged"; with eviction it
    /// shrinks as idle or least-recently-seen violators are forgotten.
    pub fn flagged_clients(&self) -> usize {
        self.violators.len()
    }

    /// Whether eviction is active on the client tables.
    fn eviction_enabled(&self) -> bool {
        !self.clients.config().is_disabled()
    }

    /// How many cache-entering flag *events* each signal produced.
    /// Without eviction that is exactly "clients first flagged by the
    /// signal" (one event per client, ever); with eviction, a violator
    /// that is evicted and trips again is counted again, so the totals
    /// count flag episodes rather than distinct clients.
    pub fn trip_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.trip_counts
    }

    fn is_whitelisted<E: EntryView>(&self, entry: &E) -> bool {
        if !self.cfg.enable_whitelist {
            return false;
        }
        let family = entry.agent_family();
        let addr = entry.addr();
        match family {
            AgentFamily::KnownCrawler => self.crawler_ranges.iter().any(|r| r.contains(addr)),
            AgentFamily::Monitor => self.monitor_range.contains(addr),
            _ => entry.ua_str().starts_with(PARTNER_UA_PREFIX) && self.partner_range.contains(addr),
        }
    }

    /// Updates `state` with this entry and evaluates all signals, returning
    /// the first match in priority order and the number of active signals.
    ///
    /// The identity signals — signature and reputation — depend only on the
    /// client, so callers evaluate them once per client run and pass the
    /// results in; this is what the batch path amortizes.
    fn update_and_signal<E: EntryView>(
        cfg: &SentinelConfig,
        state: &mut ClientState,
        entry: &E,
        signature_hit: bool,
        reputation_hit: bool,
    ) -> (Option<SentinelSignal>, u32) {
        let ts = entry.epoch_seconds();

        // Session-scoped challenge counters reset on idle.
        if state.last_ts != 0 && ts - state.last_ts > cfg.session_idle_secs {
            state.pages_in_session = 0;
            state.js_in_session = 0;
            state.page_window.clear();
        }
        state.last_ts = ts;

        let class = entry.resource_class();
        match class {
            ResourceClass::Page => state.pages_in_session += 1,
            ResourceClass::Asset if entry.path().ends_with(".js") => {
                state.js_in_session += 1;
            }
            _ => {}
        }
        if matches!(class, ResourceClass::Page | ResourceClass::Api) {
            while let Some(&front) = state.page_window.front() {
                if ts - front >= 60 {
                    state.page_window.pop_front();
                } else {
                    break;
                }
            }
            state.page_window.push_back(ts);
        }

        let mut active = 0u32;
        let mut first: Option<SentinelSignal> = None;
        let mut hit = |signal: SentinelSignal, active: &mut u32| {
            *active += 1;
            if first.is_none() {
                first = Some(signal);
            }
        };

        if signature_hit {
            hit(SentinelSignal::Signature, &mut active);
        }
        if reputation_hit {
            hit(SentinelSignal::Reputation, &mut active);
        }
        if cfg.enable_rate && state.page_window.len() as u32 >= cfg.rate_threshold_per_min {
            hit(SentinelSignal::Rate, &mut active);
        }
        if cfg.enable_challenge
            && state.pages_in_session >= cfg.challenge_page_threshold
            && state.js_in_session == 0
        {
            hit(SentinelSignal::Challenge, &mut active);
        }
        (first, active)
    }

    /// Evaluates the client-constant identity signals for an entry.
    fn identity_hits<E: EntryView>(&self, entry: &E) -> (bool, bool) {
        (
            self.cfg.enable_signature
                && self
                    .signatures
                    .matches_parts(entry.agent_family(), entry.ua_str()),
            self.cfg.enable_reputation && self.reputation.is_listed(entry.addr()),
        )
    }

    /// The batch engine shared by the owned and borrowed batch paths —
    /// generic over [`EntryView`], so both produce identical verdicts by
    /// construction. Hoists identity-derived work (whitelist, key hash,
    /// signature, reputation) out of each single-client run.
    fn batch_core<E: EntryView>(&mut self, entries: &[E], out: &mut Vec<Verdict>) {
        out.reserve(entries.len());
        let evicting = self.eviction_enabled();
        for run in crate::detector::client_runs(entries) {
            let first = &run[0];

            // Everything identity-derived is constant across the run:
            // whitelisting, the client key hash, signature and reputation.
            if self.is_whitelisted(first) {
                out.extend(std::iter::repeat_n(Verdict::CLEAR, run.len()));
                continue;
            }
            let key = first.client_key();
            let (signature_hit, reputation_hit) = self.identity_hits(first);

            if evicting {
                // With eviction enabled the state tables must be touched
                // per entry — a large idle gap *inside* a client run (the
                // log held no other traffic in between) can expire state
                // mid-run, and the per-entry path would see that. The
                // identity work above stays amortized over the run.
                for entry in run {
                    let ts = entry.epoch_seconds();
                    let cached = self.cfg.enable_violator_cache
                        && self.violators.get_refresh(&key, ts).is_some();
                    let (state, _) = self.clients.upsert_with(key, ts, ClientState::default);
                    let (verdict, _) = Self::decide(
                        &self.cfg,
                        &mut self.violators,
                        &mut self.trip_counts,
                        state,
                        entry,
                        key,
                        ts,
                        cached,
                        signature_hit,
                        reputation_hit,
                    );
                    out.push(verdict);
                }
                continue;
            }

            // Eviction off: the tables behave like plain maps, so one
            // probe per run is exact (what the batch path amortizes).
            let ts0 = run[0].epoch_seconds();
            let mut cached =
                self.cfg.enable_violator_cache && self.violators.get_refresh(&key, ts0).is_some();
            let (state, _) = self.clients.upsert_with(key, ts0, ClientState::default);

            for entry in run {
                let ts = entry.epoch_seconds();
                // `cached` reflects the violator cache *before* this entry,
                // exactly as the per-entry path's lookup sees it.
                let (verdict, now_cached) = Self::decide(
                    &self.cfg,
                    &mut self.violators,
                    &mut self.trip_counts,
                    state,
                    entry,
                    key,
                    ts,
                    cached,
                    signature_hit,
                    reputation_hit,
                );
                cached = now_cached;
                out.push(verdict);
            }
        }
    }

    /// The shared per-entry tail of both observe paths: update the
    /// client's state, evaluate the signals, maintain the violator cache
    /// and build the verdict. `cached_before` is whether the violator
    /// cache held this client before the entry; the second return value
    /// is whether it holds the client after.
    #[allow(clippy::too_many_arguments)]
    fn decide<E: EntryView>(
        cfg: &SentinelConfig,
        violators: &mut ClientStateTable<SentinelSignal>,
        trip_counts: &mut BTreeMap<&'static str, u64>,
        state: &mut ClientState,
        entry: &E,
        key: ClientKey,
        ts: i64,
        cached_before: bool,
        signature_hit: bool,
        reputation_hit: bool,
    ) -> (Verdict, bool) {
        let (signal, active) =
            Self::update_and_signal(cfg, state, entry, signature_hit, reputation_hit);
        if let Some(signal) = signal {
            let mut cached = cached_before;
            if cfg.enable_violator_cache && !cached_before {
                violators.insert(key, ts, signal);
                *trip_counts.entry(signal.name()).or_insert(0) += 1;
                cached = true;
            }
            (
                Verdict::new(true, (active + u32::from(cached_before)) as f32),
                cached,
            )
        } else if cached_before {
            (Verdict::new(true, 1.0), true)
        } else {
            (Verdict::CLEAR, false)
        }
    }
}

impl Detector for Sentinel {
    fn name(&self) -> &str {
        "sentinel"
    }

    fn observe(&mut self, entry: &LogEntry) -> Verdict {
        if self.is_whitelisted(entry) {
            return Verdict::CLEAR;
        }
        let key = EntryView::client_key(entry);
        let ts = entry.timestamp().epoch_seconds();
        let cached =
            self.cfg.enable_violator_cache && self.violators.get_refresh(&key, ts).is_some();
        let (signature_hit, reputation_hit) = self.identity_hits(entry);
        let (state, _) = self.clients.upsert_with(key, ts, ClientState::default);
        let (verdict, _) = Self::decide(
            &self.cfg,
            &mut self.violators,
            &mut self.trip_counts,
            state,
            entry,
            key,
            ts,
            cached,
            signature_hit,
            reputation_hit,
        );
        verdict
    }

    fn observe_batch(&mut self, entries: &[LogEntry], out: &mut Vec<Verdict>) {
        self.batch_core(entries, out);
    }

    fn observe_batch_refs(&mut self, entries: &[EntryRef<'_>], out: &mut Vec<Verdict>) {
        self.batch_core(entries, out);
    }

    fn reset(&mut self) {
        self.clients.clear();
        self.violators.clear();
        self.trip_counts.clear();
    }

    fn set_eviction(&mut self, cfg: EvictionConfig) {
        self.clients.set_config(cfg);
        self.violators.set_config(cfg);
    }

    fn eviction_stats(&self) -> EvictionStats {
        self.clients.stats().merge(self.violators.stats())
    }
}

impl Default for Sentinel {
    fn default() -> Self {
        Self::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::run_alerts;
    use divscrape_httplog::{ClfTimestamp, HttpStatus};
    use std::net::Ipv4Addr;

    const BROWSER: &str =
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36";

    fn entry(addr: Ipv4Addr, secs: i64, path: &str, ua: &str) -> LogEntry {
        LogEntry::builder()
            .addr(addr)
            .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
            .request(format!("GET {path} HTTP/1.1").parse().unwrap())
            .status(HttpStatus::OK)
            .bytes(Some(1000))
            .user_agent(ua)
            .build()
            .unwrap()
    }

    fn clean_addr() -> Ipv4Addr {
        // Residential, outside the contaminated block.
        Ipv4Addr::new(81, 2, 10, 10)
    }

    #[test]
    fn signature_flags_tools_immediately() {
        let mut s = Sentinel::stock();
        let v = s.observe(&entry(clean_addr(), 0, "/search?q=a", "curl/7.58.0"));
        assert!(v.alert);
        assert_eq!(s.trip_counts().get("signature"), Some(&1));
    }

    #[test]
    fn reputation_flags_datacenter_sources() {
        let mut s = Sentinel::stock();
        let dc = Ipv4Addr::new(45, 76, 1, 2);
        assert!(s.observe(&entry(dc, 0, "/offers/1", BROWSER)).alert);
        assert_eq!(s.trip_counts().get("reputation"), Some(&1));
    }

    #[test]
    fn rate_monitor_trips_on_fast_page_streams() {
        let mut s = Sentinel::stock();
        let addr = clean_addr();
        let mut tripped_at = None;
        for i in 0..40 {
            // One page every two seconds with script assets so the
            // challenge cannot be the signal that fires.
            let v = s.observe(&entry(addr, i * 2, "/static/js/app.js", BROWSER));
            if tripped_at.is_none() {
                // Before the rate trips, asset requests must stay clean;
                // afterwards the violator cache rightly alerts on them too.
                assert!(!v.alert, "asset request {i} alerted before the trip");
            }
            let v = s.observe(&entry(addr, i * 2 + 1, &format!("/offers/{i}"), BROWSER));
            if v.alert && tripped_at.is_none() {
                tripped_at = Some(i);
            }
        }
        let at = tripped_at.expect("rate monitor should trip");
        assert!((25..=35).contains(&at), "tripped at page {at}");
        assert_eq!(s.trip_counts().get("rate"), Some(&1));
    }

    #[test]
    fn challenge_fails_clients_that_never_fetch_scripts() {
        let mut s = Sentinel::stock();
        let addr = clean_addr();
        let mut tripped_at = None;
        for i in 0..10 {
            // Slow pages (40s apart → rate can't trip), no scripts.
            let v = s.observe(&entry(addr, i * 40, &format!("/offers/{i}"), BROWSER));
            if v.alert && tripped_at.is_none() {
                tripped_at = Some(i + 1);
            }
        }
        assert_eq!(tripped_at, Some(6), "challenge threshold is 6 pages");
        assert_eq!(s.trip_counts().get("challenge"), Some(&1));
    }

    #[test]
    fn challenge_passes_clients_that_execute_javascript() {
        let mut s = Sentinel::stock();
        let addr = clean_addr();
        for i in 0..12 {
            let v = s.observe(&entry(addr, i * 80, &format!("/offers/{i}"), BROWSER));
            assert!(!v.alert, "page {i} alerted");
            let v = s.observe(&entry(addr, i * 80 + 2, "/static/js/app.js", BROWSER));
            assert!(!v.alert);
        }
    }

    #[test]
    fn violator_cache_keeps_alerting_after_the_trip() {
        let mut s = Sentinel::stock();
        let addr = clean_addr();
        // Trip via challenge...
        for i in 0..8 {
            s.observe(&entry(addr, i * 40, &format!("/offers/{i}"), BROWSER));
        }
        assert_eq!(s.flagged_clients(), 1);
        // ...then a perfectly innocuous request hours later still alerts.
        let v = s.observe(&entry(addr, 50_000, "/static/js/app.js", BROWSER));
        assert!(v.alert, "violator cache should persist");
    }

    #[test]
    fn whitelist_protects_verified_crawlers_but_not_impostors() {
        use divscrape_traffic::useragents::GOOGLEBOT;
        let mut s = Sentinel::stock();
        let real = Ipv4Addr::new(66, 249, 66, 5);
        for i in 0..20 {
            let v = s.observe(&entry(real, i, &format!("/offers/{i}"), GOOGLEBOT));
            assert!(!v.alert, "real Googlebot alerted at {i}");
        }
        // The same identity from a residential address is an impostor: no
        // whitelist, and the challenge eventually catches the page stream.
        let fake = clean_addr();
        let mut alerted = false;
        for i in 0..20 {
            alerted |= s
                .observe(&entry(
                    fake,
                    100_000 + i * 40,
                    &format!("/offers/{i}"),
                    GOOGLEBOT,
                ))
                .alert;
        }
        assert!(alerted, "fake Googlebot escaped");
    }

    #[test]
    fn contaminated_reputation_block_causes_false_positives() {
        let mut s = Sentinel::stock();
        let unlucky = Ipv4Addr::new(92, 143, 3, 9);
        let v = s.observe(&entry(unlucky, 0, "/search?q=NCE-LHR", BROWSER));
        assert!(v.alert, "contaminated block should alert");
    }

    #[test]
    fn ablated_sentinel_misses_what_the_signal_caught() {
        let cfg = SentinelConfig::default().without("reputation");
        let mut s = Sentinel::new(cfg, SignatureEngine::stock(), ReputationFeed::stock());
        let dc = Ipv4Addr::new(45, 76, 1, 2);
        let v = s.observe(&entry(dc, 0, "/offers/1", BROWSER));
        assert!(!v.alert, "reputation disabled but still alerted");
    }

    #[test]
    fn reset_clears_the_cache() {
        let mut s = Sentinel::stock();
        s.observe(&entry(clean_addr(), 0, "/a", "curl/7.58.0"));
        assert_eq!(s.flagged_clients(), 1);
        s.reset();
        assert_eq!(s.flagged_clients(), 0);
        assert!(s.trip_counts().is_empty());
    }

    #[test]
    fn alerts_heavily_on_synthetic_bot_traffic() {
        use divscrape_traffic::{generate, ScenarioConfig};
        let log = generate(&ScenarioConfig::small(5)).unwrap();
        let mut s = Sentinel::stock();
        let alerts = run_alerts(&mut s, log.entries());
        let rate = alerts.iter().filter(|a| **a).count() as f64 / alerts.len() as f64;
        assert!((0.70..0.95).contains(&rate), "alert rate {rate}");
    }
}
