//! The IP reputation feed.
//!
//! Commercial bot-mitigation vendors ship curated feeds of address ranges
//! with a history of abuse — overwhelmingly cloud/hosting space, plus
//! whatever residential ranges were recently implicated. Feeds are blunt
//! instruments: the stock feed here deliberately includes one stale
//! residential block (see
//! [`reputation_contamination_block`](divscrape_traffic::network::reputation_contamination_block)),
//! which is the realistic source of this signal's false positives.

use std::net::Ipv4Addr;

use divscrape_httplog::Cidr;
use divscrape_traffic::network;

/// A CIDR-based reputation feed.
#[derive(Debug, Clone)]
pub struct ReputationFeed {
    listed: Vec<Cidr>,
}

impl ReputationFeed {
    /// The stock vendor feed: the data-center ranges the attack populations
    /// rent from, plus one stale residential block (false positives).
    pub fn stock() -> Self {
        let mut listed = network::datacenter().blocks().to_vec();
        listed.push(network::reputation_contamination_block());
        Self { listed }
    }

    /// A feed with no entries.
    pub fn empty() -> Self {
        Self { listed: Vec::new() }
    }

    /// Builds a feed from explicit blocks.
    pub fn from_blocks(blocks: Vec<Cidr>) -> Self {
        Self { listed: blocks }
    }

    /// Whether an address is listed.
    pub fn is_listed(&self, addr: Ipv4Addr) -> bool {
        self.listed.iter().any(|b| b.contains(addr))
    }

    /// Number of listed blocks.
    pub fn block_count(&self) -> usize {
        self.listed.len()
    }
}

impl Default for ReputationFeed {
    fn default() -> Self {
        Self::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lists_datacenter_space() {
        let feed = ReputationFeed::stock();
        let mut rng = StdRng::seed_from_u64(1);
        let dc = network::datacenter();
        for _ in 0..200 {
            assert!(feed.is_listed(dc.sample(&mut rng)));
        }
    }

    #[test]
    fn mostly_passes_residential_space() {
        let feed = ReputationFeed::stock();
        let mut rng = StdRng::seed_from_u64(2);
        let res = network::residential();
        let listed = (0..10_000)
            .filter(|_| feed.is_listed(res.sample(&mut rng)))
            .count();
        // Only the contaminated /20 should hit: ~0.1% of draws.
        assert!(listed < 100, "{listed} residential addresses listed");
        assert!(listed > 0, "the contaminated block should surface");
    }

    #[test]
    fn contaminated_block_is_listed() {
        let feed = ReputationFeed::stock();
        let block = network::reputation_contamination_block();
        assert!(feed.is_listed(block.nth_host(7).unwrap()));
    }

    #[test]
    fn empty_and_custom_feeds() {
        assert_eq!(ReputationFeed::empty().block_count(), 0);
        assert!(!ReputationFeed::empty().is_listed(Ipv4Addr::new(45, 76, 0, 1)));
        let feed = ReputationFeed::from_blocks(vec!["10.0.0.0/8".parse().unwrap()]);
        assert!(feed.is_listed(Ipv4Addr::new(10, 200, 3, 4)));
        assert!(!feed.is_listed(Ipv4Addr::new(11, 0, 0, 1)));
    }
}
