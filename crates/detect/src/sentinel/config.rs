//! Sentinel configuration.

/// Tuning and ablation knobs for [`Sentinel`](super::Sentinel).
///
/// Every signal can be disabled independently, which is how the ablation
/// experiment (E8 in `DESIGN.md`) measures each signal family's
/// contribution to the tool's alert volume and accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelConfig {
    /// User-agent signature engine (tool UAs, stale fingerprints).
    pub enable_signature: bool,
    /// IP reputation feed.
    pub enable_reputation: bool,
    /// Request-rate monitor.
    pub enable_rate: bool,
    /// JavaScript-challenge emulation.
    pub enable_challenge: bool,
    /// Verified-operator whitelist (crawlers, monitors, partners).
    pub enable_whitelist: bool,
    /// Known-violator cache: once a client trips any signal, all its later
    /// requests alert too. This is what makes commercial tools alert on
    /// nearly every request of a flagged client.
    pub enable_violator_cache: bool,
    /// Page/API requests per minute that trip the rate monitor.
    pub rate_threshold_per_min: u32,
    /// Page views without any script fetch that fail the JS challenge.
    pub challenge_page_threshold: u32,
    /// Idle gap that resets per-session challenge state, seconds.
    pub session_idle_secs: i64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            enable_signature: true,
            enable_reputation: true,
            enable_rate: true,
            enable_challenge: true,
            enable_whitelist: true,
            enable_violator_cache: true,
            rate_threshold_per_min: 30,
            challenge_page_threshold: 6,
            session_idle_secs: 1_800,
        }
    }
}

impl SentinelConfig {
    /// A configuration with every optional signal disabled — alerts on
    /// nothing. Useful as an experiment baseline.
    pub fn disabled() -> Self {
        Self {
            enable_signature: false,
            enable_reputation: false,
            enable_rate: false,
            enable_challenge: false,
            enable_whitelist: false,
            enable_violator_cache: false,
            ..Self::default()
        }
    }

    /// Returns a copy with one named signal disabled. Valid names:
    /// `signature`, `reputation`, `rate`, `challenge`, `whitelist`,
    /// `violator_cache`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown signal name — callers enumerate a fixed list.
    #[must_use]
    pub fn without(&self, signal: &str) -> Self {
        let mut cfg = self.clone();
        match signal {
            "signature" => cfg.enable_signature = false,
            "reputation" => cfg.enable_reputation = false,
            "rate" => cfg.enable_rate = false,
            "challenge" => cfg.enable_challenge = false,
            "whitelist" => cfg.enable_whitelist = false,
            "violator_cache" => cfg.enable_violator_cache = false,
            other => panic!("unknown Sentinel signal `{other}`"),
        }
        cfg
    }

    /// The ablatable signal names accepted by [`without`](Self::without).
    pub const SIGNALS: [&'static str; 6] = [
        "signature",
        "reputation",
        "rate",
        "challenge",
        "whitelist",
        "violator_cache",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let cfg = SentinelConfig::default();
        assert!(cfg.enable_signature && cfg.enable_reputation);
        assert!(cfg.enable_rate && cfg.enable_challenge);
        assert!(cfg.enable_whitelist && cfg.enable_violator_cache);
    }

    #[test]
    fn without_disables_exactly_one_signal() {
        for signal in SentinelConfig::SIGNALS {
            let cfg = SentinelConfig::default().without(signal);
            let disabled = [
                !cfg.enable_signature,
                !cfg.enable_reputation,
                !cfg.enable_rate,
                !cfg.enable_challenge,
                !cfg.enable_whitelist,
                !cfg.enable_violator_cache,
            ];
            assert_eq!(
                disabled.iter().filter(|d| **d).count(),
                1,
                "{signal} should disable exactly one flag"
            );
        }
    }

    #[test]
    #[should_panic]
    fn without_rejects_unknown_signals() {
        let _ = SentinelConfig::default().without("telepathy");
    }
}
