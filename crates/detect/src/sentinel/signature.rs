//! User-agent signature engine.
//!
//! The cheapest and oldest commercial signal: a blocklist of HTTP-tool
//! identities plus a fingerprint database of browser builds that no real
//! user runs any more. A fleet announcing `Chrome/41` in 2018 is not a
//! browser population; it is one operator's frozen scraping stack.

use divscrape_httplog::{AgentFamily, UserAgent};

/// A user-agent blocklist.
#[derive(Debug, Clone)]
pub struct SignatureEngine {
    /// Alert on these coarse families outright.
    blocked_families: Vec<AgentFamily>,
    /// Alert when the raw string contains any of these markers
    /// (case-sensitive; fingerprints are exact version tokens).
    fingerprint_markers: Vec<String>,
}

impl SignatureEngine {
    /// The stock 2018-era ruleset: block HTTP tools and empty agents, plus
    /// fingerprints of long-dead browser builds and headless stacks.
    pub fn stock() -> Self {
        Self {
            blocked_families: vec![AgentFamily::HttpTool, AgentFamily::Empty],
            fingerprint_markers: vec![
                "Chrome/41.0.2272.89".to_owned(), // the spoofed-campaign build
                "MSIE 6.0".to_owned(),
                "PhantomJS".to_owned(),
                "HeadlessChrome".to_owned(),
            ],
        }
    }

    /// An engine that matches nothing.
    pub fn empty() -> Self {
        Self {
            blocked_families: Vec::new(),
            fingerprint_markers: Vec::new(),
        }
    }

    /// Adds a fingerprint marker.
    pub fn add_fingerprint(&mut self, marker: impl Into<String>) -> &mut Self {
        self.fingerprint_markers.push(marker.into());
        self
    }

    /// Whether the agent matches the blocklist.
    pub fn matches(&self, agent: &UserAgent) -> bool {
        self.matches_parts(agent.family(), agent.as_str())
    }

    /// [`matches`](Self::matches) with the family precomputed — the
    /// allocation-free form used by the borrowed-entry hot path, where
    /// the family was classified once at parse time (or interned).
    pub fn matches_parts(&self, family: AgentFamily, raw: &str) -> bool {
        if self.blocked_families.contains(&family) {
            return true;
        }
        self.fingerprint_markers.iter().any(|m| raw.contains(m))
    }

    /// Number of fingerprint markers loaded.
    pub fn fingerprint_count(&self) -> usize {
        self.fingerprint_markers.len()
    }
}

impl Default for SignatureEngine {
    fn default() -> Self {
        Self::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use divscrape_traffic::useragents::{BOTNET_SPOOFED_BROWSER, GOOGLEBOT, SCRAPER_TOOLS};

    #[test]
    fn blocks_http_tools_and_empty_agents() {
        let engine = SignatureEngine::stock();
        for tool in SCRAPER_TOOLS {
            assert!(engine.matches(&UserAgent::new(tool)), "{tool}");
        }
        assert!(engine.matches(&UserAgent::empty()));
    }

    #[test]
    fn fingerprints_the_spoofed_campaign() {
        let engine = SignatureEngine::stock();
        assert!(engine.matches(&UserAgent::new(BOTNET_SPOOFED_BROWSER)));
    }

    #[test]
    fn passes_real_browsers_and_crawlers() {
        let engine = SignatureEngine::stock();
        let chrome = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36";
        assert!(!engine.matches(&UserAgent::new(chrome)));
        assert!(!engine.matches(&UserAgent::new(GOOGLEBOT)));
    }

    #[test]
    fn empty_engine_matches_nothing() {
        let engine = SignatureEngine::empty();
        assert!(!engine.matches(&UserAgent::new("curl/7.58.0")));
        assert!(!engine.matches(&UserAgent::empty()));
        assert_eq!(engine.fingerprint_count(), 0);
    }

    #[test]
    fn custom_fingerprints_extend_the_engine() {
        let mut engine = SignatureEngine::empty();
        engine.add_fingerprint("EvilBot/9");
        assert!(engine.matches(&UserAgent::new("Mozilla/5.0 EvilBot/9.1")));
        assert_eq!(engine.fingerprint_count(), 1);
    }
}
