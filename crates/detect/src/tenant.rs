//! Tenant identity for multi-tenant deployments.
//!
//! The paper's diverse-detector architecture protects *one* monitored
//! site; a shared scraping-defense service protects many properties at
//! once, each with its own log stream, detector state and calibration.
//! [`TenantId`] is the identity that threads through every layer of that
//! service: ingestion stamps it on each polled record, the pipeline hub
//! routes on it, per-client state tables can scope their keys with it
//! ([`TenantClientKey`]), and adjudicated alerts carry it to the sinks.
//!
//! A `TenantId` is an interned name: cheap to clone (one atomic
//! reference-count bump), compared and hashed by its string content, so
//! two independently constructed ids for the same tenant are equal.

use std::fmt;
use std::sync::Arc;

use crate::session::ClientKey;

/// The identity of one monitored property (site, API, brand) in a
/// multi-tenant detection service.
///
/// ```
/// use divscrape_detect::TenantId;
///
/// let a = TenantId::new("shop-eu");
/// let b = TenantId::new("shop-eu");
/// assert_eq!(a, b);               // identity is the name
/// assert_eq!(a.as_str(), "shop-eu");
/// assert_eq!(a.to_string(), "shop-eu");
/// let c = a.clone();              // cheap: shared allocation
/// assert_eq!(a, c);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// A tenant id with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        TenantId(Arc::from(name.as_ref()))
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId::new(name)
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        TenantId::new(name)
    }
}

/// A client key scoped to its tenant: the key type shared state tables
/// use when one table serves several tenants, so two tenants observing
/// the same address + user-agent never share (or evict) each other's
/// state.
///
/// ```
/// use divscrape_detect::{StateTable, EvictionConfig, TenantClientKey, TenantId};
/// use std::net::Ipv4Addr;
///
/// let mut table: StateTable<TenantClientKey, u32> =
///     StateTable::new(EvictionConfig::capacity(10));
/// let client = (Ipv4Addr::new(10, 0, 0, 1), 7u64);
/// let a = (TenantId::new("shop-eu"), client);
/// let b = (TenantId::new("shop-us"), client);
/// table.insert(a.clone(), 0, 1);
/// table.insert(b.clone(), 0, 2);
/// // Same client identity, distinct tenants: distinct state.
/// assert_eq!(table.get(&a), Some(&1));
/// assert_eq!(table.get(&b), Some(&2));
/// ```
pub type TenantClientKey = (TenantId, ClientKey);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn identity_is_by_name() {
        let a = TenantId::new("alpha");
        let b = TenantId::from("alpha".to_owned());
        let c: TenantId = "bravo".into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c, "ordering follows the name");
        let mut map = HashMap::new();
        map.insert(a, 1);
        assert_eq!(map.get(&b), Some(&1));
    }
}
