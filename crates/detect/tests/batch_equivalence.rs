//! The `observe_batch` contract: every stock detector's specialized batch
//! path must be verdict-identical to the per-entry `observe` loop (the
//! trait's default), for any chunking of the log.

use divscrape_detect::baselines::{
    Cart, CartParams, Logistic, LogisticParams, NaiveBayes, RateLimiter, SessionModelDetector,
    SignatureOnly, TrainingSet,
};
use divscrape_detect::{Arcane, Committee, Detector, Sentinel, TrapDetector, Verdict};
use divscrape_traffic::{generate, LabelledLog, ScenarioConfig};

fn log() -> LabelledLog {
    generate(&ScenarioConfig::small(20_240)).unwrap()
}

/// Per-entry observation — exactly what the trait's default
/// `observe_batch` does, used as the reference behavior.
fn reference<D: Detector>(det: &mut D, log: &LabelledLog) -> Vec<Verdict> {
    log.entries().iter().map(|e| det.observe(e)).collect()
}

/// The specialized batch path, fed in the given chunk sizes.
fn batched<D: Detector>(det: &mut D, log: &LabelledLog, chunk: usize) -> Vec<Verdict> {
    let mut out = Vec::new();
    for part in log.entries().chunks(chunk) {
        det.observe_batch(part, &mut out);
    }
    out
}

fn assert_batch_equivalent<D: Detector + Clone>(proto: D) {
    let log = log();
    let mut per_entry = proto.clone();
    let expected = reference(&mut per_entry, &log);
    // Whole-log, prime-sized, and single-entry chunking must all agree.
    for chunk in [log.len(), 257, 1] {
        let mut det = proto.clone();
        let got = batched(&mut det, &log, chunk);
        assert_eq!(got.len(), expected.len(), "{}: length", det.name());
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(
                g.alert,
                e.alert,
                "{}: alert diverged at entry {i} with chunk {chunk}",
                det.name()
            );
            assert!(
                (g.score - e.score).abs() < 1e-6,
                "{}: score diverged at entry {i} with chunk {chunk}: {} vs {}",
                det.name(),
                g.score,
                e.score
            );
        }
    }
}

#[test]
fn sentinel_batch_path_is_equivalent() {
    assert_batch_equivalent(Sentinel::stock());
}

#[test]
fn arcane_batch_path_is_equivalent() {
    assert_batch_equivalent(Arcane::stock());
}

#[test]
fn rate_limiter_batch_path_is_equivalent() {
    assert_batch_equivalent(RateLimiter::new(30));
}

#[test]
fn signature_only_batch_path_is_equivalent() {
    assert_batch_equivalent(SignatureOnly::stock());
}

#[test]
fn trap_detector_batch_path_is_equivalent() {
    assert_batch_equivalent(TrapDetector::default());
}

#[test]
fn session_model_batch_paths_are_equivalent() {
    let training_log = generate(&ScenarioConfig::small(7)).unwrap();
    let training = TrainingSet::from_log(&training_log, 5);
    assert_batch_equivalent(SessionModelDetector::new(
        NaiveBayes::train(&training).unwrap(),
        0.5,
        3,
    ));
    assert_batch_equivalent(SessionModelDetector::new(
        Logistic::train(&training, LogisticParams::default()).unwrap(),
        0.5,
        3,
    ));
    assert_batch_equivalent(SessionModelDetector::new(
        Cart::train(&training, CartParams::default()).unwrap(),
        0.5,
        3,
    ));
}

#[test]
fn committee_batch_path_is_equivalent() {
    // Committee is not Clone (boxed members), so compare two fresh builds.
    let log = log();
    let mut per_entry = Committee::stock_pair(1);
    let expected = reference(&mut per_entry, &log);
    for chunk in [log.len(), 257, 1] {
        let mut committee = Committee::stock_pair(1);
        let got = batched(&mut committee, &log, chunk);
        assert_eq!(got.len(), expected.len());
        assert!(
            got.iter()
                .zip(&expected)
                .all(|(g, e)| g.alert == e.alert && (g.score - e.score).abs() < 1e-6),
            "committee diverged with chunk {chunk}"
        );
        // Member accounting must match the per-entry path too.
        assert_eq!(committee.requests_seen(), per_entry.requests_seen());
        assert_eq!(
            committee.member_alert_counts(),
            per_entry.member_alert_counts()
        );
    }
}

#[test]
fn batch_path_amortization_preserves_introspection_counters() {
    // The batched Sentinel/Arcane paths memoize identity lookups; the
    // side-band counters (violator cache, rule hits) must still match the
    // per-entry path exactly.
    let log = log();
    let mut a = Sentinel::stock();
    let _ = reference(&mut a, &log);
    let mut b = Sentinel::stock();
    let _ = batched(&mut b, &log, 311);
    assert_eq!(a.flagged_clients(), b.flagged_clients());
    assert_eq!(a.trip_counts(), b.trip_counts());

    let mut a = Arcane::stock();
    let _ = reference(&mut a, &log);
    let mut b = Arcane::stock();
    let _ = batched(&mut b, &log, 311);
    assert_eq!(a.rule_hits(), b.rule_hits());
}
