//! Eviction-layer semantics, held across detectors:
//!
//! 1. **Fresh-session**: a client evicted by TTL returns and is treated
//!    as a brand-new session (the paper-aligned session-timeout
//!    behaviour).
//! 2. **Capacity bound**: a long synthetic stream over many clients
//!    never pushes any state table past the configured capacity.
//! 3. **Verdict preservation**: with a TTL at least as long as a
//!    detector's own session timeout, eviction changes no verdict for
//!    session-scoped detectors.
//! 4. **Batch equivalence**: the amortized `observe_batch` paths remain
//!    verdict-identical to the per-entry loop with eviction enabled.

use std::net::Ipv4Addr;

use divscrape_detect::baselines::RateLimiter;
use divscrape_detect::{
    run, run_alerts, Arcane, Detector, EvictionConfig, Sentinel, Sessionizer, SessionizerConfig,
    TrapDetector,
};
use divscrape_httplog::{ClfTimestamp, HttpStatus, LogEntry};
use divscrape_traffic::{generate, ScenarioConfig};

const BROWSER: &str = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36";

fn entry(addr: Ipv4Addr, secs: i64, path: &str, ua: &str) -> LogEntry {
    LogEntry::builder()
        .addr(addr)
        .timestamp(ClfTimestamp::PAPER_WINDOW_START.plus_seconds(secs))
        .request(format!("GET {path} HTTP/1.1").parse().unwrap())
        .status(HttpStatus::OK)
        .bytes(Some(1000))
        .user_agent(ua)
        .build()
        .unwrap()
}

/// A long synthetic stream cycling through many distinct clients — far
/// more than any capacity bound under test — in timestamp order.
fn many_client_stream(clients: u32, requests: u32) -> Vec<LogEntry> {
    (0..requests)
        .map(|i| {
            let c = i % clients;
            entry(
                Ipv4Addr::new(81, 3, (c / 256) as u8, (c % 256) as u8),
                i64::from(i),
                &format!("/offers/{}", i % 37),
                BROWSER,
            )
        })
        .collect()
}

#[test]
fn ttl_evicted_client_returns_as_a_fresh_session() {
    // TTL shorter than the sessionizer's idle timeout, so eviction (not
    // the idle restart) is what forgets the client.
    let mut sessions = Sessionizer::new(SessionizerConfig {
        idle_timeout_secs: 10_000,
    });
    sessions.set_eviction(EvictionConfig::ttl(600));
    let addr = Ipv4Addr::new(81, 2, 10, 30);
    for i in 0..8 {
        sessions.observe(&entry(addr, i * 30, &format!("/offers/{i}"), BROWSER));
    }
    // Another client's traffic after the TTL reaps the idle session.
    sessions.observe(&entry(Ipv4Addr::new(81, 2, 10, 31), 2_000, "/a", BROWSER));
    assert_eq!(sessions.eviction_stats().evicted_clients, 1);
    // The original client returns inside its (long) idle timeout, but
    // after eviction: a fresh session, not request #9.
    let f = sessions.observe(&entry(addr, 2_100, "/offers/9", BROWSER));
    assert_eq!(f.requests, 1, "evicted client must restart fresh");
}

#[test]
fn arcane_warmup_restarts_after_ttl_eviction() {
    // Arcane needs ~a dozen bare pages to condemn a session; an evicted
    // client restarts that warm-up from zero.
    let mut arcane = Arcane::stock();
    arcane.set_eviction(EvictionConfig::ttl(600));
    let addr = Ipv4Addr::new(81, 2, 10, 40);
    let mut alerted = false;
    for i in 0..10 {
        alerted |= arcane
            .observe(&entry(addr, i * 30, &format!("/offers/{i}"), BROWSER))
            .alert;
    }
    assert!(!alerted, "ten slow bare pages stay under the threshold");
    // Idle past the TTL (kept visible to the table by other traffic),
    // then ten more bare pages: still no alert, because the evicted
    // session's evidence is gone.
    arcane.observe(&entry(Ipv4Addr::new(81, 2, 10, 41), 2_000, "/a", BROWSER));
    for i in 0..10 {
        let v = arcane.observe(&entry(
            addr,
            2_100 + i * 30,
            &format!("/offers/{i}"),
            BROWSER,
        ));
        assert!(!v.alert, "fresh session inherited evicted evidence at {i}");
    }
}

#[test]
fn capacity_bound_holds_on_a_long_many_client_stream() {
    let cap = 64usize;
    let stream = many_client_stream(5_000, 60_000);
    // (name, detector, whether this stream even populates its table —
    // the honeytrap only tracks clients that hit the tripwire, which
    // this stream never does, so its table stays empty.)
    for (name, mut det, expect_evictions) in [
        (
            "sentinel",
            Box::new(Sentinel::stock()) as Box<dyn Detector>,
            true,
        ),
        ("arcane", Box::new(Arcane::stock()), true),
        ("rate-limiter", Box::new(RateLimiter::new(60)), true),
        ("honeytrap", Box::new(TrapDetector::default()), false),
    ] {
        det.set_eviction(EvictionConfig::capacity(cap));
        for (i, e) in stream.iter().enumerate() {
            det.observe(e);
            // The bound is an invariant, not an end-state property.
            if i % 997 == 0 {
                assert!(
                    det.eviction_stats().live_clients <= cap,
                    "{name}: table exceeded capacity at entry {i}"
                );
            }
        }
        let stats = det.eviction_stats();
        assert!(
            stats.live_clients <= cap,
            "{name}: final occupancy {} over capacity {cap}",
            stats.live_clients
        );
        assert_eq!(
            stats.evicted_clients > 0,
            expect_evictions,
            "{name}: eviction count {} unexpected",
            stats.evicted_clients
        );
    }
}

#[test]
fn ttl_at_session_timeout_preserves_session_scoped_verdicts() {
    // For detectors whose state naturally expires at the session
    // timeout, a TTL >= that timeout only drops state the detector
    // would have restarted anyway: verdicts are bit-identical.
    let log = generate(&ScenarioConfig::small(2026)).unwrap();

    let mut plain = Arcane::stock();
    let mut bounded = Arcane::stock();
    bounded.set_eviction(EvictionConfig::ttl(1_800)); // == idle timeout
    assert_eq!(
        run_alerts(&mut plain, log.entries()),
        run_alerts(&mut bounded, log.entries()),
        "arcane verdicts changed under session-timeout TTL"
    );
    assert!(
        bounded.eviction_stats().evicted_clients > 0,
        "the TTL should actually have reaped idle sessions"
    );

    // The rate limiter's window drains after 60 s, so any TTL >= 60 s
    // is verdict-preserving too.
    let mut plain = RateLimiter::new(60);
    let mut bounded = RateLimiter::new(60);
    bounded.set_eviction(EvictionConfig::ttl(60));
    assert_eq!(
        run_alerts(&mut plain, log.entries()),
        run_alerts(&mut bounded, log.entries()),
        "rate limiter verdicts changed under >=60s TTL"
    );
}

#[test]
fn batch_path_stays_equivalent_to_per_entry_under_eviction() {
    let log = generate(&ScenarioConfig::small(2027)).unwrap();
    let cfg = EvictionConfig::ttl(900).with_capacity(48);
    for (name, proto) in [
        ("sentinel", Box::new(Sentinel::stock()) as Box<dyn Detector>),
        ("arcane", Box::new(Arcane::stock())),
        ("rate-limiter", Box::new(RateLimiter::new(60))),
        ("honeytrap", Box::new(TrapDetector::default())),
    ] {
        let mut batched = proto;
        batched.set_eviction(cfg);
        let via_batch = run(&mut batched, log.entries());
        batched.reset();
        // Per-entry loop on the *same* (reset) detector instance.
        let via_entries: Vec<_> = log.entries().iter().map(|e| batched.observe(e)).collect();
        let diverged = via_batch
            .iter()
            .zip(&via_entries)
            .filter(|(a, b)| a.alert != b.alert)
            .count();
        assert_eq!(diverged, 0, "{name}: batch path diverged under eviction");
    }
}

#[test]
fn disabled_eviction_is_bit_identical_to_untouched_detectors() {
    let log = generate(&ScenarioConfig::tiny(2028)).unwrap();
    let mut plain = Sentinel::stock();
    let mut configured = Sentinel::stock();
    configured.set_eviction(EvictionConfig::DISABLED);
    assert_eq!(
        run_alerts(&mut plain, log.entries()),
        run_alerts(&mut configured, log.entries()),
    );
    assert_eq!(configured.eviction_stats().evicted_clients, 0);
}

#[test]
fn sentinel_violator_cache_forgets_idle_violators_under_ttl() {
    // The documented trade-off: bounded memory forgives violators that
    // go quiet for longer than the TTL.
    let mut unbounded = Sentinel::stock();
    let mut bounded = Sentinel::stock();
    bounded.set_eviction(EvictionConfig::ttl(3_600));
    let addr = Ipv4Addr::new(81, 2, 10, 50);
    // Trip the challenge signal (slow bare pages, no scripts) so the
    // violator entry is behavioural, keyed on a clean browser identity.
    for s in [&mut unbounded, &mut bounded] {
        for i in 0..8 {
            s.observe(&entry(addr, i * 40, &format!("/offers/{i}"), BROWSER));
        }
        assert_eq!(s.flagged_clients(), 1, "challenge should have tripped");
    }
    // An innocuous request from the same client, hours past the TTL:
    let probe = entry(addr, 50_000, "/static/js/app.js", BROWSER);
    assert!(
        unbounded.observe(&probe).alert,
        "unbounded violator cache alerts forever"
    );
    assert!(
        !bounded.observe(&probe).alert,
        "TTL-bounded cache forgives an idle violator"
    );
}
