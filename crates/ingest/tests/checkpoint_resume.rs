//! `FileTail` checkpoint/resume: a restarted ingester continues exactly
//! where the previous one stopped — mid-file, after further appends,
//! and across rotation.

use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use divscrape_ingest::{FileTail, LogSource, SourceEvent};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "divscrape-ckpt-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn line(i: usize) -> String {
    format!(
        "10.0.0.{} - - [11/Mar/2018:00:00:{:02} +0000] \"GET /r/{} HTTP/1.1\" 200 10 \"-\" \"curl/7.58.0\"",
        i % 200 + 1,
        i % 60,
        i
    )
}

fn write_lines(path: &PathBuf, range: std::ops::Range<usize>, append: bool) {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(append)
        .write(true)
        .truncate(!append)
        .open(path)
        .unwrap();
    for i in range {
        writeln!(f, "{}", line(i)).unwrap();
    }
    f.flush().unwrap();
}

/// Collects exactly `n` lines, failing on EOF or timeout.
fn collect(tail: &mut FileTail, n: usize) -> Vec<String> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while out.len() < n {
        assert!(Instant::now() < deadline, "timed out with {out:?}");
        match tail.poll(Duration::from_millis(20)).unwrap() {
            SourceEvent::Line(l) => out.push(l),
            SourceEvent::Idle => {}
            SourceEvent::Eof => panic!("unexpected EOF with {out:?}"),
            SourceEvent::Truncated { .. } => panic!("unexpected truncation"),
        }
    }
    out
}

/// Reads until EOF (batch mode).
fn collect_to_eof(tail: &mut FileTail) -> Vec<String> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "timed out with {out:?}");
        match tail.poll(Duration::from_millis(20)).unwrap() {
            SourceEvent::Line(l) => out.push(l),
            SourceEvent::Idle => {}
            SourceEvent::Eof => return out,
            SourceEvent::Truncated { .. } => panic!("unexpected truncation"),
        }
    }
}

#[test]
fn restart_mid_file_resumes_at_the_first_undelivered_line() {
    let dir = temp_dir("midfile");
    let _cleanup = Cleanup(dir.clone());
    let log = dir.join("access.log");
    let sidecar = dir.join("access.ckpt");
    write_lines(&log, 0..10, false);

    // First incarnation: consume 4 of the 10 lines, then die (drop).
    // The buffered-but-undelivered tail must NOT be marked consumed.
    {
        let mut tail = FileTail::read_to_end(&log)
            .unwrap()
            .with_checkpoint(&sidecar)
            .unwrap();
        assert_eq!(collect(&mut tail, 4), (0..4).map(line).collect::<Vec<_>>());
    } // Drop persists the checkpoint

    // Second incarnation: exactly the undelivered lines, no repeats.
    let mut tail = FileTail::read_to_end(&log)
        .unwrap()
        .with_checkpoint(&sidecar)
        .unwrap();
    assert_eq!(
        collect_to_eof(&mut tail),
        (4..10).map(line).collect::<Vec<_>>()
    );
}

#[test]
fn restart_after_appends_reads_only_the_new_lines() {
    let dir = temp_dir("append");
    let _cleanup = Cleanup(dir.clone());
    let log = dir.join("access.log");
    let sidecar = dir.join("access.ckpt");
    write_lines(&log, 0..5, false);

    {
        let mut tail = FileTail::read_to_end(&log)
            .unwrap()
            .with_checkpoint(&sidecar)
            .unwrap();
        assert_eq!(collect_to_eof(&mut tail).len(), 5); // Eof persisted
    }
    // The file grows while the ingester is down.
    write_lines(&log, 5..9, true);

    let mut tail = FileTail::read_to_end(&log)
        .unwrap()
        .with_checkpoint(&sidecar)
        .unwrap();
    assert_eq!(
        collect_to_eof(&mut tail),
        (5..9).map(line).collect::<Vec<_>>()
    );
}

#[test]
fn restart_after_rotation_reads_the_new_file_from_its_start() {
    let dir = temp_dir("rotate");
    let _cleanup = Cleanup(dir.clone());
    let log = dir.join("access.log");
    let sidecar = dir.join("access.ckpt");
    write_lines(&log, 0..6, false);

    {
        let mut tail = FileTail::read_to_end(&log)
            .unwrap()
            .with_checkpoint(&sidecar)
            .unwrap();
        assert_eq!(collect_to_eof(&mut tail).len(), 6);
    }
    // Rotation while down: rename away, recreate the path with fresh
    // content. The sidecar's (dev, inode) no longer matches, so nothing
    // from the new file may be skipped.
    std::fs::rename(&log, dir.join("access.log.1")).unwrap();
    write_lines(&log, 100..103, false);

    let mut tail = FileTail::read_to_end(&log)
        .unwrap()
        .with_checkpoint(&sidecar)
        .unwrap();
    assert_eq!(
        collect_to_eof(&mut tail),
        (100..103).map(line).collect::<Vec<_>>()
    );
}

#[test]
fn follow_mode_reads_rotated_in_content_from_the_start() {
    let dir = temp_dir("follow-rotate");
    let _cleanup = Cleanup(dir.clone());
    let log = dir.join("access.log");
    let sidecar = dir.join("access.ckpt");
    write_lines(&log, 0..2, false);

    // Live-tailing incarnation: starts at the current end (follow
    // semantics), sees only what is appended afterwards.
    {
        let mut tail = FileTail::follow(&log)
            .unwrap()
            .with_checkpoint(&sidecar)
            .unwrap();
        write_lines(&log, 2..4, true);
        assert_eq!(collect(&mut tail, 2), (2..4).map(line).collect::<Vec<_>>());
        // Reach a quiet point so the checkpoint is persisted.
        assert_eq!(
            tail.poll(Duration::from_millis(20)).unwrap(),
            SourceEvent::Idle
        );
    }
    // Rotation while down: the path now holds a different file. A bare
    // `follow` would seek to its end and silently drop these lines; the
    // checkpoint proves they postdate the last delivery, so the
    // restarted tail must read the replacement from its start.
    std::fs::rename(&log, dir.join("access.log.1")).unwrap();
    write_lines(&log, 100..103, false);

    let mut tail = FileTail::follow(&log)
        .unwrap()
        .with_checkpoint(&sidecar)
        .unwrap();
    assert_eq!(
        collect(&mut tail, 3),
        (100..103).map(line).collect::<Vec<_>>()
    );
}

#[test]
fn truncation_below_the_checkpoint_rewinds_to_the_start() {
    let dir = temp_dir("shrink");
    let _cleanup = Cleanup(dir.clone());
    let log = dir.join("access.log");
    let sidecar = dir.join("access.ckpt");
    write_lines(&log, 0..8, false);

    {
        let mut tail = FileTail::read_to_end(&log)
            .unwrap()
            .with_checkpoint(&sidecar)
            .unwrap();
        assert_eq!(collect_to_eof(&mut tail).len(), 8);
    }
    // Same file identity, but truncated below the recorded offset
    // (copytruncate while down): the offset no longer exists.
    let f = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
    f.set_len(0).unwrap();
    drop(f);
    write_lines(&log, 50..52, true);

    let mut tail = FileTail::read_to_end(&log)
        .unwrap()
        .with_checkpoint(&sidecar)
        .unwrap();
    assert_eq!(
        collect_to_eof(&mut tail),
        (50..52).map(line).collect::<Vec<_>>()
    );
}

#[test]
fn checkpoint_now_is_durable_and_partial_lines_are_not_consumed() {
    let dir = temp_dir("partial");
    let _cleanup = Cleanup(dir.clone());
    let log = dir.join("access.log");
    let sidecar = dir.join("access.ckpt");
    // One complete line plus half of the next (no terminator).
    let half = line(1);
    std::fs::write(&log, format!("{}\n{}", line(0), &half[..30])).unwrap();

    {
        let mut tail = FileTail::follow_from_start(&log)
            .unwrap()
            .with_checkpoint(&sidecar)
            .unwrap();
        assert_eq!(collect(&mut tail, 1), vec![line(0)]);
        // Pull the half-line into the framer (Idle: no terminator yet).
        assert_eq!(
            tail.poll(Duration::from_millis(30)).unwrap(),
            SourceEvent::Idle
        );
        tail.checkpoint_now().unwrap();
        assert!(sidecar.exists(), "checkpoint_now must write the sidecar");
    }
    // Finish the half-line while the ingester is down.
    let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
    writeln!(f, "{}", &half[30..]).unwrap();
    f.flush().unwrap();

    // The restarted tail re-reads the half-line's bytes and delivers
    // the completed line exactly once.
    let mut tail = FileTail::read_to_end(&log)
        .unwrap()
        .with_checkpoint(&sidecar)
        .unwrap();
    assert_eq!(collect_to_eof(&mut tail), vec![half]);
}
