//! Ingestion edge cases: mid-line chunk boundaries over the socket,
//! file rotation/truncation mid-tail, `ErrorPolicy` semantics on
//! malformed CLF lines, and graceful shutdown draining the pipeline.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use divscrape_detect::Sentinel;
use divscrape_ingest::{
    EndReason, ErrorPolicy, FileTail, IngestDriver, IngestError, LogSource, Replay, ReplayPace,
    SocketSource, SocketSourceConfig, SourceEvent,
};
use divscrape_pipeline::PipelineBuilder;

fn clf_line(i: usize) -> String {
    format!(
        "10.2.{}.{} - - [11/Mar/2018:00:{:02}:{:02} +0000] \"GET /items/{} HTTP/1.1\" 200 321 \"-\" \"curl/7.58.0\"",
        i / 200,
        i % 200 + 1,
        (i / 60) % 60,
        i % 60,
        i
    )
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "divscrape-ingest-{tag}-{}-{:?}.log",
        std::process::id(),
        std::thread::current().id()
    ))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Polls `source` until `n` lines arrived (panics on Eof or timeout).
fn collect_lines<S: LogSource>(source: &mut S, n: usize) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut out = Vec::new();
    while out.len() < n {
        assert!(Instant::now() < deadline, "timed out; got {out:?}");
        match source.poll(Duration::from_millis(20)).unwrap() {
            SourceEvent::Line(l) => out.push(l),
            SourceEvent::Idle => {}
            SourceEvent::Eof => panic!("premature EOF; got {out:?}"),
            SourceEvent::Truncated { .. } => panic!("unexpected oversize discard"),
        }
    }
    out
}

/// A sender that deliberately fragments its writes at arbitrary byte
/// positions — no relation to line boundaries — with tiny pauses so the
/// fragments land in separate TCP segments/reads.
#[test]
fn socket_framer_reassembles_mid_line_chunk_boundaries() {
    let mut source = SocketSource::bind_with(
        "127.0.0.1:0",
        SocketSourceConfig {
            finish_on_disconnect: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = source.local_addr();
    let lines: Vec<String> = (0..12).map(clf_line).collect();
    let payload: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let sender = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_nodelay(true).unwrap();
        // 13-byte fragments: every line is split several times, and
        // most fragments end mid-line.
        for chunk in payload.as_bytes().chunks(13) {
            conn.write_all(chunk).unwrap();
            conn.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let got = collect_lines(&mut source, lines.len());
    sender.join().unwrap();
    assert_eq!(got, lines);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline);
        match source.poll(Duration::from_millis(20)).unwrap() {
            SourceEvent::Eof => break,
            SourceEvent::Idle => {}
            other => panic!("expected EOF after disconnect, got {other:?}"),
        }
    }
}

#[test]
fn file_rotation_mid_tail_is_survived() {
    let path = temp_path("rotate");
    let _cleanup = Cleanup(path.clone());
    let rotated = path.with_extension("log.1");
    let _cleanup_rotated = Cleanup(rotated.clone());

    std::fs::write(&path, format!("{}\n{}\n", clf_line(0), clf_line(1))).unwrap();
    let mut tail = FileTail::follow_from_start(&path).unwrap();
    assert_eq!(collect_lines(&mut tail, 2), vec![clf_line(0), clf_line(1)]);

    // logrotate-style: rename the live file away, recreate the path.
    std::fs::rename(&path, &rotated).unwrap();
    std::fs::write(&path, format!("{}\n", clf_line(2))).unwrap();
    assert_eq!(collect_lines(&mut tail, 1), vec![clf_line(2)]);
    assert_eq!(tail.rotations(), 1);

    // And again mid-stream, with content appended after recreation.
    std::fs::remove_file(&rotated).unwrap();
    std::fs::rename(&path, &rotated).unwrap();
    std::fs::write(&path, String::new()).unwrap();
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(f, "{}", clf_line(3)).unwrap();
    drop(f);
    assert_eq!(collect_lines(&mut tail, 1), vec![clf_line(3)]);
    assert!(tail.rotations() >= 2);
}

#[test]
fn file_truncation_mid_tail_rewinds_and_drops_the_partial() {
    let path = temp_path("truncate");
    let _cleanup = Cleanup(path.clone());
    // Two complete lines plus a dangling half-line.
    std::fs::write(
        &path,
        format!("{}\n{}\nhalf-a-li", clf_line(0), clf_line(1)),
    )
    .unwrap();
    let mut tail = FileTail::follow_from_start(&path).unwrap();
    assert_eq!(collect_lines(&mut tail, 2), vec![clf_line(0), clf_line(1)]);
    assert_eq!(
        tail.poll(Duration::from_millis(20)).unwrap(),
        SourceEvent::Idle,
        "the dangling half-line must stay buffered"
    );

    // copytruncate-style: the file is truncated in place and rewritten.
    // The buffered "half-a-li" prefix lost its ending and must vanish —
    // not be glued onto the first line of the new content.
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(0).unwrap();
    drop(f);
    let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    writeln!(f, "{}", clf_line(9)).unwrap();
    drop(f);
    assert_eq!(collect_lines(&mut tail, 1), vec![clf_line(9)]);
    assert_eq!(tail.truncations(), 1);
}

fn skip_pipeline() -> divscrape_pipeline::Pipeline {
    PipelineBuilder::new()
        .detector(Sentinel::stock())
        .build()
        .unwrap()
}

#[test]
fn error_policy_skip_counts_and_continues() {
    let lines = vec![
        clf_line(0),
        "total garbage".to_owned(),
        clf_line(1),
        "300.300.300.300 - - nope".to_owned(),
        clf_line(2),
    ];
    let mut driver = IngestDriver::new(skip_pipeline());
    let outcome = driver
        .run(&mut Replay::from_lines(lines, ReplayPace::Unlimited))
        .unwrap();
    assert_eq!(outcome.end, EndReason::SourceExhausted);
    assert_eq!(outcome.stats.lines_read, 5);
    assert_eq!(outcome.stats.entries_ingested, 3);
    assert_eq!(outcome.stats.parse_errors, 2);
    assert_eq!(outcome.stats.quarantined, 0);
    assert_eq!(outcome.report.requests(), 3);
}

#[test]
fn error_policy_abort_stops_at_the_offending_line() {
    let lines = vec![clf_line(0), clf_line(1), "broken".to_owned(), clf_line(2)];
    let mut driver = IngestDriver::new(skip_pipeline()).error_policy(ErrorPolicy::Abort);
    let err = driver
        .run(&mut Replay::from_lines(lines, ReplayPace::Unlimited))
        .unwrap_err();
    match err {
        IngestError::Malformed { line_no, line, .. } => {
            assert_eq!(line_no, 3);
            assert_eq!(line, "broken");
        }
        other => panic!("expected Malformed, got {other}"),
    }
    // The two good entries before the failure are still in the pipeline;
    // the caller decides — here we drain them manually.
    assert_eq!(driver.stats().entries_ingested, 2);
    assert_eq!(driver.pipeline_mut().drain().requests(), 2);
}

/// A `Write` that appends into shared memory, so the test can inspect
/// what the quarantine captured.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);
impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn error_policy_quarantine_preserves_raw_lines() {
    let buf = SharedBuf::default();
    let lines = vec![
        clf_line(0),
        "first bad line".to_owned(),
        clf_line(1),
        "second bad line".to_owned(),
    ];
    let mut driver =
        IngestDriver::new(skip_pipeline()).error_policy(ErrorPolicy::quarantine_to(buf.clone()));
    let outcome = driver
        .run(&mut Replay::from_lines(lines, ReplayPace::Unlimited))
        .unwrap();
    assert_eq!(outcome.stats.parse_errors, 2);
    assert_eq!(outcome.stats.quarantined, 2);
    assert_eq!(outcome.stats.entries_ingested, 2);
    let captured = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert_eq!(captured, "first bad line\nsecond bad line\n");
}

#[test]
fn quarantine_is_flushed_even_when_the_run_fails() {
    // A buffered quarantine writer must hit the disk on error exits too:
    // the freshest rejected lines are what the operator needs to see.
    struct FailingAfterBadLine {
        served: bool,
    }
    impl LogSource for FailingAfterBadLine {
        fn poll(&mut self, _timeout: Duration) -> std::io::Result<SourceEvent> {
            if self.served {
                return Err(std::io::Error::other("feed died"));
            }
            self.served = true;
            Ok(SourceEvent::Line("not a log line".to_owned()))
        }
    }
    let buf = SharedBuf::default();
    let mut driver = IngestDriver::new(skip_pipeline()).error_policy(ErrorPolicy::Quarantine(
        Box::new(std::io::BufWriter::with_capacity(64 * 1024, buf.clone())),
    ));
    let err = driver
        .run(&mut FailingAfterBadLine { served: false })
        .unwrap_err();
    assert!(matches!(err, IngestError::Source(_)), "{err}");
    // The driver is still alive (not dropped), yet the quarantined line
    // is already durable.
    let captured = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert_eq!(captured, "not a log line\n");
}

#[test]
fn oversized_lines_follow_the_error_policy() {
    // A never-ending "line" from a broken sender must not balloon
    // memory, and must surface through the policy like any bad line.
    let mut source = SocketSource::bind_with(
        "127.0.0.1:0",
        SocketSourceConfig {
            finish_on_disconnect: true,
            max_line: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = source.local_addr();
    let good = clf_line(4);
    let good_sent = good.clone();
    let sender = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&vec![b'x'; 4096]).unwrap(); // no newline in 4 KiB
        conn.write_all(b"\n").unwrap();
        writeln!(conn, "{good_sent}").unwrap();
    });
    let buf = SharedBuf::default();
    let mut driver =
        IngestDriver::new(skip_pipeline()).error_policy(ErrorPolicy::quarantine_to(buf.clone()));
    let outcome = driver.run(&mut source).unwrap();
    sender.join().unwrap();
    assert_eq!(outcome.stats.oversized_lines, 1);
    assert_eq!(outcome.stats.entries_ingested, 1);
    assert_eq!(outcome.stats.quarantined, 1);
    let captured = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(
        captured.starts_with("# divscrape-ingest: oversized"),
        "{captured}"
    );
}

#[test]
fn stop_handle_shuts_down_gracefully_and_drains_everything() {
    // A live tail never EOFs; a writer keeps appending while the stop
    // fires from another thread. Whatever was ingested by the time the
    // driver notices the stop must come out adjudicated — no drops.
    let path = temp_path("shutdown");
    let _cleanup = Cleanup(path.clone());
    std::fs::write(&path, String::new()).unwrap();
    let tail = FileTail::follow_from_start(&path).unwrap();

    let mut driver = IngestDriver::new(skip_pipeline());
    let stop = driver.stop_handle();
    let writer = std::thread::spawn({
        let path = path.clone();
        move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            for i in 0..200 {
                writeln!(f, "{}", clf_line(i)).unwrap();
                if i % 50 == 0 {
                    f.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            f.flush().unwrap();
        }
    });
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        stop.stop();
    });

    let mut source = tail;
    let outcome = driver.run(&mut source).unwrap();
    writer.join().unwrap();
    stopper.join().unwrap();

    assert_eq!(outcome.end, EndReason::Stopped);
    // Graceful shutdown: every ingested entry was drained and reported.
    assert_eq!(
        outcome.report.requests() as u64,
        outcome.stats.entries_ingested
    );
    assert_eq!(outcome.pipeline.entries_pending, 0);
    assert_eq!(
        outcome.pipeline.entries_processed,
        outcome.stats.entries_ingested
    );
}

#[test]
fn consecutive_runs_continue_one_logical_stream() {
    // Detector state persists across runs: two runs over the halves of a
    // log equal one run over the whole log.
    let all: Vec<String> = (0..40).map(clf_line).collect();
    let (a, b) = all.split_at(20);

    let mut once = IngestDriver::new(skip_pipeline());
    let whole = once
        .run(&mut Replay::from_lines(all.clone(), ReplayPace::Unlimited))
        .unwrap();

    let mut twice = IngestDriver::new(skip_pipeline());
    let first = twice
        .run(&mut Replay::from_lines(a.to_vec(), ReplayPace::Unlimited))
        .unwrap();
    let second = twice
        .run(&mut Replay::from_lines(b.to_vec(), ReplayPace::Unlimited))
        .unwrap();

    let mut stitched = first.report.combined.to_bools();
    stitched.extend(second.report.combined.to_bools());
    assert_eq!(stitched, whole.report.combined.to_bools());
    assert_eq!(twice.stats().lines_read, 40, "stats accumulate across runs");
}
