//! UDP intake edge cases: datagram framing, oversized lines,
//! interleaved senders, and the loss-accounting contract.
//!
//! **Loss accounting, documented.** `UdpSource` is deliberately lossy:
//! there is no flow control to push back through, so when its bounded
//! internal queue (the userspace `SO_RCVBUF` analogue) is full the line
//! is dropped *and counted*. The auditable identity is
//!
//! ```text
//! lines framed == delivered to consumer + dropped_lines + still queued
//! ```
//!
//! and therefore, once the reader thread has seen every datagram and
//! the consumer has drained the queue:
//!
//! ```text
//! sent − received == reported drops
//! ```
//!
//! Kernel-level drops (the socket's actual `SO_RCVBUF` overflowing)
//! happen below this accounting; the reader thread does nothing but
//! `recv` + a non-blocking enqueue precisely so the kernel buffer stays
//! drained and the observable drop point is the source's own queue.
//! The test below provokes drops with a deliberately tiny queue and
//! verifies the identity exactly.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use divscrape_ingest::{LogSource, SourceEvent, UdpSource, UdpSourceConfig};

fn clf(ip: &str, seq: usize) -> String {
    format!(
        r#"{ip} - - [11/Mar/2018:00:00:{:02} +0000] "GET /page{seq} HTTP/1.1" 200 12 "-" "curl/7.58.0""#,
        seq % 60
    )
}

/// Polls until `want` line/truncated events arrived or the source goes
/// quiet for ~1s.
fn drain(source: &mut UdpSource, want: usize) -> (Vec<String>, u64) {
    let mut lines = Vec::new();
    let mut truncated = 0u64;
    let mut idle_strikes = 0;
    while lines.len() + truncated as usize != want && idle_strikes < 40 {
        match source.poll(Duration::from_millis(25)).unwrap() {
            SourceEvent::Line(line) => {
                idle_strikes = 0;
                lines.push(line);
            }
            SourceEvent::Truncated { .. } => {
                idle_strikes = 0;
                truncated += 1;
            }
            SourceEvent::Idle => idle_strikes += 1,
            SourceEvent::Eof => break,
        }
    }
    (lines, truncated)
}

/// Spin until the reader thread has accounted for `sent` datagrams, so
/// counters are quiesced before assertions.
fn wait_for_datagrams(source: &UdpSource, sent: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while source.stats().datagrams < sent {
        assert!(
            Instant::now() < deadline,
            "reader saw {}/{sent} datagrams before timing out",
            source.stats().datagrams
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One datagram may carry several `\n`-separated lines, and the
/// datagram boundary terminates the last line even without a trailing
/// newline.
#[test]
fn multiple_lines_per_datagram() {
    let mut source = UdpSource::bind("127.0.0.1:0").unwrap();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

    let expected: Vec<String> = (0..3).map(|i| clf("10.0.0.1", i)).collect();
    // Lines 0 and 1 newline-terminated (one with \r\n), line 2 ended by
    // the datagram boundary alone.
    let payload = format!("{}\r\n{}\n{}", expected[0], expected[1], expected[2]);
    sender
        .send_to(payload.as_bytes(), source.local_addr())
        .unwrap();

    let (lines, truncated) = drain(&mut source, 3);
    assert_eq!(lines, expected);
    assert_eq!(truncated, 0);
    assert_eq!(source.stats().datagrams, 1);
    assert_eq!(source.stats().lines, 3);
}

/// A line longer than the configured cap is discarded and surfaces as
/// a counted `Truncated` event — never a fatal error, and lines around
/// it in the same datagram survive.
#[test]
fn oversized_line_is_counted_not_fatal() {
    let mut source = UdpSource::bind_with(
        "127.0.0.1:0",
        UdpSourceConfig {
            max_line: 256,
            ..UdpSourceConfig::default()
        },
    )
    .unwrap();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

    let good = clf("10.0.0.2", 1);
    let huge = "x".repeat(2_000); // far over the 256-byte cap
    let payload = format!("{good}\n{huge}\n{}", clf("10.0.0.2", 2));
    sender
        .send_to(payload.as_bytes(), source.local_addr())
        .unwrap();

    let (lines, truncated) = drain(&mut source, 3);
    assert_eq!(lines, vec![good, clf("10.0.0.2", 2)]);
    assert_eq!(truncated, 1);
    let stats = source.stats();
    assert_eq!(stats.oversized, 1);
    assert_eq!(stats.lines, 2);
    assert_eq!(stats.dropped_lines, 0);
}

/// Datagrams from many concurrent senders interleave without corrupting
/// each other — every datagram frames independently, so no line is ever
/// spliced from two senders' bytes.
#[test]
fn interleaved_senders_never_splice() {
    let mut source = UdpSource::bind("127.0.0.1:0").unwrap();
    let addr = source.local_addr();

    const SENDERS: usize = 4;
    const PER_SENDER: usize = 50;
    let handles: Vec<_> = (0..SENDERS)
        .map(|s| {
            std::thread::spawn(move || {
                let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
                for i in 0..PER_SENDER {
                    let line = clf(&format!("10.0.{s}.1"), i);
                    socket.send_to(line.as_bytes(), addr).unwrap();
                    // Pace lightly so the tiny loopback burst cannot
                    // outrun the kernel socket buffer.
                    if i % 16 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let (lines, truncated) = drain(&mut source, SENDERS * PER_SENDER);
    assert_eq!(truncated, 0);
    assert_eq!(lines.len(), SENDERS * PER_SENDER);
    // Per-sender streams arrive complete and in per-sender order.
    for s in 0..SENDERS {
        let ip = format!("10.0.{s}.1");
        let got: Vec<&String> = lines.iter().filter(|l| l.starts_with(&ip)).collect();
        let want: Vec<String> = (0..PER_SENDER).map(|i| clf(&ip, i)).collect();
        assert_eq!(got.len(), PER_SENDER, "sender {s} lost lines");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(**g, *w, "sender {s} stream corrupted");
        }
    }
}

/// The documented loss-accounting contract: under a deliberately tiny
/// receive queue, `sent − received == reported drops`, exactly.
#[test]
fn loss_accounting_balances_under_tiny_recv_buffer() {
    const QUEUE: usize = 8;
    const SENT: usize = 600;
    let mut source = UdpSource::bind_with(
        "127.0.0.1:0",
        UdpSourceConfig {
            queue_depth: QUEUE,
            ..UdpSourceConfig::default()
        },
    )
    .unwrap();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

    // Blast without consuming: the reader keeps the kernel buffer
    // drained (so no invisible kernel drops) while our tiny queue
    // overflows (visible, counted drops). Light pacing keeps the burst
    // within the kernel socket buffer on slow CI machines.
    for i in 0..SENT {
        sender
            .send_to(clf("10.9.0.1", i).as_bytes(), source.local_addr())
            .unwrap();
        if i % 32 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    wait_for_datagrams(&source, SENT as u64);

    // Now drain what survived.
    let (lines, truncated) = drain(&mut source, usize::MAX);
    assert_eq!(truncated, 0);

    let stats = source.stats();
    assert_eq!(
        stats.datagrams, SENT as u64,
        "no kernel-level loss on loopback"
    );
    assert_eq!(stats.lines, SENT as u64);
    assert_eq!(stats.queued, 0, "queue fully drained");
    // The headline identity: sent − received = reported drops.
    assert_eq!(
        SENT as u64 - lines.len() as u64,
        stats.dropped_lines,
        "loss accounting must balance exactly"
    );
    assert_eq!(stats.delivered, lines.len() as u64);
    // The tiny queue actually overflowed — the test provoked real loss.
    assert!(
        stats.dropped_lines > 0,
        "expected drops under a {QUEUE}-deep queue and {SENT} unconsumed lines"
    );
}
